//! GIL expressions.
//!
//! Following the released Gillian implementation, a single expression type
//! serves both as the *program* expressions `e ∈ E` of paper §2.1 (which may
//! mention program variables) and as the *logical* expressions `ê ∈ Ê` of
//! §2.3 (which may mention logical variables). Concrete evaluation rejects
//! logical variables; symbolic stores map program variables to logical
//! expressions, so after store substitution a program expression becomes a
//! logical one.
//!
//! Since the hash-consing refactor, every recursive position holds a
//! [`Term`] — an interned, `Arc`-shared node — so structurally equal
//! subterms are pointer-equal, cloning is a refcount bump, and equality
//! and hashing have pointer fast paths (see [`crate::intern`]). `Term`
//! dereferences to `Expr`, so pattern-matching read sites are unchanged;
//! construction sites intern via `From<Expr> for Term`.

use crate::intern::{ExprList, Term};
use crate::ops::{BinOp, UnOp};
use crate::value::{TypeTag, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A logical variable `x̂ ∈ X̂` (paper §2.3), identified by a unique id.
///
/// Logical variables are minted by the symbolic allocator when executing the
/// `iSym` command, and stand for arbitrary values constrained only by the
/// path condition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LVar(pub u64);

impl fmt::Debug for LVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#x{}", self.0)
    }
}
impl fmt::Display for LVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#x{}", self.0)
    }
}

/// A GIL expression.
///
/// Built with the constructor helpers (`Expr::int`, [`Expr::pvar`], …) and
/// the combinator methods ([`Expr::add`], [`Expr::eq`], …), which keep
/// compiled code readable:
///
/// ```
/// use gillian_gil::Expr;
/// let e = Expr::pvar("x").add(Expr::int(1)).lt(Expr::int(10));
/// assert_eq!(e.to_string(), "((x + 1) < 10)");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Expr {
    /// A literal value.
    Val(Value),
    /// A program variable `x ∈ X`.
    PVar(Arc<str>),
    /// A logical variable `x̂ ∈ X̂`.
    LVar(LVar),
    /// Unary operator application `⊖e`.
    Un(UnOp, Term),
    /// Binary operator application `e₁ ⊕ e₂`.
    Bin(BinOp, Term, Term),
    /// List construction `[e₁, …, eₙ]`.
    List(ExprList),
    /// String concatenation `s-cat(e₁, …, eₙ)`.
    StrCat(ExprList),
    /// List concatenation `l-cat(e₁, …, eₙ)`.
    LstCat(ExprList),
}

// The DSL builder methods deliberately mirror operator names (`add`,
// `not`, …) without implementing the std `ops` traits: the operators build
// *syntax*, not values, and `a + b` would read as computation.
#[allow(clippy::should_implement_trait)]
impl Expr {
    // ---- constructors -------------------------------------------------

    /// Integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Val(Value::Int(n))
    }
    /// Number (double) literal.
    pub fn num(x: f64) -> Expr {
        Expr::Val(Value::num(x))
    }
    /// String literal.
    pub fn str(s: impl AsRef<str>) -> Expr {
        Expr::Val(Value::str(s))
    }
    /// Boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::Val(Value::Bool(b))
    }
    /// The literal `true`.
    pub fn tt() -> Expr {
        Expr::bool(true)
    }
    /// The literal `false`.
    pub fn ff() -> Expr {
        Expr::bool(false)
    }
    /// Program variable.
    pub fn pvar(x: impl AsRef<str>) -> Expr {
        Expr::PVar(Arc::from(x.as_ref()))
    }
    /// Logical variable.
    pub fn lvar(x: LVar) -> Expr {
        Expr::LVar(x)
    }
    /// Procedure-identifier literal.
    pub fn proc(name: impl AsRef<str>) -> Expr {
        Expr::Val(Value::proc(name))
    }
    /// Type literal.
    pub fn type_tag(t: TypeTag) -> Expr {
        Expr::Val(Value::Type(t))
    }
    /// The empty list literal.
    pub fn nil() -> Expr {
        Expr::Val(Value::nil())
    }
    /// List construction from sub-expressions.
    pub fn list(es: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::List(es.into_iter().collect())
    }
    /// N-ary list concatenation from sub-expressions.
    pub fn lstcat_of(es: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::LstCat(es.into_iter().collect())
    }
    /// N-ary string concatenation from sub-expressions.
    pub fn strcat_of(es: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::StrCat(es.into_iter().collect())
    }

    // ---- combinators ---------------------------------------------------

    /// `self ⊕ other` for an arbitrary binary operator.
    pub fn bin(self, op: BinOp, other: Expr) -> Expr {
        Expr::Bin(op, self.into(), other.into())
    }
    /// `⊖self` for an arbitrary unary operator.
    pub fn un(self, op: UnOp) -> Expr {
        Expr::Un(op, self.into())
    }
    /// Addition.
    pub fn add(self, other: Expr) -> Expr {
        self.bin(BinOp::Add, other)
    }
    /// Subtraction.
    pub fn sub(self, other: Expr) -> Expr {
        self.bin(BinOp::Sub, other)
    }
    /// Multiplication.
    pub fn mul(self, other: Expr) -> Expr {
        self.bin(BinOp::Mul, other)
    }
    /// Division.
    pub fn div(self, other: Expr) -> Expr {
        self.bin(BinOp::Div, other)
    }
    /// Remainder.
    pub fn rem(self, other: Expr) -> Expr {
        self.bin(BinOp::Mod, other)
    }
    /// Structural equality.
    pub fn eq(self, other: Expr) -> Expr {
        self.bin(BinOp::Eq, other)
    }
    /// Negated structural equality.
    pub fn ne(self, other: Expr) -> Expr {
        self.eq(other).not()
    }
    /// Strict less-than.
    pub fn lt(self, other: Expr) -> Expr {
        self.bin(BinOp::Lt, other)
    }
    /// Less-or-equal.
    pub fn le(self, other: Expr) -> Expr {
        self.bin(BinOp::Leq, other)
    }
    /// Strict greater-than (desugars to swapped `<`).
    pub fn gt(self, other: Expr) -> Expr {
        other.bin(BinOp::Lt, self)
    }
    /// Greater-or-equal (desugars to swapped `<=`).
    pub fn ge(self, other: Expr) -> Expr {
        other.bin(BinOp::Leq, self)
    }
    /// Boolean conjunction.
    pub fn and(self, other: Expr) -> Expr {
        self.bin(BinOp::And, other)
    }
    /// Boolean disjunction.
    pub fn or(self, other: Expr) -> Expr {
        self.bin(BinOp::Or, other)
    }
    /// Boolean negation.
    pub fn not(self) -> Expr {
        self.un(UnOp::Not)
    }
    /// The type of the expression's value.
    pub fn type_of(self) -> Expr {
        self.un(UnOp::TypeOf)
    }
    /// `typeOf(self) = t`.
    pub fn has_type(self, t: TypeTag) -> Expr {
        self.type_of().eq(Expr::type_tag(t))
    }
    /// List length.
    pub fn lst_len(self) -> Expr {
        self.un(UnOp::LstLen)
    }
    /// `i`-th element of a list.
    pub fn lst_nth(self, i: Expr) -> Expr {
        self.bin(BinOp::LstNth, i)
    }
    /// First element of a list.
    pub fn lst_head(self) -> Expr {
        self.un(UnOp::LstHead)
    }
    /// All but the first element of a list.
    pub fn lst_tail(self) -> Expr {
        self.un(UnOp::LstTail)
    }
    /// Prepend onto a list.
    pub fn cons(self, list: Expr) -> Expr {
        self.bin(BinOp::LstCons, list)
    }

    // ---- queries -------------------------------------------------------

    /// Returns the literal value if this expression is one.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            Expr::Val(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the literal boolean if this expression is one.
    pub fn as_bool(&self) -> Option<bool> {
        self.as_value().and_then(Value::as_bool)
    }

    /// Returns the literal integer if this expression is one.
    pub fn as_int(&self) -> Option<i64> {
        self.as_value().and_then(Value::as_int)
    }

    /// True when the expression contains no variables (program or logical).
    pub fn is_closed(&self) -> bool {
        let mut closed = true;
        self.visit(&mut |e| {
            if matches!(e, Expr::PVar(_) | Expr::LVar(_)) {
                closed = false;
            }
        });
        closed
    }

    /// Calls `f` on this expression and every sub-expression (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => {}
            Expr::Un(_, e) => e.visit(f),
            Expr::Bin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::List(es) | Expr::StrCat(es) | Expr::LstCat(es) => {
                for e in es {
                    e.visit(f);
                }
            }
        }
    }

    /// Collects the logical variables occurring in the expression.
    pub fn lvars(&self) -> BTreeSet<LVar> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::LVar(x) = e {
                out.insert(*x);
            }
        });
        out
    }

    /// Collects the program variables occurring in the expression.
    pub fn pvars(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::PVar(x) = e {
                out.insert(x.clone());
            }
        });
        out
    }

    /// Rebuilds the expression, replacing each variable through `f`;
    /// variables for which `f` returns `None` are kept as-is.
    ///
    /// Subtrees in which nothing is replaced are **shared, not rebuilt**:
    /// the result reuses the original interned nodes (a refcount bump), so
    /// a substitution that hits nothing allocates nothing.
    pub fn subst(&self, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
        if let Some(e) = f(self) {
            return e;
        }
        match self {
            Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => self.clone(),
            Expr::Un(op, e) => {
                let ne = subst_term(e, f);
                match ne {
                    Some(ne) => Expr::Un(*op, ne),
                    None => self.clone(),
                }
            }
            Expr::Bin(op, a, b) => {
                let na = subst_term(a, f);
                let nb = subst_term(b, f);
                if na.is_none() && nb.is_none() {
                    self.clone()
                } else {
                    Expr::Bin(
                        *op,
                        na.unwrap_or_else(|| a.clone()),
                        nb.unwrap_or_else(|| b.clone()),
                    )
                }
            }
            Expr::List(es) => subst_list(es, f)
                .map(Expr::List)
                .unwrap_or_else(|| self.clone()),
            Expr::StrCat(es) => subst_list(es, f)
                .map(Expr::StrCat)
                .unwrap_or_else(|| self.clone()),
            Expr::LstCat(es) => subst_list(es, f)
                .map(Expr::LstCat)
                .unwrap_or_else(|| self.clone()),
        }
    }

    /// Substitutes logical variables through the given mapping.
    pub fn subst_lvars(&self, map: &impl Fn(LVar) -> Option<Expr>) -> Expr {
        self.subst(&|e| match e {
            Expr::LVar(x) => map(*x),
            _ => None,
        })
    }

    /// A small structural size measure (number of nodes), used by the
    /// simplifier to avoid size-increasing rewrites.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

/// Substitutes under an interned node, returning `None` when nothing
/// changed (so the caller can keep sharing the original `Term`).
fn subst_term(t: &Term, f: &impl Fn(&Expr) -> Option<Expr>) -> Option<Term> {
    if let Some(e) = f(t.expr()) {
        return Some(e.into());
    }
    match t.expr() {
        Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => None,
        Expr::Un(op, e) => subst_term(e, f).map(|ne| Expr::Un(*op, ne).into()),
        Expr::Bin(op, a, b) => {
            let na = subst_term(a, f);
            let nb = subst_term(b, f);
            if na.is_none() && nb.is_none() {
                None
            } else {
                Some(
                    Expr::Bin(
                        *op,
                        na.unwrap_or_else(|| a.clone()),
                        nb.unwrap_or_else(|| b.clone()),
                    )
                    .into(),
                )
            }
        }
        Expr::List(es) => subst_list(es, f).map(|nes| Expr::List(nes).into()),
        Expr::StrCat(es) => subst_list(es, f).map(|nes| Expr::StrCat(nes).into()),
        Expr::LstCat(es) => subst_list(es, f).map(|nes| Expr::LstCat(nes).into()),
    }
}

/// Substitutes across a shared sequence, returning `None` when no element
/// changed (so the caller can keep sharing the original `ExprList`).
fn subst_list(es: &ExprList, f: &impl Fn(&Expr) -> Option<Expr>) -> Option<ExprList> {
    let mut changed: Option<Vec<Expr>> = None;
    for (i, e) in es.iter().enumerate() {
        let ne = e.subst(f);
        match &mut changed {
            Some(out) => out.push(ne),
            None if ne != *e => {
                let mut out = Vec::with_capacity(es.len());
                out.extend_from_slice(&es[..i]);
                out.push(ne);
                changed = Some(out);
            }
            None => {}
        }
    }
    changed.map(ExprList::from)
}

impl From<Value> for Expr {
    fn from(v: Value) -> Expr {
        Expr::Val(v)
    }
}
impl From<i64> for Expr {
    fn from(n: i64) -> Expr {
        Expr::int(n)
    }
}
impl From<bool> for Expr {
    fn from(b: bool) -> Expr {
        Expr::bool(b)
    }
}
impl From<&str> for Expr {
    fn from(s: &str) -> Expr {
        Expr::str(s)
    }
}
impl From<LVar> for Expr {
    fn from(x: LVar) -> Expr {
        Expr::LVar(x)
    }
}
impl From<Term> for Expr {
    fn from(t: Term) -> Expr {
        t.expr().clone()
    }
}
impl From<&Term> for Expr {
    fn from(t: &Term) -> Expr {
        t.expr().clone()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Val(v) => write!(f, "{v}"),
            Expr::PVar(x) => write!(f, "{x}"),
            Expr::LVar(x) => write!(f, "{x}"),
            Expr::Un(op, e) => match op {
                UnOp::Neg | UnOp::BitNot => write!(f, "({op}{e})"),
                _ => write!(f, "{op}({e})"),
            },
            Expr::Bin(op, a, b) => match op {
                BinOp::LstNth | BinOp::StrNth | BinOp::LstCons | BinOp::LstSub => {
                    write!(f, "{op}({a}, {b})")
                }
                _ => write!(f, "({a} {op} {b})"),
            },
            Expr::List(es) => {
                write!(f, "{{{{ ")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, " }}}}")
            }
            Expr::StrCat(es) => {
                write!(f, "s-cat(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::LstCat(es) => {
                write!(f, "l-cat(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::InternStats;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::pvar("x").add(Expr::int(1));
        assert_eq!(
            e,
            Expr::Bin(
                BinOp::Add,
                Expr::PVar(Arc::from("x")).into(),
                Expr::int(1).into()
            )
        );
    }

    #[test]
    fn lvars_and_pvars_are_collected() {
        let e = Expr::pvar("a")
            .add(Expr::lvar(LVar(3)))
            .eq(Expr::lvar(LVar(1)).mul(Expr::pvar("b")));
        assert_eq!(e.lvars(), BTreeSet::from([LVar(1), LVar(3)]));
        let pv: Vec<String> = e.pvars().iter().map(|s| s.to_string()).collect();
        assert_eq!(pv, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn subst_replaces_lvars() {
        let e = Expr::lvar(LVar(0)).add(Expr::lvar(LVar(1)));
        let r = e.subst_lvars(&|x| (x == LVar(0)).then(|| Expr::int(5)));
        assert_eq!(r, Expr::int(5).add(Expr::lvar(LVar(1))));
    }

    #[test]
    fn subst_that_hits_nothing_shares_everything() {
        let e = Expr::pvar("x")
            .add(Expr::lvar(LVar(1)))
            .mul(Expr::int(2).sub(Expr::pvar("y")));
        let before = InternStats::thread_snapshot();
        let r = e.subst(&|_| None);
        let delta = InternStats::thread_snapshot().since(&before);
        assert_eq!(r, e);
        assert_eq!(delta.mints, 0, "no-op substitution must not mint");
        assert_eq!(delta.hits, 0, "no-op substitution must not re-intern");
    }

    #[test]
    fn subst_shares_untouched_siblings() {
        let shared = Expr::pvar("big").mul(Expr::int(7));
        let e = shared.clone().add(Expr::lvar(LVar(9)));
        let r = e.subst_lvars(&|x| (x == LVar(9)).then(|| Expr::int(1)));
        // The untouched left subtree must be the same interned node.
        match (&e, &r) {
            (Expr::Bin(_, a, _), Expr::Bin(_, ra, _)) => {
                assert!(a.same(ra), "untouched subtree must be shared")
            }
            _ => unreachable!(),
        }
        assert_eq!(r, shared.add(Expr::int(1)));
    }

    #[test]
    fn is_closed_detects_variables() {
        assert!(Expr::int(1).add(Expr::int(2)).is_closed());
        assert!(!Expr::pvar("x").is_closed());
        assert!(!Expr::list([Expr::lvar(LVar(0))]).is_closed());
    }

    #[test]
    fn display_round_trips_shapes() {
        let e = Expr::pvar("x").add(Expr::int(1)).lt(Expr::int(10));
        assert_eq!(e.to_string(), "((x + 1) < 10)");
        assert_eq!(Expr::list([Expr::int(1)]).to_string(), "{{ 1 }}");
    }
}
