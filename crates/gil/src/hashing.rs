//! Fast, deterministic hashing for the interner and the solver's memo
//! tables.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which none of our tables need: every key is either an
//! intern id minted by this process or a structural hash of an already
//! hash-consed node, so there is no attacker-chosen input to defend
//! against. What the hot paths *do* need is throughput — the interner
//! hashes one node body per construction and the solver memo tables are
//! probed on every simplification — so this module provides two
//! non-cryptographic hashers:
//!
//! - [`FxHasher`]: a multiply-xor word hasher (the `rustc`-style "Fx"
//!   scheme) for general keys. Several times faster than SipHash on the
//!   small keys these tables use, with bit mixing good enough for
//!   `HashMap`'s bucket selection.
//! - [`PrehashedHasher`]: a pass-through for keys that *are* already
//!   well-mixed 64-bit hashes (interner buckets keyed by structural
//!   hash, caches keyed by a precomputed key hash). Re-hashing a hash
//!   buys nothing; this hasher just forwards it.
//!
//! Both are deterministic across runs and threads — a requirement, since
//! cache sharding and bucket layout must agree between the workers that
//! share these tables.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier (a 64-bit odd constant derived from the golden
/// ratio; any odd constant with well-spread bits works).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-xor hasher for small structured keys.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the length in so `"ab"` and `"ab\0"` differ.
            self.add(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `BuildHasher` for [`FxHasher`] (deterministic: no per-map seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A pass-through hasher for keys that are already 64-bit hashes.
///
/// Only meaningful for keys whose `Hash` impl makes a single
/// `write_u64`/`write_usize` call with a well-mixed value; further
/// writes fold in with a cheap xor-rotate so misuse degrades to a weak
/// hash rather than a wrong one.
#[derive(Debug, Default)]
pub struct PrehashedHasher {
    hash: u64,
}

impl Hasher for PrehashedHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut fx = FxHasher { hash: self.hash };
        fx.write(bytes);
        self.hash = fx.finish();
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = self.hash.rotate_left(32) ^ i;
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `BuildHasher` for [`PrehashedHasher`].
pub type PrehashedBuildHasher = BuildHasherDefault<PrehashedHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx_of(v: impl Hash) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(fx_of(42u64), fx_of(42u64));
        assert_eq!(fx_of("hello"), fx_of("hello"));
    }

    #[test]
    fn distinguishes_values_and_lengths() {
        assert_ne!(fx_of(1u64), fx_of(2u64));
        assert_ne!(fx_of("ab"), fx_of("ab\0"));
        assert_ne!(fx_of(&[1u64, 2][..]), fx_of(&[2u64, 1][..]));
    }

    #[test]
    fn prehashed_forwards_a_single_word() {
        let b = PrehashedBuildHasher::default();
        let h = 0xdead_beef_cafe_f00du64;
        assert_eq!(b.hash_one(h), h); // one write_u64 over zero state is the identity
    }
}
