//! GIL values (paper §2.1).
//!
//! `v ∈ V ≜ n ∈ N | s ∈ S | b ∈ B | ς ∈ U | τ ∈ T | f ∈ F | v̄`
//!
//! We split the paper's single number sort into [`Value::Int`] (exact 64-bit
//! integers, used by the MiniC instantiation and for indices) and
//! [`Value::Num`] (IEEE-754 doubles with a total order, used by the MiniJS
//! instantiation). Uninterpreted symbols `ς` are [`Sym`]s; instantiations use
//! them for object locations, memory blocks, and language constants such as
//! `undefined`.

use std::fmt;
use std::sync::Arc;

/// An IEEE-754 double with *total* equality, ordering and hashing
/// (via [`f64::total_cmp`] semantics on the normalized bit pattern).
///
/// GIL values must be usable as map keys (symbolic heaps index on
/// expressions), so raw `f64` — which is not `Eq` — cannot appear in
/// [`Value`]. `F64` normalizes all NaNs to a single quiet NaN and `-0.0`
/// is kept distinct from `0.0` (matching `total_cmp`).
///
/// ```
/// use gillian_gil::F64;
/// assert_eq!(F64::new(f64::NAN), F64::new(-f64::NAN));
/// assert!(F64::new(1.5) < F64::new(2.0));
/// ```
#[derive(Clone, Copy)]
pub struct F64(f64);

impl F64 {
    /// Wraps an `f64`, normalizing NaNs to one canonical quiet NaN.
    pub fn new(x: f64) -> Self {
        if x.is_nan() {
            F64(f64::NAN)
        } else {
            F64(x)
        }
    }

    /// Returns the underlying `f64`.
    pub fn get(self) -> f64 {
        self.0
    }

    fn key(self) -> u64 {
        // total_cmp-compatible key: flip sign bit for positives, all bits
        // for negatives, so that the u64 order matches the total order.
        let bits = self.0.to_bits() as i64;
        (if bits < 0 { !bits } else { bits ^ i64::MIN }) as u64
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for F64 {}
impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}
impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}
impl fmt::Debug for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}
impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_nan() {
            write!(f, "NaN")
        } else if self.0.is_infinite() {
            write!(f, "{}Infinity", if self.0 < 0.0 { "-" } else { "" })
        } else if self.0 == self.0.trunc() && self.0.abs() < 1e15 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}
impl From<f64> for F64 {
    fn from(x: f64) -> Self {
        F64::new(x)
    }
}

/// An uninterpreted symbol `ς ∈ U` (paper §2.1).
///
/// Uninterpreted symbols are opaque, pairwise-distinct constants. The
/// built-in allocator mints them via the `uSym` command; instantiations use
/// them for heap locations (While, MiniJS), memory blocks (MiniC), and
/// distinguished language constants (`undefined`, `null`).
///
/// Symbols with ids below [`Sym::FIRST_FRESH`] are *reserved* and never
/// produced by allocators, so instantiations may claim them statically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u64);

impl Sym {
    /// The first symbol id that allocators are allowed to mint.
    /// Ids `0..FIRST_FRESH` are reserved for instantiation constants.
    pub const FIRST_FRESH: u64 = 64;
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$ς{}", self.0)
    }
}
impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$ς{}", self.0)
    }
}

/// The type of a GIL value (`τ ∈ T`, paper §2.1).
///
/// `typeOf` is total on values and is frequently used by compiled code for
/// dynamic dispatch (e.g. the MiniJS runtime branches on the type of a
/// property key).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TypeTag {
    /// 64-bit integers.
    Int,
    /// IEEE-754 doubles.
    Num,
    /// Strings.
    Str,
    /// Booleans.
    Bool,
    /// Uninterpreted symbols.
    Sym,
    /// Types themselves.
    Type,
    /// Procedure identifiers.
    Proc,
    /// Lists of values.
    List,
}

impl TypeTag {
    /// All type tags, in canonical order.
    pub const ALL: [TypeTag; 8] = [
        TypeTag::Int,
        TypeTag::Num,
        TypeTag::Str,
        TypeTag::Bool,
        TypeTag::Sym,
        TypeTag::Type,
        TypeTag::Proc,
        TypeTag::List,
    ];

    /// The name used by the pretty-printer and parser.
    pub fn name(self) -> &'static str {
        match self {
            TypeTag::Int => "Int",
            TypeTag::Num => "Num",
            TypeTag::Str => "Str",
            TypeTag::Bool => "Bool",
            TypeTag::Sym => "Sym",
            TypeTag::Type => "Type",
            TypeTag::Proc => "Proc",
            TypeTag::List => "List",
        }
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A GIL value (paper §2.1).
///
/// Values are immutable; lists are plain vectors and strings are shared
/// [`Arc<str>`] so that cloning program states (which symbolic execution
/// does on every branch) stays cheap.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// A 64-bit integer `n`.
    Int(i64),
    /// An IEEE-754 double `n` with total ordering.
    Num(F64),
    /// A string `s`.
    Str(Arc<str>),
    /// A boolean `b`.
    Bool(bool),
    /// An uninterpreted symbol `ς`.
    Sym(Sym),
    /// A type `τ`.
    Type(TypeTag),
    /// A procedure identifier `f`.
    Proc(Arc<str>),
    /// A list of values `v̄`.
    List(Vec<Value>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds a number value from an `f64`.
    pub fn num(x: f64) -> Value {
        Value::Num(F64::new(x))
    }

    /// Builds a procedure-identifier value.
    pub fn proc(name: impl AsRef<str>) -> Value {
        Value::Proc(Arc::from(name.as_ref()))
    }

    /// The empty list `[]` (nil).
    pub fn nil() -> Value {
        Value::List(Vec::new())
    }

    /// The type tag of this value.
    pub fn type_of(&self) -> TypeTag {
        match self {
            Value::Int(_) => TypeTag::Int,
            Value::Num(_) => TypeTag::Num,
            Value::Str(_) => TypeTag::Str,
            Value::Bool(_) => TypeTag::Bool,
            Value::Sym(_) => TypeTag::Sym,
            Value::Type(_) => TypeTag::Type,
            Value::Proc(_) => TypeTag::Proc,
            Value::List(_) => TypeTag::List,
        }
    }

    /// Returns the boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(vs) => Some(vs),
            _ => None,
        }
    }

    /// Returns the symbol payload, if this is an uninterpreted symbol.
    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Value::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Numeric payload as `f64`, accepting both `Int` and `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Num(x) => Some(x.get()),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::num(x)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}
impl From<Sym> for Value {
    fn from(s: Sym) -> Self {
        Value::Sym(s)
    }
}
impl From<TypeTag> for Value {
    fn from(t: TypeTag) -> Self {
        Value::Type(t)
    }
}
impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::List(iter.into_iter().collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Num(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Type(t) => write!(f, "{t}"),
            Value::Proc(p) => write!(f, "@{p}"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_total_order_handles_nan_and_zero() {
        assert_eq!(F64::new(f64::NAN), F64::new(f64::NAN));
        assert!(F64::new(f64::NEG_INFINITY) < F64::new(-1.0));
        assert!(F64::new(-0.0) < F64::new(0.0));
        assert!(F64::new(0.0) < F64::new(f64::INFINITY));
        assert!(F64::new(f64::INFINITY) < F64::new(f64::NAN));
    }

    #[test]
    fn type_of_covers_every_variant() {
        let cases: Vec<(Value, TypeTag)> = vec![
            (Value::Int(3), TypeTag::Int),
            (Value::num(3.5), TypeTag::Num),
            (Value::str("hi"), TypeTag::Str),
            (Value::Bool(true), TypeTag::Bool),
            (Value::Sym(Sym(7)), TypeTag::Sym),
            (Value::Type(TypeTag::List), TypeTag::Type),
            (Value::proc("f"), TypeTag::Proc),
            (Value::nil(), TypeTag::List),
        ];
        for (v, t) in cases {
            assert_eq!(v.type_of(), t, "{v}");
        }
    }

    #[test]
    fn int_and_num_are_never_equal() {
        assert_ne!(Value::Int(1), Value::num(1.0));
    }

    #[test]
    fn display_is_reparseable_shapes() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::num(2.0).to_string(), "2.0");
        assert_eq!(Value::str("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Bool(false)]).to_string(),
            "[1, false]"
        );
    }

    #[test]
    fn values_order_deterministically() {
        let mut vs = vec![
            Value::str("b"),
            Value::Int(2),
            Value::str("a"),
            Value::Int(1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }
}
