//! Compilation of GIL procedures to flat register bytecode.
//!
//! The tree-walking interpreter re-traverses every [`Expr`] on every
//! execution of every command. This module lowers each [`Proc`] once, at
//! program load, into a flat instruction vector ([`CompiledProc`]) whose
//! per-command work is precomputed:
//!
//! - **Superinstructions.** Each GIL command becomes exactly one [`Instr`]
//!   that fuses the command with its expression evaluation: `Assign` is
//!   eval+assign, `CmpGoto` is compare+branch, and division by a nonzero
//!   literal carries a `div_nz` guard elision (see [`ExprKind::Bin1`]).
//!   Constant operands are folded into the instruction stream at compile
//!   time (load-const+op fusion), so no register traffic is spent on them.
//! - **Register expressions.** Expressions too complex for a fused form
//!   are flattened post-order into a [`RegProg`]: a short sequence of
//!   register ops evaluated over a reusable per-worker register bank
//!   ([`EvalScratch`]). Transient values live in that arena and are
//!   overwritten in place on the next evaluation instead of allocating a
//!   fresh spine of `Value`s per visit.
//! - **Label→pc map.** GIL labels *are* command indices, and compilation
//!   is 1:1 (one `Instr` per [`Cmd`]), so the label→pc map is the
//!   identity: `pc == idx`. This is load-bearing — call frames, branch
//!   traces, and checkpoints identify program points by `(proc, idx)`,
//!   and the identity map keeps those identities byte-compatible between
//!   the bytecode and tree-walk backends.
//! - **Inline caches.** Every `Action` site carries an [`AtomicU32`]
//!   inline cache resolving the stringly-named memory action to the
//!   memory model's dense action code on first execution. Programs are
//!   immutable after compile and a run binds exactly one memory model,
//!   so the cache is never invalidated. `Call` sites whose callee is a
//!   literal procedure value are resolved to a dense procedure id at
//!   compile time ([`ProcHint`]).
//!
//! Exact-equivalence contract: for every expression and store, the
//! compiled evaluators produce the same `Result` — same values, same
//! [`EvalError`] text, same *first* error when several subterms would
//! fail — as [`crate::eval::eval`]. The compiler only elides work it can
//! prove irrelevant: a folded subtree is one that provably never errors,
//! and removing a non-erroring subtree cannot change which error fires
//! first among the rest.

use crate::eval::{eval, Store};
use crate::expr::{Expr, LVar};
use crate::intern::Term;
use crate::ops::{eval_binop, eval_lstcat, eval_strcat, eval_unop, BinOp, EvalError, UnOp};
use crate::prog::{Cmd, Ident, Label, Proc, Prog};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU32;

/// Inline-cache sentinel: the action at this site has not been resolved.
pub const IC_UNRESOLVED: u32 = 0;
/// Inline-cache sentinel: the memory model has no dense code for this
/// action; dispatch falls back to the stringly-named path.
pub const IC_NO_CODE: u32 = 1;
/// Bias added to a resolved action code when stored in the inline cache
/// (so codes never collide with the two sentinels).
pub const IC_BIAS: u32 = 2;

/// The per-worker register bank backing [`RegProg`] evaluation — the
/// bytecode backend's bump arena. Registers are allocated once, grown to
/// the widest expression seen, and overwritten in place on every
/// evaluation; nothing is freed until the worker retires.
#[derive(Debug, Default)]
pub struct EvalScratch {
    regs: Vec<Value>,
    /// Symbolic twin of `regs`: expression-valued registers for
    /// [`RegProg::run_symbolic`].
    sregs: Vec<Expr>,
}

impl EvalScratch {
    /// A fresh, empty register bank.
    pub fn new() -> Self {
        EvalScratch::default()
    }

    /// Grows the bank to at least `n` registers and hands out the slice.
    fn regs(&mut self, n: u32) -> &mut [Value] {
        if self.regs.len() < n as usize {
            self.regs.resize(n as usize, Value::nil());
        }
        &mut self.regs
    }

    /// Grows the symbolic bank to at least `n` registers.
    fn sregs(&mut self, n: u32) -> &mut [Expr] {
        if self.sregs.len() < n as usize {
            self.sregs.resize(n as usize, Expr::Val(Value::nil()));
        }
        &mut self.sregs
    }
}

/// An operand of a register op: a register, or a constant folded into the
/// instruction stream at compile time.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// Read register `r`.
    Reg(u32),
    /// A compile-time constant.
    Const(Value),
}

/// One op of a flattened expression ([`RegProg`]).
///
/// Ops appear in the *post-order evaluation position* of the subterm they
/// came from: `Load` sits exactly where the tree walk would look the
/// variable up, so an unbound-variable error fires in the same relative
/// order as every other error.
#[derive(Clone, Debug, PartialEq)]
pub enum EOp {
    /// `dst := ρ(var)`; errors with "unbound variable" like the tree walk.
    Load {
        /// The program variable to read.
        var: Ident,
        /// Destination register.
        dst: u32,
    },
    /// A logical variable: an error in concrete evaluation (kept at its
    /// evaluation position), a kept-symbolic leaf in symbolic evaluation.
    LVarErr {
        /// The offending logical variable.
        var: LVar,
        /// Destination register (symbolic evaluation only).
        dst: u32,
    },
    /// `dst := src` — materializes an operand into a register window.
    Copy {
        /// Source operand.
        src: Operand,
        /// Destination register.
        dst: u32,
    },
    /// `dst := op src` via [`eval_unop`].
    Un {
        /// The unary operator.
        op: UnOp,
        /// Source operand.
        src: Operand,
        /// Destination register.
        dst: u32,
    },
    /// `dst := a op b` via [`eval_binop`].
    Bin {
        /// The binary operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination register.
        dst: u32,
    },
    /// `dst := [regs[base], …, regs[base+n-1]]`.
    List {
        /// First register of the contiguous element window.
        base: u32,
        /// Window length.
        n: u32,
        /// Destination register.
        dst: u32,
    },
    /// `dst := strcat(regs[base..base+n])` via [`eval_strcat`].
    StrCat {
        /// First register of the contiguous element window.
        base: u32,
        /// Window length.
        n: u32,
        /// Destination register.
        dst: u32,
    },
    /// `dst := lstcat(regs[base..base+n])` via [`eval_lstcat`].
    LstCat {
        /// First register of the contiguous element window.
        base: u32,
        /// Window length.
        n: u32,
        /// Destination register.
        dst: u32,
    },
}

/// A flattened expression: straight-line register ops plus the operand
/// holding the final result.
#[derive(Clone, Debug, PartialEq)]
pub struct RegProg {
    ops: Vec<EOp>,
    out: Operand,
    max_regs: u32,
}

/// Stack-discipline register allocator used while flattening.
struct Builder {
    ops: Vec<EOp>,
    next: u32,
    max: u32,
}

impl Builder {
    fn alloc(&mut self) -> u32 {
        let r = self.next;
        self.next += 1;
        self.max = self.max.max(self.next);
        r
    }

    fn free_to(&mut self, mark: u32) {
        self.next = mark;
    }

    fn place(&mut self, want: Option<u32>) -> u32 {
        match want {
            Some(d) => d,
            None => self.alloc(),
        }
    }

    /// Returns a constant result, copying it into `want` when the caller
    /// needs it materialized (a register-window slot).
    fn put_const(&mut self, v: Value, want: Option<u32>) -> Operand {
        match want {
            Some(dst) => {
                self.ops.push(EOp::Copy {
                    src: Operand::Const(v),
                    dst,
                });
                Operand::Reg(dst)
            }
            None => Operand::Const(v),
        }
    }

    /// Flattens `e` post-order. With `want = Some(d)` the result is
    /// materialized in register `d`; otherwise it may come back as a
    /// constant or a freshly allocated register.
    fn flatten(&mut self, e: &Expr, want: Option<u32>) -> Operand {
        // A subtree without program variables evaluates the same on every
        // run. Fold the *successful* ones away entirely — eliding a
        // subtree that provably never errors cannot reorder the errors
        // that remain. Erroring closed subtrees keep their positional ops
        // below, so the first-error position is preserved exactly.
        if !matches!(e, Expr::Val(_)) && e.pvars().is_empty() {
            if let Ok(v) = eval(&Store::new(), e) {
                return self.put_const(v, want);
            }
        }
        match e {
            Expr::Val(v) => self.put_const(v.clone(), want),
            Expr::PVar(x) => {
                let dst = self.place(want);
                self.ops.push(EOp::Load {
                    var: x.clone(),
                    dst,
                });
                Operand::Reg(dst)
            }
            Expr::LVar(x) => {
                let dst = self.place(want);
                self.ops.push(EOp::LVarErr { var: *x, dst });
                Operand::Reg(dst)
            }
            Expr::Un(op, t) => {
                let mark = self.next;
                let src = self.flatten(t, None);
                self.free_to(mark);
                let dst = self.place(want);
                self.ops.push(EOp::Un { op: *op, src, dst });
                Operand::Reg(dst)
            }
            Expr::Bin(op, a, b) => {
                let mark = self.next;
                let oa = self.flatten(a, None);
                let ob = self.flatten(b, None);
                self.free_to(mark);
                let dst = self.place(want);
                self.ops.push(EOp::Bin {
                    op: *op,
                    a: oa,
                    b: ob,
                    dst,
                });
                Operand::Reg(dst)
            }
            Expr::List(es) | Expr::StrCat(es) | Expr::LstCat(es) => {
                let mark = self.next;
                let n = es.len() as u32;
                let base = self.next;
                self.next += n;
                self.max = self.max.max(self.next);
                for (i, el) in es.iter().enumerate() {
                    let inner = self.next;
                    self.flatten(el, Some(base + i as u32));
                    self.free_to(inner);
                }
                self.free_to(mark);
                let dst = self.place(want);
                self.ops.push(match e {
                    Expr::List(_) => EOp::List { base, n, dst },
                    Expr::StrCat(_) => EOp::StrCat { base, n, dst },
                    _ => EOp::LstCat { base, n, dst },
                });
                Operand::Reg(dst)
            }
        }
    }
}

fn operand<'a>(regs: &'a [Value], o: &'a Operand) -> &'a Value {
    match o {
        Operand::Reg(r) => &regs[*r as usize],
        Operand::Const(v) => v,
    }
}

impl RegProg {
    /// Flattens an expression into register ops.
    pub fn flatten(e: &Expr) -> RegProg {
        let mut b = Builder {
            ops: Vec::new(),
            next: 0,
            max: 0,
        };
        let out = b.flatten(e, None);
        RegProg {
            ops: b.ops,
            out,
            max_regs: b.max,
        }
    }

    /// The flattened ops (inspectable in tests).
    pub fn ops(&self) -> &[EOp] {
        &self.ops
    }

    /// Evaluates the flattened expression against a concrete store.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`crate::eval::eval`] on the source
    /// expression, in the same order.
    pub fn run(&self, store: &Store, scratch: &mut EvalScratch) -> Result<Value, EvalError> {
        let regs = scratch.regs(self.max_regs);
        for op in &self.ops {
            match op {
                EOp::Load { var, dst } => {
                    let v = store
                        .get(var)
                        .cloned()
                        .ok_or_else(|| EvalError::new(format!("unbound variable {var}")))?;
                    regs[*dst as usize] = v;
                }
                EOp::LVarErr { var, .. } => {
                    return Err(EvalError::new(format!(
                        "logical variable {var} in concrete evaluation"
                    )));
                }
                EOp::Copy { src, dst } => {
                    let v = operand(regs, src).clone();
                    regs[*dst as usize] = v;
                }
                EOp::Un { op, src, dst } => {
                    let v = eval_unop(*op, operand(regs, src))?;
                    regs[*dst as usize] = v;
                }
                EOp::Bin { op, a, b, dst } => {
                    let v = eval_binop(*op, operand(regs, a), operand(regs, b))?;
                    regs[*dst as usize] = v;
                }
                EOp::List { base, n, dst } => {
                    let v = Value::List(regs[*base as usize..(*base + *n) as usize].to_vec());
                    regs[*dst as usize] = v;
                }
                EOp::StrCat { base, n, dst } => {
                    let v = eval_strcat(&regs[*base as usize..(*base + *n) as usize])?;
                    regs[*dst as usize] = v;
                }
                EOp::LstCat { base, n, dst } => {
                    let v = eval_lstcat(&regs[*base as usize..(*base + *n) as usize])?;
                    regs[*dst as usize] = v;
                }
            }
        }
        Ok(match &self.out {
            Operand::Reg(r) => scratch.regs[*r as usize].clone(),
            Operand::Const(v) => v.clone(),
        })
    }

    /// Evaluates the flattened expression against a *symbolic* store,
    /// folding literal subresults in value space.
    ///
    /// Contract: for every store ρ and simplifier tier `S` (both
    /// `simplify_basic` and the typed tier), `S(run_symbolic(ρ)) ==
    /// S(ρ-substitution of the source)`. This holds because every fold
    /// performed here is exactly `S`'s own literal fold — `eval_unop` /
    /// `eval_binop` on success, the residual node on failure, all-literal
    /// list promotion — and `S` is an idempotent bottom-up rewriter, so
    /// pre-folding a subtree to its `S`-normal form cannot change the
    /// root result. String/list concatenations are *not* folded here
    /// (their `S`-rules merge adjacent literals rather than requiring all
    /// literals); they are rebuilt and left to the root simplify.
    ///
    /// Compile-time `Const` operands are sound symbolically: `flatten`
    /// only folds a closed subtree when strict concrete evaluation
    /// succeeds, which (strictness) means every subnode folds, so both
    /// tiers collapse the same subtree to the same literal.
    ///
    /// # Errors
    ///
    /// `Err(var)` for the first unbound program variable in
    /// left-to-right leaf order — the variable the substitution walk
    /// reports. Logical variables are kept symbolic, not errors.
    pub fn run_symbolic(
        &self,
        lookup: impl Fn(&Ident) -> Option<Expr>,
        scratch: &mut EvalScratch,
    ) -> Result<Expr, Ident> {
        // Registers obey stack discipline: each is written before it is
        // read and read exactly once (operands are distinct subtree
        // results), so reads *take* the slot instead of cloning.
        fn take(regs: &mut [Expr], o: &Operand) -> Expr {
            match o {
                Operand::Reg(r) => {
                    std::mem::replace(&mut regs[*r as usize], Expr::Val(Value::Bool(false)))
                }
                Operand::Const(v) => Expr::Val(v.clone()),
            }
        }
        let regs = scratch.sregs(self.max_regs);
        for op in &self.ops {
            match op {
                EOp::Load { var, dst } => {
                    let v = lookup(var).ok_or_else(|| var.clone())?;
                    regs[*dst as usize] = v;
                }
                EOp::LVarErr { var, dst } => {
                    regs[*dst as usize] = Expr::LVar(*var);
                }
                EOp::Copy { src, dst } => {
                    let v = take(regs, src);
                    regs[*dst as usize] = v;
                }
                EOp::Un { op, src, dst } => {
                    let x = take(regs, src);
                    let v = match &x {
                        Expr::Val(xv) => match eval_unop(*op, xv) {
                            Ok(f) => Expr::Val(f),
                            Err(_) => Expr::Un(*op, x.into()),
                        },
                        _ => Expr::Un(*op, x.into()),
                    };
                    regs[*dst as usize] = v;
                }
                EOp::Bin { op, a, b, dst } => {
                    let xa = take(regs, a);
                    let xb = take(regs, b);
                    let v = match (&xa, &xb) {
                        (Expr::Val(va), Expr::Val(vb)) => match eval_binop(*op, va, vb) {
                            Ok(f) => Expr::Val(f),
                            Err(_) => Expr::Bin(*op, xa.into(), xb.into()),
                        },
                        _ => Expr::Bin(*op, xa.into(), xb.into()),
                    };
                    regs[*dst as usize] = v;
                }
                EOp::List { base, n, dst } => {
                    let window = *base as usize..(*base + *n) as usize;
                    let v = if regs[window.clone()]
                        .iter()
                        .all(|e| matches!(e, Expr::Val(_)))
                    {
                        // `promote_list`'s canonical form for all-literal
                        // lists, built without interning a node.
                        Expr::Val(Value::List(
                            regs[window]
                                .iter_mut()
                                .map(|e| {
                                    match std::mem::replace(e, Expr::Val(Value::Bool(false))) {
                                        Expr::Val(v) => v,
                                        _ => unreachable!("window checked all-literal"),
                                    }
                                })
                                .collect(),
                        ))
                    } else {
                        Expr::List(
                            regs[window]
                                .iter_mut()
                                .map(|e| std::mem::replace(e, Expr::Val(Value::Bool(false))))
                                .collect::<Vec<_>>()
                                .into(),
                        )
                    };
                    regs[*dst as usize] = v;
                }
                EOp::StrCat { base, n, dst } => {
                    let window = *base as usize..(*base + *n) as usize;
                    let v = Expr::StrCat(
                        regs[window]
                            .iter_mut()
                            .map(|e| std::mem::replace(e, Expr::Val(Value::Bool(false))))
                            .collect::<Vec<_>>()
                            .into(),
                    );
                    regs[*dst as usize] = v;
                }
                EOp::LstCat { base, n, dst } => {
                    let window = *base as usize..(*base + *n) as usize;
                    let v = Expr::LstCat(
                        regs[window]
                            .iter_mut()
                            .map(|e| std::mem::replace(e, Expr::Val(Value::Bool(false))))
                            .collect::<Vec<_>>()
                            .into(),
                    );
                    regs[*dst as usize] = v;
                }
            }
        }
        Ok(match &self.out {
            Operand::Reg(r) => std::mem::replace(
                &mut scratch.sregs[*r as usize],
                Expr::Val(Value::Bool(false)),
            ),
            Operand::Const(v) => Expr::Val(v.clone()),
        })
    }
}

/// The compiled evaluation strategy for one expression site.
///
/// Picked once at compile; hot kinds avoid both the tree walk and, where
/// possible, any register traffic. Backends that want the original tree
/// (the symbolic general case) read it back via [`ExprCode::source`].
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// A literal: evaluation is a clone.
    Lit(Value),
    /// A program-variable-free expression: its concrete result — value
    /// *or* error — is fixed at compile time. (Symbolically it may still
    /// depend on the path condition and is re-simplified per path.)
    Closed(Result<Value, EvalError>),
    /// A bare variable read.
    Var(Ident),
    /// `x op lit` / `lit op x` — the fused one-variable binop.
    Bin1 {
        /// The binary operator.
        op: BinOp,
        /// The program variable side.
        var: Ident,
        /// The literal side, pre-extracted.
        lit: Value,
        /// The literal side's original interned term, reused when the
        /// symbolic backend rebuilds the substituted expression (shares
        /// the node exactly as `Expr::subst` would).
        lit_term: Term,
        /// True when the variable is the left operand.
        var_on_left: bool,
        /// Guard elision: `op` is integer division and `lit` is a nonzero
        /// integer divisor, so the zero check is statically discharged.
        div_nz: bool,
    },
    /// The general case: a flattened register program.
    Reg(RegProg),
}

/// A compiled expression site: the chosen strategy plus the source tree
/// for backends that need it.
#[derive(Clone, Debug)]
pub struct ExprCode {
    source: Expr,
    kind: ExprKind,
}

impl ExprCode {
    /// Compiles one expression site.
    pub fn new(e: &Expr) -> ExprCode {
        let kind = match e {
            Expr::Val(v) => ExprKind::Lit(v.clone()),
            _ if e.pvars().is_empty() => ExprKind::Closed(eval(&Store::new(), e)),
            Expr::PVar(x) => ExprKind::Var(x.clone()),
            Expr::Bin(op, a, b) => match (&**a, &**b) {
                (Expr::PVar(x), Expr::Val(v)) => ExprKind::Bin1 {
                    op: *op,
                    var: x.clone(),
                    lit: v.clone(),
                    lit_term: b.clone(),
                    var_on_left: true,
                    div_nz: *op == BinOp::Div && matches!(v, Value::Int(n) if *n != 0),
                },
                (Expr::Val(v), Expr::PVar(x)) => ExprKind::Bin1 {
                    op: *op,
                    var: x.clone(),
                    lit: v.clone(),
                    lit_term: a.clone(),
                    var_on_left: false,
                    div_nz: false,
                },
                _ => ExprKind::Reg(RegProg::flatten(e)),
            },
            _ => ExprKind::Reg(RegProg::flatten(e)),
        };
        ExprCode {
            source: e.clone(),
            kind,
        }
    }

    /// The source expression this site was compiled from.
    pub fn source(&self) -> &Expr {
        &self.source
    }

    /// The compiled strategy.
    pub fn kind(&self) -> &ExprKind {
        &self.kind
    }

    /// Evaluates against a concrete store — same results, same errors,
    /// same error order as [`crate::eval::eval`] on [`Self::source`].
    ///
    /// # Errors
    ///
    /// Exactly the [`EvalError`]s of the tree walk.
    pub fn eval_concrete(
        &self,
        store: &Store,
        scratch: &mut EvalScratch,
    ) -> Result<Value, EvalError> {
        match &self.kind {
            ExprKind::Lit(v) => Ok(v.clone()),
            ExprKind::Closed(r) => r.clone(),
            ExprKind::Var(x) => store
                .get(x)
                .cloned()
                .ok_or_else(|| EvalError::new(format!("unbound variable {x}"))),
            ExprKind::Bin1 {
                op,
                var,
                lit,
                var_on_left,
                div_nz,
                ..
            } => {
                // The literal side never errors, so the variable lookup is
                // always the first (and only) possible pre-operator error.
                let v = store
                    .get(var)
                    .ok_or_else(|| EvalError::new(format!("unbound variable {var}")))?;
                if *div_nz {
                    if let (Value::Int(a), Value::Int(b)) = (v, lit) {
                        return Ok(Value::Int(a.wrapping_div(*b)));
                    }
                }
                if *var_on_left {
                    eval_binop(*op, v, lit)
                } else {
                    eval_binop(*op, lit, v)
                }
            }
            ExprKind::Reg(rp) => rp.run(store, scratch),
        }
    }
}

/// A compiled GIL command. One [`Instr`] per [`Cmd`], in source order, so
/// `pc == idx` (see the module docs on why that identity matters).
#[derive(Debug)]
pub enum Instr {
    /// Fused eval+assign: `x := e`.
    Assign {
        /// Assigned variable.
        lhs: Ident,
        /// Compiled right-hand side.
        code: ExprCode,
    },
    /// Fused compare+branch: `ifgoto e target`.
    CmpGoto {
        /// Compiled guard.
        code: ExprCode,
        /// Jump target when the guard holds (`pc == label`).
        target: Label,
    },
    /// Unconditional jump.
    Goto {
        /// Jump target (`pc == label`).
        target: Label,
    },
    /// Procedure call.
    Call {
        /// Variable receiving the return value.
        lhs: Ident,
        /// Compiled callee expression.
        code: ExprCode,
        /// Compiled argument expressions, in order.
        args: Vec<ExprCode>,
        /// Static resolution of a literal callee, when available.
        hint: Option<ProcHint>,
    },
    /// Return to the caller (or finish the path at the top frame).
    Return {
        /// Compiled return expression.
        code: ExprCode,
    },
    /// Fail with the evaluated (or failed-to-evaluate) value.
    Fail {
        /// Compiled payload expression.
        code: ExprCode,
    },
    /// Silently discard the path.
    Vanish,
    /// Memory action `x := α(e)` with a per-site inline cache.
    Action {
        /// Variable receiving the action result.
        lhs: Ident,
        /// The stringly-typed action name (the IC's fallback key).
        name: Ident,
        /// Compiled argument expression.
        code: ExprCode,
        /// Inline cache: [`IC_UNRESOLVED`], [`IC_NO_CODE`], or the memory
        /// model's dense action code biased by [`IC_BIAS`]. Never
        /// invalidated — programs are immutable after compile and a run
        /// binds one memory model.
        ic: AtomicU32,
    },
    /// Fresh uninterpreted symbol.
    USym {
        /// Variable receiving the symbol.
        lhs: Ident,
        /// Allocation site id.
        site: u32,
    },
    /// Fresh interpreted symbol.
    ISym {
        /// Variable receiving the symbol.
        lhs: Ident,
        /// Allocation site id.
        site: u32,
    },
    /// No-op.
    Skip,
}

/// Compile-time resolution of a literal callee.
#[derive(Clone, Debug)]
pub struct ProcHint {
    /// The statically known callee name.
    pub name: Ident,
    /// Its dense procedure id, when the program defines it. `None` keeps
    /// the "unknown procedure" error alive at run time — raised *after*
    /// argument evaluation, exactly as the tree walk orders it.
    pub pid: Option<u32>,
}

/// One compiled procedure.
#[derive(Debug)]
pub struct CompiledProc {
    /// The procedure name.
    pub name: Ident,
    /// Parameter names, in order.
    pub params: Vec<Ident>,
    /// The instruction vector (`pc == idx` into the source body).
    pub body: Vec<Instr>,
}

/// One procedure slot: the source body (expression handles, so the clone
/// is cheap) plus its once-compiled form.
#[derive(Debug)]
struct ProcSlot {
    src: Proc,
    compiled: std::sync::OnceLock<CompiledProc>,
}

/// A compiled program: procedures in [`Prog::iter`] (name) order, plus
/// the name→pid map. Not `Clone` — instruction inline caches are shared
/// state; hand the whole program around by reference (or `Arc`).
///
/// Procedures compile **lazily**, on first [`by_pid`](Self::by_pid): a
/// guest program bundles its whole standard library, but any one entry
/// point reaches only a fraction of it, and flattening every body up
/// front would charge each suite for code it never runs. The name→pid
/// map is still built eagerly so [`ProcHint`]s and "unknown procedure"
/// errors resolve exactly as before.
#[derive(Debug)]
pub struct CompiledProg {
    procs: Vec<ProcSlot>,
    by_name: BTreeMap<Ident, u32>,
}

impl CompiledProg {
    /// The dense id of a procedure, if defined.
    pub fn pid(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The compiled procedure with dense id `pid`, compiling it on first
    /// use (thread-safe; concurrent workers race benignly on the init).
    pub fn by_pid(&self, pid: u32) -> &CompiledProc {
        let slot = &self.procs[pid as usize];
        slot.compiled
            .get_or_init(|| compile_proc(&slot.src, &self.by_name))
    }

    /// Looks up a compiled procedure by name.
    pub fn proc(&self, name: &str) -> Option<&CompiledProc> {
        self.pid(name).map(|p| self.by_pid(p))
    }
}

fn compile_cmd(cmd: &Cmd, by_name: &BTreeMap<Ident, u32>) -> Instr {
    match cmd {
        Cmd::Assign(x, e) => Instr::Assign {
            lhs: x.clone(),
            code: ExprCode::new(e),
        },
        Cmd::IfGoto(e, j) => Instr::CmpGoto {
            code: ExprCode::new(e),
            target: *j,
        },
        Cmd::Goto(j) => Instr::Goto { target: *j },
        Cmd::Call { lhs, proc, args } => {
            let hint = match proc {
                Expr::Val(Value::Proc(f)) => Some(ProcHint {
                    name: f.clone(),
                    pid: by_name.get(f).copied(),
                }),
                _ => None,
            };
            Instr::Call {
                lhs: lhs.clone(),
                code: ExprCode::new(proc),
                args: args.iter().map(ExprCode::new).collect(),
                hint,
            }
        }
        Cmd::Return(e) => Instr::Return {
            code: ExprCode::new(e),
        },
        Cmd::Fail(e) => Instr::Fail {
            code: ExprCode::new(e),
        },
        Cmd::Vanish => Instr::Vanish,
        Cmd::Action { lhs, name, arg } => Instr::Action {
            lhs: lhs.clone(),
            name: name.clone(),
            code: ExprCode::new(arg),
            ic: AtomicU32::new(IC_UNRESOLVED),
        },
        Cmd::USym { lhs, site } => Instr::USym {
            lhs: lhs.clone(),
            site: *site,
        },
        Cmd::ISym { lhs, site } => Instr::ISym {
            lhs: lhs.clone(),
            site: *site,
        },
        Cmd::Skip => Instr::Skip,
    }
}

fn compile_proc(p: &Proc, by_name: &BTreeMap<Ident, u32>) -> CompiledProc {
    CompiledProc {
        name: p.name.clone(),
        params: p.params.clone(),
        body: p.body.iter().map(|c| compile_cmd(c, by_name)).collect(),
    }
}

/// Compiles a whole program. Procedure ids follow [`Prog::iter`]'s
/// deterministic name order. Bodies are flattened lazily — this builds
/// the id map and snapshots the sources (cheap handle clones); see
/// [`CompiledProg::by_pid`].
pub fn compile(prog: &Prog) -> CompiledProg {
    static COMPILES: std::sync::OnceLock<&'static gillian_telemetry::Counter> =
        std::sync::OnceLock::new();
    COMPILES
        .get_or_init(|| {
            gillian_telemetry::registry().counter(gillian_telemetry::names::EXEC_COMPILES)
        })
        .incr();
    let by_name: BTreeMap<Ident, u32> = prog
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i as u32))
        .collect();
    let procs = prog
        .iter()
        .map(|p| ProcSlot {
            src: p.clone(),
            compiled: std::sync::OnceLock::new(),
        })
        .collect();
    CompiledProg { procs, by_name }
}

/// The per-[`Prog`] memo of its compiled form, so exploring the same
/// program many times (a symbolic test suite is hundreds of entry points
/// into one program) compiles once and shares the warm inline caches.
///
/// Derived data, invisible to the program's value semantics: clones and
/// deserialized programs start cold, equality ignores it, and [`Prog`]'s
/// mutators reset it.
#[derive(Default)]
pub struct BytecodeCache(std::sync::OnceLock<std::sync::Arc<CompiledProg>>);

impl BytecodeCache {
    /// The compiled program, compiling on first use.
    pub(crate) fn get_or_compile(&self, prog: &Prog) -> std::sync::Arc<CompiledProg> {
        self.0
            .get_or_init(|| std::sync::Arc::new(compile(prog)))
            .clone()
    }
}

impl Clone for BytecodeCache {
    fn clone(&self) -> Self {
        BytecodeCache::default()
    }
}

impl PartialEq for BytecodeCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for BytecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.get().is_some() {
            "BytecodeCache(compiled)"
        } else {
            "BytecodeCache(cold)"
        })
    }
}

impl Prog {
    /// This program compiled to register bytecode, memoized per program
    /// instance (see [`BytecodeCache`]). Counted under `exec.compiles`
    /// only when the memo is cold.
    pub fn bytecode(&self) -> std::sync::Arc<CompiledProg> {
        self.bytecode.get_or_compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        let mut s = Store::new();
        s.set("x", Value::Int(10));
        s.set("y", Value::Int(3));
        s.set("name", Value::str("gil"));
        s.set("xs", Value::List(vec![Value::Int(1), Value::Int(2)]));
        s
    }

    /// The compiled evaluator must agree with the tree walk — values,
    /// error text, and first-error choice — on every expression.
    fn assert_agrees(e: &Expr) {
        let st = store();
        let mut scratch = EvalScratch::new();
        let code = ExprCode::new(e);
        let tree = eval(&st, e);
        let flat = code.eval_concrete(&st, &mut scratch);
        assert_eq!(flat, tree, "compiled vs tree walk on {e}");
        // The general register path must agree too, even when `new`
        // picked a fused kind.
        let rp = RegProg::flatten(e);
        assert_eq!(rp.run(&st, &mut scratch), tree, "RegProg on {e}");
    }

    #[test]
    fn fused_kinds_are_selected() {
        assert!(matches!(
            ExprCode::new(&Expr::int(3)).kind(),
            ExprKind::Lit(_)
        ));
        assert!(matches!(
            ExprCode::new(&Expr::int(1).add(Expr::int(2))).kind(),
            ExprKind::Closed(Ok(_))
        ));
        assert!(matches!(
            ExprCode::new(&Expr::int(1).div(Expr::int(0))).kind(),
            ExprKind::Closed(Err(_))
        ));
        assert!(matches!(
            ExprCode::new(&Expr::pvar("x")).kind(),
            ExprKind::Var(_)
        ));
        match ExprCode::new(&Expr::pvar("x").div(Expr::int(2))).kind() {
            ExprKind::Bin1 {
                var_on_left: true,
                div_nz: true,
                ..
            } => {}
            other => panic!("expected guarded Bin1, got {other:?}"),
        }
        match ExprCode::new(&Expr::int(7).lt(Expr::pvar("x"))).kind() {
            ExprKind::Bin1 {
                var_on_left: false,
                div_nz: false,
                ..
            } => {}
            other => panic!("expected mirrored Bin1, got {other:?}"),
        }
        assert!(matches!(
            ExprCode::new(&Expr::pvar("x").add(Expr::pvar("y"))).kind(),
            ExprKind::Reg(_)
        ));
    }

    #[test]
    fn compiled_eval_agrees_with_tree_walk() {
        let cases = [
            Expr::int(42),
            Expr::pvar("x"),
            Expr::pvar("x").add(Expr::int(5)),
            Expr::int(20).sub(Expr::pvar("y")),
            Expr::pvar("x").div(Expr::int(2)),
            Expr::pvar("x").div(Expr::pvar("y")),
            Expr::pvar("x").add(Expr::pvar("y")).mul(Expr::pvar("x")),
            Expr::list([Expr::pvar("x"), Expr::int(2).add(Expr::int(3))]),
            Expr::strcat_of([Expr::pvar("name"), Expr::str("!")]),
            Expr::lstcat_of([Expr::pvar("xs"), Expr::list([Expr::pvar("y")])]),
            Expr::pvar("xs").lst_nth(Expr::pvar("y").sub(Expr::int(2))),
            Expr::pvar("x").lt(Expr::int(10)).not(),
            Expr::list([
                Expr::list([Expr::pvar("x"), Expr::pvar("y")]),
                Expr::pvar("name"),
            ]),
        ];
        for e in &cases {
            assert_agrees(e);
        }
    }

    #[test]
    fn compiled_errors_match_tree_walk() {
        let cases = [
            // Unbound variable.
            Expr::pvar("missing"),
            // Unbound inside a larger term.
            Expr::pvar("missing").add(Expr::int(1)),
            // Division by zero, fused and general.
            Expr::pvar("x").div(Expr::int(0)),
            Expr::pvar("x").div(Expr::pvar("x").sub(Expr::pvar("x"))),
            // Closed erroring subtree inside an open expression: the
            // unbound error on the left still fires first.
            Expr::pvar("missing").add(Expr::int(1).div(Expr::int(0))),
            // …and when the erroring closed subtree comes first, it wins.
            Expr::int(1).div(Expr::int(0)).add(Expr::pvar("missing")),
            // Error order within one node: left operand before right.
            Expr::pvar("gone").add(Expr::pvar("also_gone")),
            // Type errors from operators.
            Expr::pvar("name").add(Expr::int(1)),
            Expr::strcat_of([Expr::pvar("x")]),
            // Logical variables are concrete-eval errors.
            Expr::lvar(LVar(7)).add(Expr::pvar("x")),
            Expr::pvar("x").add(Expr::lvar(LVar(7))),
        ];
        for e in &cases {
            assert_agrees(e);
        }
    }

    #[test]
    fn register_windows_nest() {
        // Nested n-ary nodes exercise window allocation above live slots.
        let e = Expr::list([
            Expr::strcat_of([Expr::pvar("name"), Expr::str("-"), Expr::pvar("name")]),
            Expr::lstcat_of([Expr::pvar("xs"), Expr::pvar("xs")]),
            Expr::pvar("x").add(Expr::pvar("y")),
        ]);
        assert_agrees(&e);
        let rp = RegProg::flatten(&e);
        assert!(rp.max_regs >= 3, "window needs at least three registers");
    }

    #[test]
    fn closed_subtrees_fold_to_constants() {
        let e = Expr::pvar("x").add(Expr::int(2).mul(Expr::int(21)));
        // Any non-Reg kind means a fused strategy consumed the constant
        // subtree entirely, which is even better.
        if let ExprKind::Reg(rp) = ExprCode::new(&e).kind() {
            assert!(
                rp.ops()
                    .iter()
                    .all(|op| !matches!(op, EOp::Bin { op: BinOp::Mul, .. })),
                "constant multiply must be folded at compile time"
            );
        }
        assert_agrees(&e);
    }

    #[test]
    fn scratch_is_reusable_across_programs() {
        let st = store();
        let mut scratch = EvalScratch::new();
        let a = ExprCode::new(&Expr::pvar("x").add(Expr::pvar("y")).mul(Expr::pvar("x")));
        let b = ExprCode::new(&Expr::list([Expr::pvar("y"), Expr::pvar("x")]));
        for _ in 0..3 {
            assert_eq!(a.eval_concrete(&st, &mut scratch), Ok(Value::Int(130)));
            assert_eq!(
                b.eval_concrete(&st, &mut scratch),
                Ok(Value::List(vec![Value::Int(3), Value::Int(10)]))
            );
        }
    }

    #[test]
    fn compile_assigns_pids_in_name_order_and_hints_calls() {
        let prog = Prog::from_procs([
            Proc::new(
                "main",
                [],
                vec![
                    Cmd::call_static("r", "aux", vec![Expr::int(1)]),
                    Cmd::call_static("s", "nope", vec![]),
                    Cmd::Return(Expr::pvar("r")),
                ],
            ),
            Proc::new("aux", ["n"], vec![Cmd::Return(Expr::pvar("n"))]),
        ]);
        let cp = compile(&prog);
        // Name order: aux = 0, main = 1.
        assert_eq!(cp.pid("aux"), Some(0));
        assert_eq!(cp.pid("main"), Some(1));
        assert_eq!(cp.by_pid(0).name.as_ref(), "aux");
        let main = cp.proc("main").unwrap();
        assert_eq!(main.body.len(), 3);
        match &main.body[0] {
            Instr::Call { hint: Some(h), .. } => {
                assert_eq!(h.name.as_ref(), "aux");
                assert_eq!(h.pid, Some(0));
            }
            other => panic!("expected hinted call, got {other:?}"),
        }
        match &main.body[1] {
            Instr::Call { hint: Some(h), .. } => {
                assert_eq!(h.name.as_ref(), "nope");
                assert_eq!(h.pid, None, "unknown callee stays unresolved");
            }
            other => panic!("expected hinted call, got {other:?}"),
        }
    }

    #[test]
    fn action_sites_start_unresolved() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![Cmd::action("v", "lookup", Expr::pvar("x"))],
        )]);
        let cp = compile(&prog);
        match &cp.proc("main").unwrap().body[0] {
            Instr::Action { ic, .. } => {
                assert_eq!(ic.load(std::sync::atomic::Ordering::Relaxed), IC_UNRESOLVED);
            }
            other => panic!("expected action, got {other:?}"),
        }
    }
}
