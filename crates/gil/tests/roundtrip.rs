//! Property test: the `.gil` text format round-trips — parsing the
//! pretty-printer's output reproduces the original program exactly.

use gillian_gil::parser::{parse_expr, parse_prog};
use gillian_gil::{BinOp, Cmd, Expr, LVar, Proc, Prog, Sym, Term, TypeTag, UnOp, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite doubles plus the printable special values.
        prop_oneof![
            (-1e9f64..1e9).prop_map(Value::num),
            Just(Value::num(f64::NAN)),
            Just(Value::num(f64::INFINITY)),
            Just(Value::num(f64::NEG_INFINITY)),
            Just(Value::num(-0.0)),
        ],
        "[ -~]{0,6}".prop_map(|s| Value::str(&s)), // printable ASCII
        any::<bool>().prop_map(Value::Bool),
        (0u64..500).prop_map(|i| Value::Sym(Sym(i))),
        proptest::sample::select(TypeTag::ALL.to_vec()).prop_map(Value::Type),
        "[a-z][a-z0-9_]{0,5}".prop_map(|s| Value::proc(&s)),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        proptest::collection::vec(inner, 0..3).prop_map(Value::List)
    })
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Not),
        Just(UnOp::Neg),
        Just(UnOp::TypeOf),
        Just(UnOp::IntToNum),
        Just(UnOp::NumToInt),
        Just(UnOp::ToStr),
        Just(UnOp::StrLen),
        Just(UnOp::LstLen),
        Just(UnOp::LstHead),
        Just(UnOp::LstTail),
        Just(UnOp::LstRev),
        Just(UnOp::BitNot),
        (1u8..=64).prop_map(UnOp::WrapSigned),
        (1u8..=64).prop_map(UnOp::WrapUnsigned),
        Just(UnOp::Floor),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    proptest::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Eq,
        BinOp::Lt,
        BinOp::Leq,
        BinOp::And,
        BinOp::Or,
        BinOp::BitAnd,
        BinOp::BitOr,
        BinOp::BitXor,
        BinOp::Shl,
        BinOp::ShrA,
        BinOp::ShrL,
        BinOp::LstNth,
        BinOp::StrNth,
        BinOp::LstCons,
        BinOp::LstSub,
    ])
}

/// Variable names that cannot collide with parser keywords.
fn arb_var() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}".prop_filter("keyword", |s| {
        !matches!(
            s.as_str(),
            "true"
                | "false"
                | "goto"
                | "ifgoto"
                | "return"
                | "fail"
                | "vanish"
                | "skip"
                | "proc"
                | "not"
                | "floor"
                | "and"
                | "or"
                | "to_str"
        ) && !s.starts_with("wrap_")
            && !s.starts_with("int_to_num")
            && !s.starts_with("num_to_int")
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Val),
        arb_var().prop_map(Expr::pvar),
        (0u64..100).prop_map(|i| Expr::lvar(LVar(i))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (arb_unop(), inner.clone()).prop_map(|(op, e)| e.un(op)),
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| a.bin(op, b)),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Expr::list),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(|es| Expr::StrCat(es.into())),
            proptest::collection::vec(inner, 1..3).prop_map(|es| Expr::LstCat(es.into())),
        ]
    })
}

fn arb_cmd(body_len: usize) -> impl Strategy<Value = Cmd> {
    let label = 0..body_len.max(1);
    prop_oneof![
        (arb_var(), arb_expr()).prop_map(|(x, e)| Cmd::assign(x, e)),
        (arb_expr(), label.clone()).prop_map(|(e, l)| Cmd::IfGoto(e, l)),
        label.clone().prop_map(Cmd::Goto),
        (
            arb_var(),
            arb_expr(),
            proptest::collection::vec(arb_expr(), 0..3)
        )
            .prop_map(|(lhs, proc, args)| Cmd::call(lhs, proc, args)),
        arb_expr().prop_map(Cmd::Return),
        arb_expr().prop_map(Cmd::Fail),
        Just(Cmd::Vanish),
        (arb_var(), arb_var(), arb_expr()).prop_map(|(lhs, name, arg)| Cmd::action(lhs, name, arg)),
        (arb_var(), 0u32..1000).prop_map(|(x, s)| Cmd::usym(x, s)),
        (arb_var(), 0u32..1000).prop_map(|(x, s)| Cmd::isym(x, s)),
        Just(Cmd::Skip),
    ]
}

fn arb_prog() -> impl Strategy<Value = Prog> {
    proptest::collection::btree_map(
        arb_var(),
        (
            proptest::collection::vec(arb_var(), 0..3),
            proptest::collection::vec(arb_cmd(6), 1..6),
        ),
        1..4,
    )
    .prop_map(|procs| {
        Prog::from_procs(procs.into_iter().map(|(name, (params, body))| {
            // Deduplicate parameter names positionally.
            let params: Vec<String> = params
                .into_iter()
                .enumerate()
                .map(|(i, p)| format!("{p}{i}"))
                .collect();
            Proc::new(&name, params.iter().map(String::as_str), body)
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn expr_round_trips(e in arb_expr()) {
        let printed = e.to_string();
        let parsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
        prop_assert_eq!(&parsed, &e, "printed: {}", printed);
    }

    #[test]
    fn interning_never_changes_syntax(e in arb_expr()) {
        // Parse → print → parse must be the identity not just structurally
        // but on interned identity: the reparsed term hash-conses to the
        // exact same node as the original, so the interner is invisible to
        // the `.gil` text format.
        let original: Term = e.clone().into();
        let reprinted = original.to_string();
        prop_assert_eq!(&reprinted, &e.to_string(), "Term must print as its Expr");
        let reparsed: Term = parse_expr(&reprinted)
            .unwrap_or_else(|err| panic!("failed to reparse `{reprinted}`: {err}"))
            .into();
        prop_assert!(
            original.same(&reparsed),
            "reparse of `{}` interned to a different node",
            reprinted
        );
    }

    #[test]
    fn prog_round_trips(p in arb_prog()) {
        let printed = p.to_string();
        let parsed = parse_prog(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse program: {err}\n{printed}"));
        prop_assert_eq!(&parsed, &p, "printed:\n{}", printed);
    }
}
