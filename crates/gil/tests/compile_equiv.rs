//! Table-driven equivalence suite for the bytecode compiler
//! (`DESIGN.md` §15): the compiled forms must accept and reject *exactly*
//! what the reference tree walk does.
//!
//! Three tables:
//!
//! 1. **Expressions** — for each (expression, store) row, `eval()` is the
//!    oracle and both compiled strategies (`ExprCode::eval_concrete` and
//!    a forced `RegProg::flatten(..).run(..)`) must match it bit-for-bit,
//!    including the exact [`EvalError`] message and *which* error fires
//!    first when several are possible.
//! 2. **Symbolic folding** — `RegProg::run_symbolic` on fully-literal
//!    stores must reach the same values as concrete evaluation (modulo
//!    the deliberately-unfolded concatenations), and report the same
//!    first unbound variable.
//! 3. **Commands** — every [`Cmd`] variant compiles to the expected
//!    [`Instr`] shape, one instruction per command (`pc == idx`), with
//!    call hints and inline caches in their documented initial states.

use gillian_gil::compile::{
    compile, EvalScratch, ExprCode, ExprKind, Instr, RegProg, IC_UNRESOLVED,
};
use gillian_gil::eval::{eval, Store};
use gillian_gil::{BinOp, Cmd, Expr, LVar, Proc, Prog, UnOp, Value};
use std::sync::atomic::Ordering;

fn store(bindings: &[(&str, Value)]) -> Store {
    let mut s = Store::new();
    for (x, v) in bindings {
        s.set(x, v.clone());
    }
    s
}

/// The expression table: name, expression, store. The oracle outcome is
/// computed by the tree walk, not hard-coded — the property under test is
/// *agreement*, including the error taxonomy (compared as rendered
/// [`EvalError`] strings).
fn expr_table() -> Vec<(&'static str, Expr, Store)> {
    let x_int = || store(&[("x", Value::Int(7))]);
    vec![
        ("literal", Expr::int(42), Store::new()),
        ("bare var", Expr::pvar("x"), x_int()),
        ("unbound var", Expr::pvar("nope"), Store::new()),
        (
            "lvar rejected concretely",
            Expr::lvar(LVar(3)),
            Store::new(),
        ),
        ("closed ok", Expr::int(2).add(Expr::int(3)), Store::new()),
        ("closed error", Expr::int(1).div(Expr::int(0)), Store::new()),
        ("bin1 var left", Expr::pvar("x").add(Expr::int(1)), x_int()),
        ("bin1 var right", Expr::int(1).add(Expr::pvar("x")), x_int()),
        ("bin1 div_nz", Expr::pvar("x").div(Expr::int(2)), x_int()),
        (
            "bin1 div_nz non-int operand",
            Expr::pvar("x").div(Expr::int(2)),
            store(&[("x", Value::str("oops"))]),
        ),
        (
            "bin1 div by zero",
            Expr::pvar("x").div(Expr::int(0)),
            x_int(),
        ),
        (
            "bin1 type error",
            Expr::pvar("x").add(Expr::str("s")),
            x_int(),
        ),
        ("bin1 unbound", Expr::pvar("y").mul(Expr::int(2)), x_int()),
        (
            "nested arithmetic",
            Expr::pvar("x")
                .add(Expr::int(1))
                .mul(Expr::pvar("x").sub(Expr::int(2))),
            x_int(),
        ),
        (
            "division by symbolic zero",
            Expr::pvar("x").div(Expr::pvar("z")),
            store(&[("x", Value::Int(7)), ("z", Value::Int(0))]),
        ),
        (
            "first error wins (left unbound beats right div-by-zero)",
            Expr::pvar("a").add(Expr::int(1).div(Expr::int(0))),
            Store::new(),
        ),
        (
            "error order inside a list",
            Expr::list([
                Expr::pvar("x"),
                Expr::pvar("missing"),
                Expr::int(1).div(Expr::int(0)),
            ]),
            x_int(),
        ),
        ("unop ok", Expr::str("hello").un(UnOp::StrLen), Store::new()),
        ("unop on var", Expr::pvar("x").un(UnOp::Neg), x_int()),
        ("unop type error", Expr::pvar("x").un(UnOp::StrLen), x_int()),
        (
            "head of empty list",
            Expr::list([]).un(UnOp::LstHead),
            Store::new(),
        ),
        (
            "list of vars",
            Expr::list([Expr::pvar("x"), Expr::int(2), Expr::pvar("x")]),
            x_int(),
        ),
        (
            "nested lists",
            Expr::list([Expr::list([Expr::pvar("x")]), Expr::list([])]),
            x_int(),
        ),
        (
            "strcat",
            Expr::strcat_of([Expr::str("a"), Expr::pvar("s"), Expr::str("c")]),
            store(&[("s", Value::str("b"))]),
        ),
        (
            "strcat type error",
            Expr::strcat_of([Expr::str("a"), Expr::pvar("x")]),
            x_int(),
        ),
        (
            "lstcat",
            Expr::lstcat_of([Expr::list([Expr::int(1)]), Expr::pvar("l")]),
            store(&[("l", Value::List(vec![Value::Int(2), Value::Int(3)]))]),
        ),
        (
            "lstcat type error",
            Expr::lstcat_of([Expr::list([]), Expr::pvar("x")]),
            x_int(),
        ),
        (
            "comparison chain",
            Expr::pvar("x").lt(Expr::int(10)).eq(Expr::bool(true)),
            x_int(),
        ),
        (
            "num_to_int of non-num",
            Expr::pvar("x").eq(Expr::int(7)).un(UnOp::NumToInt),
            x_int(),
        ),
        (
            "deep mixed tree",
            Expr::list([
                Expr::strcat_of([Expr::str("n="), Expr::pvar("x").un(UnOp::ToStr)]),
                Expr::pvar("x").mul(Expr::pvar("x")),
                Expr::bool(true).not(),
            ]),
            x_int(),
        ),
    ]
}

/// Both compiled strategies agree with the tree walk on every row —
/// values, errors, and error identity.
#[test]
fn compiled_expressions_match_treewalk() {
    let mut scratch = EvalScratch::new();
    for (name, e, st) in expr_table() {
        let oracle = eval(&st, &e);
        let site = ExprCode::new(&e);
        let via_site = site.eval_concrete(&st, &mut scratch);
        assert_eq!(
            oracle.as_ref().map_err(|err| err.to_string()),
            via_site.as_ref().map_err(|err| err.to_string()),
            "row {name:?}: ExprCode::eval_concrete diverged from eval()"
        );
        // Force the general register path even where ExprCode would have
        // picked a specialized strategy — the fallback must agree too.
        let via_reg = RegProg::flatten(&e).run(&st, &mut scratch);
        assert_eq!(
            oracle.as_ref().map_err(|err| err.to_string()),
            via_reg.as_ref().map_err(|err| err.to_string()),
            "row {name:?}: RegProg::run diverged from eval()"
        );
    }
}

/// True when the expression contains a concatenation node anywhere —
/// the one shape `run_symbolic` deliberately leaves residual.
fn contains_cat(e: &Expr) -> bool {
    match e {
        Expr::StrCat(_) | Expr::LstCat(_) => true,
        Expr::Un(_, t) => contains_cat(t),
        Expr::Bin(_, a, b) => contains_cat(a) || contains_cat(b),
        Expr::List(es) => es.iter().any(contains_cat),
        Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => false,
    }
}

/// `run_symbolic` over a fully-literal lookup: rows whose tree walk
/// succeeds and contain no concatenation must fold to exactly
/// `Expr::Val(oracle value)`; rows whose first failure is an unbound
/// variable must report that same variable.
#[test]
fn run_symbolic_folds_literal_stores() {
    let mut scratch = EvalScratch::new();
    for (name, e, st) in expr_table() {
        let rp = RegProg::flatten(&e);
        let lookup = |x: &gillian_gil::Ident| st.get(x).cloned().map(Expr::Val);
        let sym = rp.run_symbolic(lookup, &mut scratch);
        match eval(&st, &e) {
            Ok(v) => {
                if !contains_cat(&e) {
                    assert_eq!(
                        sym.as_ref().ok(),
                        Some(&Expr::Val(v)),
                        "row {name:?}: symbolic fold missed a concrete value"
                    );
                } else {
                    // Concatenations stay residual by design; the result
                    // must still be *closed* (no variables survive).
                    let folded = sym.expect("cat row should not error symbolically");
                    assert!(
                        folded.pvars().is_empty(),
                        "row {name:?}: a program variable survived folding"
                    );
                }
            }
            Err(err) => {
                let msg = err.to_string();
                if let Some(var) = msg.strip_prefix("evaluation error: unbound variable ") {
                    assert_eq!(
                        sym.as_ref().err().map(|x| x.as_ref()),
                        Some(var),
                        "row {name:?}: first unbound variable disagrees"
                    );
                }
                // Other concrete errors (type errors, division by zero)
                // are *not* symbolic errors: the evaluator keeps the
                // residual node and lets the path condition decide. The
                // contract there is checked by the engine batteries.
            }
        }
    }
}

/// Every `Cmd` variant compiles to its documented `Instr` shape, one
/// instruction per source command.
#[test]
fn every_cmd_variant_compiles_to_expected_shape() {
    let body = vec![
        Cmd::assign("x", Expr::int(1)),
        Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(2)), 0),
        Cmd::Goto(5),
        Cmd::Call {
            lhs: "r".into(),
            proc: Expr::proc("helper"),
            args: vec![Expr::pvar("x")],
        },
        Cmd::Call {
            lhs: "r".into(),
            proc: Expr::proc("no_such_proc"),
            args: vec![],
        },
        Cmd::Call {
            lhs: "r".into(),
            proc: Expr::pvar("f"),
            args: vec![],
        },
        Cmd::action("m", "lookup", Expr::pvar("x")),
        Cmd::USym {
            lhs: "u".into(),
            site: 9,
        },
        Cmd::ISym {
            lhs: "i".into(),
            site: 4,
        },
        Cmd::Skip,
        Cmd::Vanish,
        Cmd::Fail(Expr::str("boom")),
        Cmd::Return(Expr::pvar("x")),
    ];
    let n = body.len();
    let mut prog = Prog::new();
    prog.add(Proc::new("main", [], body));
    prog.add(Proc::new(
        "helper",
        ["a"],
        vec![Cmd::Return(Expr::pvar("a"))],
    ));
    let compiled = compile(&prog);

    let main = compiled.proc("main").expect("main compiles");
    assert_eq!(main.body.len(), n, "pc == idx requires one Instr per Cmd");

    match &main.body[0] {
        Instr::Assign { lhs, code } => {
            assert_eq!(lhs.as_ref(), "x");
            assert!(matches!(code.kind(), ExprKind::Lit(Value::Int(1))));
        }
        other => panic!("Assign compiled to {other:?}"),
    }
    match &main.body[1] {
        Instr::CmpGoto { code, target } => {
            assert_eq!(*target, 0);
            assert!(matches!(code.kind(), ExprKind::Bin1 { op: BinOp::Lt, .. }));
        }
        other => panic!("IfGoto compiled to {other:?}"),
    }
    assert!(matches!(&main.body[2], Instr::Goto { target: 5 }));
    match &main.body[3] {
        Instr::Call { hint, args, .. } => {
            let hint = hint.as_ref().expect("literal callee resolves a hint");
            assert_eq!(hint.name.as_ref(), "helper");
            assert_eq!(hint.pid, compiled.pid("helper"));
            assert!(hint.pid.is_some());
            assert_eq!(args.len(), 1);
        }
        other => panic!("Call compiled to {other:?}"),
    }
    match &main.body[4] {
        Instr::Call { hint, .. } => {
            // Unknown callee: the hint keeps the name but no pid, so the
            // "unknown procedure" error stays a *runtime* error, raised
            // after argument evaluation exactly as the tree walk does.
            let hint = hint.as_ref().expect("literal callee still hints");
            assert_eq!(hint.name.as_ref(), "no_such_proc");
            assert_eq!(hint.pid, None);
        }
        other => panic!("Call compiled to {other:?}"),
    }
    match &main.body[5] {
        Instr::Call { hint, code, .. } => {
            assert!(hint.is_none(), "dynamic callee must not be pre-resolved");
            assert!(matches!(code.kind(), ExprKind::Var(_)));
        }
        other => panic!("Call compiled to {other:?}"),
    }
    match &main.body[6] {
        Instr::Action { lhs, name, ic, .. } => {
            assert_eq!(lhs.as_ref(), "m");
            assert_eq!(name.as_ref(), "lookup");
            assert_eq!(ic.load(Ordering::Relaxed), IC_UNRESOLVED);
        }
        other => panic!("Action compiled to {other:?}"),
    }
    assert!(matches!(&main.body[7], Instr::USym { site: 9, .. }));
    assert!(matches!(&main.body[8], Instr::ISym { site: 4, .. }));
    assert!(matches!(&main.body[9], Instr::Skip));
    assert!(matches!(&main.body[10], Instr::Vanish));
    assert!(matches!(&main.body[11], Instr::Fail { .. }));
    assert!(matches!(&main.body[12], Instr::Return { .. }));

    // Dense, deterministic pids: both procedures resolve, distinctly.
    let (main_pid, helper_pid) = (
        compiled.pid("main").unwrap(),
        compiled.pid("helper").unwrap(),
    );
    assert_ne!(main_pid, helper_pid);
    assert!(main_pid < 2 && helper_pid < 2);
    assert_eq!(compiled.by_pid(main_pid).name.as_ref(), "main");
    assert_eq!(compiled.by_pid(helper_pid).params.len(), 1);
    assert_eq!(compiled.pid("absent"), None);
    assert!(compiled.proc("absent").is_none());
}

/// The compiler's strategy selection: each shape lands on the documented
/// [`ExprKind`], and `Closed` sites pre-compute errors without losing
/// them.
#[test]
fn expr_code_strategy_selection() {
    type KindCheck = fn(&ExprKind) -> bool;
    let rows: Vec<(&str, Expr, KindCheck)> = vec![
        ("lit", Expr::int(3), |k| matches!(k, ExprKind::Lit(_))),
        ("var", Expr::pvar("x"), |k| matches!(k, ExprKind::Var(_))),
        ("closed ok", Expr::int(1).add(Expr::int(2)), |k| {
            matches!(k, ExprKind::Closed(Ok(Value::Int(3))))
        }),
        ("closed err", Expr::int(1).div(Expr::int(0)), |k| {
            matches!(k, ExprKind::Closed(Err(_)))
        }),
        ("bin1 left", Expr::pvar("x").add(Expr::int(1)), |k| {
            matches!(
                k,
                ExprKind::Bin1 {
                    var_on_left: true,
                    div_nz: false,
                    ..
                }
            )
        }),
        ("bin1 right", Expr::int(1).add(Expr::pvar("x")), |k| {
            matches!(
                k,
                ExprKind::Bin1 {
                    var_on_left: false,
                    ..
                }
            )
        }),
        ("bin1 div_nz", Expr::pvar("x").div(Expr::int(2)), |k| {
            matches!(k, ExprKind::Bin1 { div_nz: true, .. })
        }),
        (
            "div by zero is not div_nz",
            Expr::pvar("x").div(Expr::int(0)),
            |k| matches!(k, ExprKind::Bin1 { div_nz: false, .. }),
        ),
        ("general", Expr::pvar("x").add(Expr::pvar("y")), |k| {
            matches!(k, ExprKind::Reg(_))
        }),
        (
            "lvar keeps general path",
            Expr::lvar(LVar(1)).add(Expr::pvar("x")),
            |k| matches!(k, ExprKind::Reg(_)),
        ),
    ];
    for (name, e, check) in rows {
        let code = ExprCode::new(&e);
        assert!(check(code.kind()), "row {name:?}: got {:?}", code.kind());
        assert_eq!(code.source(), &e, "row {name:?}: source must be preserved");
    }
}
