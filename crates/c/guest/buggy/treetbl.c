// Buggy tree table, the analogue of the paper's §4.2 bug 5 (a weak string
// hashing function that silently degraded hashtable behaviour): here a
// wrong comparison inserts duplicate keys instead of updating in place.
// Lookups still *serendipitously* return a correct value — exactly the
// "incorrect checks with serendipitously correct values" phenomenon the
// paper describes — but the size invariant breaks.

struct TNode {
    long key;
    long value;
    struct TNode *left;
    struct TNode *right;
};

struct TreeTbl {
    long size;
    struct TNode *root;
};

struct TreeTbl *treetbl_new(void) {
    struct TreeTbl *t = malloc(sizeof(struct TreeTbl));
    t->size = 0;
    t->root = NULL;
    return t;
}

long treetbl_add(struct TreeTbl *t, long key, long value) {
    struct TNode *node = malloc(sizeof(struct TNode));
    node->key = key;
    node->value = value;
    node->left = NULL;
    node->right = NULL;
    if (t->root == NULL) {
        t->root = node;
        t->size = t->size + 1;
        return 0;
    }
    struct TNode *cur = t->root;
    while (1) {
        // BUG 5-analogue: `<=` sends duplicates into the left subtree
        // instead of updating the existing entry.
        if (key <= cur->key) {
            if (cur->left == NULL) {
                cur->left = node;
                t->size = t->size + 1;
                return 0;
            }
            cur = cur->left;
        } else {
            if (cur->right == NULL) {
                cur->right = node;
                t->size = t->size + 1;
                return 0;
            }
            cur = cur->right;
        }
    }
    return 0;
}

long treetbl_get(struct TreeTbl *t, long key, long *out) {
    struct TNode *cur = t->root;
    while (cur != NULL) {
        if (key == cur->key) {
            *out = cur->value;
            return 0;
        }
        if (key < cur->key) {
            cur = cur->left;
        } else {
            cur = cur->right;
        }
    }
    return 6;
}

long treetbl_size(struct TreeTbl *t) {
    return t->size;
}

void treetbl_destroy_node(struct TNode *node) {
    if (node == NULL) {
        return;
    }
    treetbl_destroy_node(node->left);
    treetbl_destroy_node(node->right);
    free(node);
    return;
}

void treetbl_destroy(struct TreeTbl *t) {
    treetbl_destroy_node(t->root);
    free(t);
    return;
}
