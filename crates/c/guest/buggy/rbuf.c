// Buggy ring buffer, seeding the paper's §4.2 bug 4: "over-allocation in
// the ring-buffer data structure, but with correct behaviour of the
// associated functions" — the buffer allocates twice the needed bytes.
// All operations stay correct; the `block_size` introspection test
// exposes the waste.

struct RBuf {
    long size;
    long capacity;
    long head;
    long tail;
    long *buffer;
};

struct RBuf *rbuf_new(long capacity) {
    struct RBuf *rb = malloc(sizeof(struct RBuf));
    rb->size = 0;
    rb->capacity = capacity;
    rb->head = 0;
    rb->tail = 0;
    // BUG 4: allocates capacity * sizeof(long) * 2 bytes.
    rb->buffer = malloc(capacity * sizeof(long) * 2);
    return rb;
}

void rbuf_enqueue(struct RBuf *rb, long value) {
    rb->buffer[rb->tail] = value;
    rb->tail = (rb->tail + 1) % rb->capacity;
    if (rb->size == rb->capacity) {
        rb->head = (rb->head + 1) % rb->capacity;
    } else {
        rb->size = rb->size + 1;
    }
    return;
}

long rbuf_dequeue(struct RBuf *rb, long *out) {
    if (rb->size == 0) {
        return 8;
    }
    *out = rb->buffer[rb->head];
    rb->head = (rb->head + 1) % rb->capacity;
    rb->size = rb->size - 1;
    return 0;
}

long rbuf_size(struct RBuf *rb) {
    return rb->size;
}

void rbuf_destroy(struct RBuf *rb) {
    free(rb->buffer);
    free(rb);
    return;
}
