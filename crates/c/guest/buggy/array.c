// Buggy dynamic array, seeding two of the paper's §4.2 findings:
//
// - Bug 1: "a buffer overflow bug in the implementation of dynamic
//   arrays, caused by an off-by-one index" — `array_add` only expands
//   when size *exceeds* capacity, so the add at size == capacity writes
//   one element past the end of the buffer.
// - Bug 2: "usage of undefined behaviours (pointer comparison, in
//   particular)" — `array_expand` orders the old and new buffer pointers,
//   which point into different blocks.

struct Array {
    long size;
    long capacity;
    long *buffer;
};

struct Array *array_new(long capacity) {
    struct Array *ar = malloc(sizeof(struct Array));
    ar->size = 0;
    ar->capacity = capacity;
    ar->buffer = malloc(capacity * sizeof(long));
    return ar;
}

void array_expand(struct Array *ar) {
    long newcap = ar->capacity * 2;
    long *nb = malloc(newcap * sizeof(long));
    // BUG 2: ordering pointers into different blocks is UB.
    if (nb < ar->buffer) {
        memcpy(nb, ar->buffer, ar->size * sizeof(long));
    } else {
        memcpy(nb, ar->buffer, ar->size * sizeof(long));
    }
    free(ar->buffer);
    ar->buffer = nb;
    ar->capacity = newcap;
    return;
}

long array_add(struct Array *ar, long value) {
    // BUG 1: off-by-one — should be `>=`.
    if (ar->size > ar->capacity) {
        array_expand(ar);
    }
    ar->buffer[ar->size] = value;
    ar->size = ar->size + 1;
    return 0;
}

long array_get_at(struct Array *ar, long index, long *out) {
    if (index < 0 || index >= ar->size) {
        return 3;
    }
    *out = ar->buffer[index];
    return 0;
}

long array_size(struct Array *ar) {
    return ar->size;
}

void array_destroy(struct Array *ar) {
    free(ar->buffer);
    free(ar);
    return;
}
