// Symbolic tests for the priority queue (Table 2 row `pqueue`, #T = 2).

long test_pqueue_1(void) {
    long a = symb_long();
    long b = symb_long();
    long c = symb_long();
    struct PQueue *pq = pqueue_new();
    pqueue_push(pq, a);
    pqueue_push(pq, b);
    pqueue_push(pq, c);
    assert(pqueue_size(pq) == 3);
    long *out = malloc(sizeof(long));
    pqueue_pop(pq, out);
    long x = *out;
    pqueue_pop(pq, out);
    long y = *out;
    pqueue_pop(pq, out);
    long z = *out;
    assert(x <= y);
    assert(y <= z);
    assert(pqueue_size(pq) == 0);
    free(out);
    pqueue_destroy(pq);
    return 0;
}

long test_pqueue_2(void) {
    struct PQueue *pq = pqueue_new();
    long *out = malloc(sizeof(long));
    assert(pqueue_pop(pq, out) == 8);
    assert(pqueue_top(pq, out) == 8);
    long a = symb_long();
    pqueue_push(pq, a);
    pqueue_push(pq, a - 1);
    assert(pqueue_top(pq, out) == 0);
    assert(*out == a - 1);
    assert(pqueue_size(pq) == 2);
    free(out);
    pqueue_destroy(pq);
    return 0;
}
