// Symbolic tests for the queue (Table 2 row `queue`, #T = 4).

long test_queue_1(void) {
    long x = symb_long();
    long y = symb_long();
    struct Queue *q = queue_new();
    queue_enqueue(q, x);
    queue_enqueue(q, y);
    assert(queue_size(q) == 2);
    long *out = malloc(sizeof(long));
    assert(queue_poll(q, out) == 0);
    assert(*out == x);
    assert(queue_poll(q, out) == 0);
    assert(*out == y);
    free(out);
    queue_destroy(q);
    return 0;
}

long test_queue_2(void) {
    struct Queue *q = queue_new();
    long *out = malloc(sizeof(long));
    assert(queue_poll(q, out) == 8);
    assert(queue_peek(q, out) == 8);
    assert(queue_size(q) == 0);
    free(out);
    queue_destroy(q);
    return 0;
}

long test_queue_3(void) {
    long x = symb_long();
    struct Queue *q = queue_new();
    queue_enqueue(q, x);
    long *out = malloc(sizeof(long));
    assert(queue_peek(q, out) == 0);
    assert(*out == x);
    assert(queue_size(q) == 1);
    free(out);
    queue_destroy(q);
    return 0;
}

long test_queue_4(void) {
    // Interleaved enqueue/poll preserves FIFO.
    long x = symb_long();
    struct Queue *q = queue_new();
    queue_enqueue(q, x);
    long *out = malloc(sizeof(long));
    queue_poll(q, out);
    assert(*out == x);
    queue_enqueue(q, x + 1);
    queue_enqueue(q, x + 2);
    queue_poll(q, out);
    assert(*out == x + 1);
    assert(queue_size(q) == 1);
    free(out);
    queue_destroy(q);
    return 0;
}
