// Symbolic tests for the tree set (Table 2 row `treeset`, #T = 6).

long test_treeset_1(void) {
    long x = symb_long();
    struct TreeSet *s = treeset_new();
    treeset_add(s, x);
    assert(treeset_contains(s, x));
    assert(treeset_size(s) == 1);
    treeset_destroy(s);
    return 0;
}

long test_treeset_2(void) {
    // Adding twice keeps the set a set.
    long x = symb_long();
    struct TreeSet *s = treeset_new();
    treeset_add(s, x);
    treeset_add(s, x);
    assert(treeset_size(s) == 1);
    treeset_destroy(s);
    return 0;
}

long test_treeset_3(void) {
    long x = symb_long();
    long y = symb_long();
    struct TreeSet *s = treeset_new();
    treeset_add(s, x);
    treeset_add(s, y);
    if (x == y) {
        assert(treeset_size(s) == 1);
    } else {
        assert(treeset_size(s) == 2);
    }
    treeset_destroy(s);
    return 0;
}

long test_treeset_4(void) {
    long x = symb_long();
    struct TreeSet *s = treeset_new();
    treeset_add(s, x);
    assert(treeset_remove(s, x) == 0);
    assert(!treeset_contains(s, x));
    assert(treeset_size(s) == 0);
    assert(treeset_remove(s, x) == 6);
    treeset_destroy(s);
    return 0;
}

long test_treeset_5(void) {
    long x = symb_long();
    assume(x > 0 && x < 1000);
    struct TreeSet *s = treeset_new();
    treeset_add(s, x);
    treeset_add(s, x + 2);
    treeset_add(s, x - 2);
    long *out = malloc(sizeof(long));
    assert(treeset_first(s, out) == 0);
    assert(*out == x - 2);
    assert(treeset_last(s, out) == 0);
    assert(*out == x + 2);
    free(out);
    treeset_destroy(s);
    return 0;
}

long test_treeset_6(void) {
    struct TreeSet *s = treeset_new();
    long *out = malloc(sizeof(long));
    assert(treeset_first(s, out) == 6);
    assert(treeset_last(s, out) == 6);
    assert(treeset_size(s) == 0);
    free(out);
    treeset_destroy(s);
    return 0;
}
