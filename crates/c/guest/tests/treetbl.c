// Symbolic tests for the tree table (Table 2 row `treetbl`, #T = 13).

long test_treetbl_1(void) {
    long k = symb_long();
    long v = symb_long();
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, k, v);
    long *out = malloc(sizeof(long));
    assert(treetbl_get(t, k, out) == 0);
    assert(*out == v);
    assert(treetbl_size(t) == 1);
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_2(void) {
    long k = symb_long();
    struct TreeTbl *t = treetbl_new();
    long *out = malloc(sizeof(long));
    assert(treetbl_get(t, k, out) == 6);
    assert(!treetbl_contains_key(t, k));
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_3(void) {
    // Re-adding a key updates in place.
    long k = symb_long();
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, k, 1);
    treetbl_add(t, k, 2);
    assert(treetbl_size(t) == 1);
    long *out = malloc(sizeof(long));
    treetbl_get(t, k, out);
    assert(*out == 2);
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_4(void) {
    long k1 = symb_long();
    long k2 = symb_long();
    assume(k1 != k2);
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, k1, 10);
    treetbl_add(t, k2, 20);
    assert(treetbl_size(t) == 2);
    long *out = malloc(sizeof(long));
    treetbl_get(t, k1, out);
    assert(*out == 10);
    treetbl_get(t, k2, out);
    assert(*out == 20);
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_5(void) {
    long k = symb_long();
    assume(k > 0 && k < 1000);
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, k, k);
    treetbl_add(t, k - 1, k - 1);
    treetbl_add(t, k + 1, k + 1);
    long *out = malloc(sizeof(long));
    assert(treetbl_first_key(t, out) == 0);
    assert(*out == k - 1);
    assert(treetbl_last_key(t, out) == 0);
    assert(*out == k + 1);
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_6(void) {
    struct TreeTbl *t = treetbl_new();
    long *out = malloc(sizeof(long));
    assert(treetbl_first_key(t, out) == 6);
    assert(treetbl_last_key(t, out) == 6);
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_7(void) {
    long k = symb_long();
    long v = symb_long();
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, k, v);
    long *out = malloc(sizeof(long));
    assert(treetbl_remove(t, k, out) == 0);
    assert(*out == v);
    assert(treetbl_size(t) == 0);
    assert(treetbl_remove(t, k, out) == 6);
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_8(void) {
    // Remove an inner node with two children.
    long k = symb_long();
    assume(k > 0 && k < 1000);
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, k, k);
    treetbl_add(t, k - 1, k - 1);
    treetbl_add(t, k + 1, k + 1);
    long *out = malloc(sizeof(long));
    assert(treetbl_remove(t, k, out) == 0);
    assert(treetbl_size(t) == 2);
    assert(treetbl_contains_key(t, k - 1));
    assert(treetbl_contains_key(t, k + 1));
    assert(!treetbl_contains_key(t, k));
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_9(void) {
    // Remove the root with one child.
    long k = symb_long();
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, k, 1);
    treetbl_add(t, k + 5, 2);
    long *out = malloc(sizeof(long));
    assert(treetbl_remove(t, k, out) == 0);
    assert(treetbl_contains_key(t, k + 5));
    assert(treetbl_first_key(t, out) == 0);
    assert(*out == k + 5);
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_10(void) {
    // Symbolic membership question.
    long k1 = symb_long();
    long k2 = symb_long();
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, k1, 1);
    if (treetbl_contains_key(t, k2)) {
        assert(k1 == k2);
    } else {
        assert(k1 != k2);
    }
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_11(void) {
    // Keys inserted in both orders produce the same extrema.
    long a = symb_long();
    long b = symb_long();
    assume(a < b);
    struct TreeTbl *t1 = treetbl_new();
    treetbl_add(t1, a, a);
    treetbl_add(t1, b, b);
    struct TreeTbl *t2 = treetbl_new();
    treetbl_add(t2, b, b);
    treetbl_add(t2, a, a);
    long *o1 = malloc(sizeof(long));
    long *o2 = malloc(sizeof(long));
    treetbl_first_key(t1, o1);
    treetbl_first_key(t2, o2);
    assert(*o1 == *o2);
    treetbl_last_key(t1, o1);
    treetbl_last_key(t2, o2);
    assert(*o1 == *o2);
    free(o1);
    free(o2);
    treetbl_destroy(t1);
    treetbl_destroy(t2);
    return 0;
}

long test_treetbl_12(void) {
    // A deeper tree: four concrete keys plus one symbolic probe.
    long k = symb_long();
    assume(k == 1 || k == 3 || k == 5 || k == 7);
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, 5, 50);
    treetbl_add(t, 3, 30);
    treetbl_add(t, 7, 70);
    treetbl_add(t, 1, 10);
    long *out = malloc(sizeof(long));
    assert(treetbl_get(t, k, out) == 0);
    assert(*out == k * 10);
    free(out);
    treetbl_destroy(t);
    return 0;
}

long test_treetbl_13(void) {
    // Size tracks removals through all shapes.
    struct TreeTbl *t = treetbl_new();
    treetbl_add(t, 5, 5);
    treetbl_add(t, 3, 3);
    treetbl_add(t, 7, 7);
    long *out = malloc(sizeof(long));
    treetbl_remove(t, 5, out);
    assert(treetbl_size(t) == 2);
    treetbl_remove(t, 3, out);
    assert(treetbl_size(t) == 1);
    treetbl_remove(t, 7, out);
    assert(treetbl_size(t) == 0);
    free(out);
    treetbl_destroy(t);
    return 0;
}
