// Symbolic tests for the deque (Table 2 row `deque`, #T = 34).

long test_deque_1(void) {
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    long *out = malloc(sizeof(long));
    assert(deque_get_first(dq, out) == 0);
    assert(*out == x);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_2(void) {
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_first(dq, x);
    long *out = malloc(sizeof(long));
    assert(deque_get_last(dq, out) == 0);
    assert(*out == x);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_3(void) {
    long x = symb_long();
    long y = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    deque_add_last(dq, y);
    long *out = malloc(sizeof(long));
    deque_get_first(dq, out);
    assert(*out == x);
    deque_get_last(dq, out);
    assert(*out == y);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_4(void) {
    long x = symb_long();
    long y = symb_long();
    struct Deque *dq = deque_new();
    deque_add_first(dq, x);
    deque_add_first(dq, y);
    long *out = malloc(sizeof(long));
    deque_get_first(dq, out);
    assert(*out == y);
    deque_get_last(dq, out);
    assert(*out == x);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_5(void) {
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    long *out = malloc(sizeof(long));
    assert(deque_remove_first(dq, out) == 0);
    assert(*out == x);
    assert(deque_size(dq) == 0);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_6(void) {
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    long *out = malloc(sizeof(long));
    assert(deque_remove_last(dq, out) == 0);
    assert(*out == x);
    assert(deque_size(dq) == 0);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_7(void) {
    struct Deque *dq = deque_new();
    long *out = malloc(sizeof(long));
    assert(deque_remove_first(dq, out) == 8);
    assert(deque_remove_last(dq, out) == 8);
    assert(deque_get_first(dq, out) == 8);
    assert(deque_get_last(dq, out) == 8);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_8(void) {
    // FIFO through add_last / remove_first.
    long x = symb_long();
    long y = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    deque_add_last(dq, y);
    long *out = malloc(sizeof(long));
    deque_remove_first(dq, out);
    assert(*out == x);
    deque_remove_first(dq, out);
    assert(*out == y);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_9(void) {
    // LIFO through add_last / remove_last.
    long x = symb_long();
    long y = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    deque_add_last(dq, y);
    long *out = malloc(sizeof(long));
    deque_remove_last(dq, out);
    assert(*out == y);
    deque_remove_last(dq, out);
    assert(*out == x);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_10(void) {
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_first(dq, x + 1);
    deque_add_last(dq, x + 2);
    deque_add_first(dq, x);
    long *out = malloc(sizeof(long));
    deque_get_at(dq, 0, out);
    assert(*out == x);
    deque_get_at(dq, 1, out);
    assert(*out == x + 1);
    deque_get_at(dq, 2, out);
    assert(*out == x + 2);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_11(void) {
    struct Deque *dq = deque_new();
    deque_add_last(dq, 1);
    long *out = malloc(sizeof(long));
    assert(deque_get_at(dq, 1, out) == 3);
    assert(deque_get_at(dq, 0 - 1, out) == 3);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_12(void) {
    // Wrap-around: add_first drops `first` below zero and wraps.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_first(dq, x);
    deque_add_first(dq, x + 1);
    long *out = malloc(sizeof(long));
    deque_get_at(dq, 0, out);
    assert(*out == x + 1);
    deque_get_at(dq, 1, out);
    assert(*out == x);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_13(void) {
    // Fill to capacity 8, then expand on the 9th element.
    long x = symb_long();
    struct Deque *dq = deque_new();
    for (long i = 0; i < 9; i = i + 1) {
        deque_add_last(dq, x + i);
    }
    assert(deque_size(dq) == 9);
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 9; i = i + 1) {
        deque_get_at(dq, i, out);
        assert(*out == x + i);
    }
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_14(void) {
    // Expansion linearises a wrapped buffer.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_first(dq, x);
    for (long i = 1; i < 9; i = i + 1) {
        deque_add_last(dq, x + i);
    }
    assert(deque_size(dq) == 9);
    long *out = malloc(sizeof(long));
    deque_get_at(dq, 0, out);
    assert(*out == x);
    deque_get_at(dq, 8, out);
    assert(*out == x + 8);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_15(void) {
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    long *out = malloc(sizeof(long));
    deque_remove_first(dq, out);
    deque_add_first(dq, x + 7);
    deque_get_first(dq, out);
    assert(*out == x + 7);
    assert(deque_size(dq) == 1);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_16(void) {
    struct Deque *dq = deque_new();
    assert(deque_size(dq) == 0);
    deque_add_last(dq, 1);
    deque_add_first(dq, 2);
    assert(deque_size(dq) == 2);
    long *out = malloc(sizeof(long));
    deque_remove_last(dq, out);
    assert(deque_size(dq) == 1);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_17(void) {
    // Alternating pushes preserve order.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x + 2);
    deque_add_first(dq, x + 1);
    deque_add_last(dq, x + 3);
    deque_add_first(dq, x);
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 4; i = i + 1) {
        deque_get_at(dq, i, out);
        assert(*out == x + i);
    }
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_18(void) {
    // Drain interleaved from both ends.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    deque_add_last(dq, x + 1);
    deque_add_last(dq, x + 2);
    long *out = malloc(sizeof(long));
    deque_remove_first(dq, out);
    assert(*out == x);
    deque_remove_last(dq, out);
    assert(*out == x + 2);
    deque_remove_first(dq, out);
    assert(*out == x + 1);
    assert(deque_size(dq) == 0);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_19(void) {
    // A symbolic in-bounds index over a three-element deque.
    long i = symb_long();
    assume(i >= 0 && i < 3);
    struct Deque *dq = deque_new();
    deque_add_last(dq, 10);
    deque_add_last(dq, 11);
    deque_add_last(dq, 12);
    long *out = malloc(sizeof(long));
    assert(deque_get_at(dq, i, out) == 0);
    assert(*out == 10 + i);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_20(void) {
    // Remove from a wrapped deque.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_first(dq, x);
    deque_add_first(dq, x - 1);
    long *out = malloc(sizeof(long));
    deque_remove_last(dq, out);
    assert(*out == x);
    deque_get_first(dq, out);
    assert(*out == x - 1);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_21(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    deque_add_last(dq, y);
    long *out = malloc(sizeof(long));
    deque_get_at(dq, 0, out);
    long first = *out;
    deque_get_at(dq, 1, out);
    long second = *out;
    assert(first != second);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_22(void) {
    // get does not consume.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    long *out = malloc(sizeof(long));
    deque_get_first(dq, out);
    deque_get_first(dq, out);
    assert(deque_size(dq) == 1);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_23(void) {
    // The buffer block has exactly capacity * sizeof(long) bytes.
    struct Deque *dq = deque_new();
    long *probe = dq->buffer;
    assert(block_size(probe) == 8 * sizeof(long));
    deque_destroy(dq);
    return 0;
}

long test_deque_24(void) {
    // Emptying and refilling crosses the wrap boundary repeatedly.
    long x = symb_long();
    struct Deque *dq = deque_new();
    long *out = malloc(sizeof(long));
    for (long round = 0; round < 3; round = round + 1) {
        deque_add_last(dq, x + round);
        deque_remove_first(dq, out);
        assert(*out == x + round);
    }
    assert(deque_size(dq) == 0);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_25(void) {
    // Size stays consistent under a mixed workload.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    deque_add_first(dq, x);
    deque_add_last(dq, x);
    long *out = malloc(sizeof(long));
    deque_remove_first(dq, out);
    assert(deque_size(dq) == 2);
    deque_remove_last(dq, out);
    assert(deque_size(dq) == 1);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_26(void) {
    // Duplicated symbolic values: the deque stores positions, not values.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    deque_add_last(dq, x);
    assert(deque_size(dq) == 2);
    long *out = malloc(sizeof(long));
    deque_remove_first(dq, out);
    assert(*out == x);
    assert(deque_size(dq) == 1);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_27(void) {
    // get_last after a wrap-around.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_first(dq, x);
    long *out = malloc(sizeof(long));
    deque_get_last(dq, out);
    assert(*out == x);
    deque_add_first(dq, x + 1);
    deque_get_last(dq, out);
    assert(*out == x);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_28(void) {
    // Symbolic branching on a comparison of two dequeued values.
    long x = symb_long();
    long y = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    deque_add_last(dq, y);
    long *out = malloc(sizeof(long));
    deque_remove_first(dq, out);
    long a = *out;
    deque_remove_first(dq, out);
    long b = *out;
    if (x < y) {
        assert(a < b);
    } else {
        assert(a >= b);
    }
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_29(void) {
    // Capacity doubles on expansion.
    struct Deque *dq = deque_new();
    for (long i = 0; i < 9; i = i + 1) {
        deque_add_last(dq, i);
    }
    assert(dq->capacity == 16);
    long *probe = dq->buffer;
    assert(block_size(probe) == 16 * sizeof(long));
    deque_destroy(dq);
    return 0;
}

long test_deque_30(void) {
    // After expansion the deque keeps behaving at both ends.
    long x = symb_long();
    struct Deque *dq = deque_new();
    for (long i = 0; i < 9; i = i + 1) {
        deque_add_last(dq, x + i);
    }
    deque_add_first(dq, x - 1);
    long *out = malloc(sizeof(long));
    deque_get_first(dq, out);
    assert(*out == x - 1);
    deque_remove_last(dq, out);
    assert(*out == x + 8);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_31(void) {
    // get_at walks the logical, not the physical, order.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_first(dq, x + 1);
    deque_add_first(dq, x);
    deque_add_last(dq, x + 2);
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 3; i = i + 1) {
        deque_get_at(dq, i, out);
        assert(*out == x + i);
    }
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_32(void) {
    // Status codes do not disturb contents.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    long *out = malloc(sizeof(long));
    assert(deque_get_at(dq, 5, out) == 3);
    deque_get_first(dq, out);
    assert(*out == x);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_33(void) {
    // A fully drained deque accepts new elements at both ends.
    long x = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    long *out = malloc(sizeof(long));
    deque_remove_last(dq, out);
    deque_add_first(dq, x + 1);
    deque_add_last(dq, x + 2);
    assert(deque_size(dq) == 2);
    deque_get_at(dq, 0, out);
    assert(*out == x + 1);
    free(out);
    deque_destroy(dq);
    return 0;
}

long test_deque_34(void) {
    // Remove alternating with symbolic equality branching.
    long x = symb_long();
    long y = symb_long();
    struct Deque *dq = deque_new();
    deque_add_last(dq, x);
    deque_add_last(dq, y);
    long *out = malloc(sizeof(long));
    deque_remove_first(dq, out);
    if (*out == y) {
        assert(x == y);
    }
    free(out);
    deque_destroy(dq);
    return 0;
}
