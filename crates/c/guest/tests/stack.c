// Symbolic tests for the stack (Table 2 row `stack`, #T = 2).

long test_stack_1(void) {
    long x = symb_long();
    long y = symb_long();
    struct Stack *s = stack_new();
    stack_push(s, x);
    stack_push(s, y);
    assert(stack_size(s) == 2);
    long *out = malloc(sizeof(long));
    assert(stack_peek(s, out) == 0);
    assert(*out == y);
    assert(stack_pop(s, out) == 0);
    assert(*out == y);
    assert(stack_pop(s, out) == 0);
    assert(*out == x);
    assert(stack_size(s) == 0);
    free(out);
    stack_destroy(s);
    return 0;
}

long test_stack_2(void) {
    struct Stack *s = stack_new();
    long *out = malloc(sizeof(long));
    assert(stack_pop(s, out) == 8);
    assert(stack_peek(s, out) == 8);
    long x = symb_long();
    stack_push(s, x);
    stack_pop(s, out);
    stack_push(s, x + 1);
    assert(stack_peek(s, out) == 0);
    assert(*out == x + 1);
    free(out);
    stack_destroy(s);
    return 0;
}
