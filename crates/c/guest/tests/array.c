// Symbolic tests for the dynamic array (Table 2 row `array`, #T = 22).

long test_array_1(void) {
    long x = symb_long();
    struct Array *ar = array_new(4);
    array_add(ar, x);
    long *out = malloc(sizeof(long));
    assert(array_get_at(ar, 0, out) == 0);
    assert(*out == x);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_2(void) {
    // Adding past the capacity expands; all elements survive.
    long x = symb_long();
    struct Array *ar = array_new(2);
    array_add(ar, x);
    array_add(ar, x + 1);
    array_add(ar, x + 2);
    assert(array_size(ar) == 3);
    long *out = malloc(sizeof(long));
    array_get_at(ar, 0, out);
    assert(*out == x);
    array_get_at(ar, 2, out);
    assert(*out == x + 2);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_3(void) {
    long x = symb_long();
    struct Array *ar = array_new(4);
    array_add(ar, 1);
    array_add(ar, 2);
    assert(array_add_at(ar, x, 0) == 0);
    long *out = malloc(sizeof(long));
    array_get_at(ar, 0, out);
    assert(*out == x);
    array_get_at(ar, 1, out);
    assert(*out == 1);
    assert(array_size(ar) == 3);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_4(void) {
    long x = symb_long();
    struct Array *ar = array_new(4);
    array_add(ar, 1);
    array_add(ar, 3);
    assert(array_add_at(ar, x, 1) == 0);
    long *out = malloc(sizeof(long));
    array_get_at(ar, 1, out);
    assert(*out == x);
    array_get_at(ar, 2, out);
    assert(*out == 3);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_5(void) {
    struct Array *ar = array_new(2);
    array_add(ar, 1);
    assert(array_add_at(ar, 9, 2) == 3);
    assert(array_add_at(ar, 9, 0 - 1) == 3);
    assert(array_size(ar) == 1);
    array_destroy(ar);
    return 0;
}

long test_array_6(void) {
    struct Array *ar = array_new(2);
    array_add(ar, 1);
    long *out = malloc(sizeof(long));
    assert(array_get_at(ar, 1, out) == 3);
    assert(array_get_at(ar, 0 - 1, out) == 3);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_7(void) {
    long x = symb_long();
    long y = symb_long();
    struct Array *ar = array_new(2);
    array_add(ar, x);
    long *old = malloc(sizeof(long));
    assert(array_replace_at(ar, y, 0, old) == 0);
    assert(*old == x);
    long *now = malloc(sizeof(long));
    array_get_at(ar, 0, now);
    assert(*now == y);
    free(old);
    free(now);
    array_destroy(ar);
    return 0;
}

long test_array_8(void) {
    long x = symb_long();
    struct Array *ar = array_new(4);
    array_add(ar, x);
    array_add(ar, x + 1);
    long *out = malloc(sizeof(long));
    assert(array_remove_at(ar, 0, out) == 0);
    assert(*out == x);
    assert(array_size(ar) == 1);
    array_get_at(ar, 0, out);
    assert(*out == x + 1);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_9(void) {
    long x = symb_long();
    struct Array *ar = array_new(4);
    array_add(ar, x);
    array_add(ar, x + 1);
    long *out = malloc(sizeof(long));
    assert(array_remove_at(ar, 1, out) == 0);
    assert(*out == x + 1);
    assert(array_size(ar) == 1);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_10(void) {
    struct Array *ar = array_new(2);
    long *out = malloc(sizeof(long));
    assert(array_remove_at(ar, 0, out) == 3);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_11(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct Array *ar = array_new(4);
    array_add(ar, x);
    array_add(ar, y);
    assert(array_index_of(ar, x) == 0);
    assert(array_index_of(ar, y) == 1);
    array_destroy(ar);
    return 0;
}

long test_array_12(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct Array *ar = array_new(4);
    array_add(ar, x);
    array_add(ar, y);
    array_add(ar, x);
    assert(array_contains(ar, x) == 2);
    assert(array_contains(ar, y) == 1);
    array_destroy(ar);
    return 0;
}

long test_array_13(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct Array *ar = array_new(4);
    array_add(ar, x);
    array_add(ar, y);
    assert(array_remove(ar, x) == 0);
    assert(array_size(ar) == 1);
    assert(array_index_of(ar, y) == 0);
    array_destroy(ar);
    return 0;
}

long test_array_14(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct Array *ar = array_new(4);
    array_add(ar, x);
    assert(array_remove(ar, y) == 8);
    assert(array_size(ar) == 1);
    array_destroy(ar);
    return 0;
}

long test_array_15(void) {
    long x = symb_long();
    long y = symb_long();
    struct Array *ar = array_new(4);
    array_add(ar, x);
    array_add(ar, y);
    array_reverse(ar);
    long *out = malloc(sizeof(long));
    array_get_at(ar, 0, out);
    assert(*out == y);
    array_get_at(ar, 1, out);
    assert(*out == x);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_16(void) {
    long x = symb_long();
    struct Array *ar = array_new(4);
    array_add(ar, x);
    array_add(ar, x + 1);
    array_add(ar, x + 2);
    array_reverse(ar);
    long *out = malloc(sizeof(long));
    array_get_at(ar, 0, out);
    assert(*out == x + 2);
    array_get_at(ar, 1, out);
    assert(*out == x + 1);
    array_get_at(ar, 2, out);
    assert(*out == x);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_17(void) {
    struct Array *ar = array_new(2);
    assert(array_size(ar) == 0);
    array_add(ar, 1);
    assert(array_size(ar) == 1);
    long *out = malloc(sizeof(long));
    array_remove_at(ar, 0, out);
    assert(array_size(ar) == 0);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_18(void) {
    // Double expansion: capacity 1 grows twice.
    long x = symb_long();
    struct Array *ar = array_new(1);
    array_add(ar, x);
    array_add(ar, x + 1);
    array_add(ar, x + 2);
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 3; i = i + 1) {
        array_get_at(ar, i, out);
        assert(*out == x + i);
    }
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_19(void) {
    // A symbolic in-bounds index: the memory model branches over the runs.
    long i = symb_long();
    assume(i >= 0 && i < 3);
    struct Array *ar = array_new(4);
    array_add(ar, 10);
    array_add(ar, 11);
    array_add(ar, 12);
    long *out = malloc(sizeof(long));
    assert(array_get_at(ar, i, out) == 0);
    assert(*out == 10 + i);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_20(void) {
    long x = symb_long();
    struct Array *ar = array_new(2);
    array_add(ar, x);
    long *out = malloc(sizeof(long));
    array_remove_at(ar, 0, out);
    array_add(ar, x + 5);
    array_get_at(ar, 0, out);
    assert(*out == x + 5);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_21(void) {
    // add_at at the very end behaves like add, including the expand path.
    long x = symb_long();
    struct Array *ar = array_new(2);
    array_add(ar, 1);
    array_add(ar, 2);
    assert(array_add_at(ar, x, 2) == 0);
    long *out = malloc(sizeof(long));
    array_get_at(ar, 2, out);
    assert(*out == x);
    free(out);
    array_destroy(ar);
    return 0;
}

long test_array_22(void) {
    // The buffer block is exactly capacity * sizeof(long) bytes.
    struct Array *ar = array_new(4);
    long *probe = ar->buffer;
    assert(block_size(probe) == 4 * sizeof(long));
    array_destroy(ar);
    return 0;
}
