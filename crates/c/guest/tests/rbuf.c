// Symbolic tests for the ring buffer (Table 2 row `rbuf`, #T = 3).

long test_rbuf_1(void) {
    long x = symb_long();
    struct RBuf *rb = rbuf_new(4);
    rbuf_enqueue(rb, x);
    rbuf_enqueue(rb, x + 1);
    assert(rbuf_size(rb) == 2);
    long *out = malloc(sizeof(long));
    assert(rbuf_dequeue(rb, out) == 0);
    assert(*out == x);
    assert(rbuf_peek(rb, out) == 0);
    assert(*out == x + 1);
    free(out);
    rbuf_destroy(rb);
    return 0;
}

long test_rbuf_2(void) {
    // When full, the oldest element is overwritten.
    long x = symb_long();
    struct RBuf *rb = rbuf_new(2);
    rbuf_enqueue(rb, x);
    rbuf_enqueue(rb, x + 1);
    rbuf_enqueue(rb, x + 2);
    assert(rbuf_size(rb) == 2);
    long *out = malloc(sizeof(long));
    rbuf_dequeue(rb, out);
    assert(*out == x + 1);
    rbuf_dequeue(rb, out);
    assert(*out == x + 2);
    assert(rbuf_dequeue(rb, out) == 8);
    free(out);
    rbuf_destroy(rb);
    return 0;
}

long test_rbuf_3(void) {
    // The backing block is exactly capacity * sizeof(long) bytes
    // (the paper's bug 4 was an over-allocation here).
    struct RBuf *rb = rbuf_new(4);
    long *probe = rb->buffer;
    assert(block_size(probe) == 4 * sizeof(long));
    rbuf_destroy(rb);
    return 0;
}
