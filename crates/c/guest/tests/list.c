// Symbolic tests for the doubly linked list (Table 2 row `list`, #T = 37).

long test_list_1(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    long *out = malloc(sizeof(long));
    assert(list_get_first(l, out) == 0);
    assert(*out == x);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_2(void) {
    long x = symb_long();
    long y = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, y);
    long *out = malloc(sizeof(long));
    list_get_first(l, out);
    assert(*out == x);
    list_get_last(l, out);
    assert(*out == y);
    assert(list_size(l) == 2);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_3(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add_first(l, x);
    list_add_first(l, x + 1);
    long *out = malloc(sizeof(long));
    list_get_first(l, out);
    assert(*out == x + 1);
    list_get_last(l, out);
    assert(*out == x);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_4(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, x + 1);
    list_add(l, x + 2);
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 3; i = i + 1) {
        assert(list_get_at(l, i, out) == 0);
        assert(*out == x + i);
    }
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_5(void) {
    struct List *l = list_new();
    long *out = malloc(sizeof(long));
    assert(list_get_first(l, out) == 8);
    assert(list_get_last(l, out) == 8);
    assert(list_get_at(l, 0, out) == 3);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_6(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, 1);
    list_add(l, 3);
    assert(list_add_at(l, x, 1) == 0);
    long *out = malloc(sizeof(long));
    list_get_at(l, 1, out);
    assert(*out == x);
    list_get_at(l, 2, out);
    assert(*out == 3);
    assert(list_size(l) == 3);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_7(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, 1);
    assert(list_add_at(l, x, 0) == 0);
    long *out = malloc(sizeof(long));
    list_get_first(l, out);
    assert(*out == x);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_8(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, 1);
    assert(list_add_at(l, x, 1) == 0);
    long *out = malloc(sizeof(long));
    list_get_last(l, out);
    assert(*out == x);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_9(void) {
    struct List *l = list_new();
    list_add(l, 1);
    assert(list_add_at(l, 9, 2) == 3);
    assert(list_add_at(l, 9, 0 - 1) == 3);
    list_destroy(l);
    return 0;
}

long test_list_10(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, x + 1);
    long *out = malloc(sizeof(long));
    assert(list_remove_first(l, out) == 0);
    assert(*out == x);
    assert(list_size(l) == 1);
    list_get_first(l, out);
    assert(*out == x + 1);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_11(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, x + 1);
    long *out = malloc(sizeof(long));
    assert(list_remove_last(l, out) == 0);
    assert(*out == x + 1);
    list_get_last(l, out);
    assert(*out == x);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_12(void) {
    struct List *l = list_new();
    long *out = malloc(sizeof(long));
    assert(list_remove_first(l, out) == 8);
    assert(list_remove_last(l, out) == 8);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_13(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, x + 1);
    list_add(l, x + 2);
    long *out = malloc(sizeof(long));
    assert(list_remove_at(l, 1, out) == 0);
    assert(*out == x + 1);
    assert(list_size(l) == 2);
    list_get_at(l, 1, out);
    assert(*out == x + 2);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_14(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, y);
    assert(list_index_of(l, x) == 0);
    assert(list_index_of(l, y) == 1);
    list_destroy(l);
    return 0;
}

long test_list_15(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct List *l = list_new();
    list_add(l, x);
    assert(list_index_of(l, y) == 0 - 1);
    assert(list_contains(l, x));
    assert(!list_contains(l, y));
    list_destroy(l);
    return 0;
}

long test_list_16(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, y);
    assert(list_remove(l, x) == 0);
    assert(list_size(l) == 1);
    long *out = malloc(sizeof(long));
    list_get_first(l, out);
    assert(*out == y);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_17(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct List *l = list_new();
    list_add(l, x);
    assert(list_remove(l, y) == 8);
    assert(list_size(l) == 1);
    list_destroy(l);
    return 0;
}

long test_list_18(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, x + 1);
    list_add(l, x + 2);
    list_reverse(l);
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 3; i = i + 1) {
        list_get_at(l, i, out);
        assert(*out == x + 2 - i);
    }
    list_get_first(l, out);
    assert(*out == x + 2);
    list_get_last(l, out);
    assert(*out == x);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_19(void) {
    // Reversing twice is the identity.
    long x = symb_long();
    long y = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, y);
    list_reverse(l);
    list_reverse(l);
    long *out = malloc(sizeof(long));
    list_get_first(l, out);
    assert(*out == x);
    list_get_last(l, out);
    assert(*out == y);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_20(void) {
    // get_at walks from the tail for the upper half.
    long x = symb_long();
    struct List *l = list_new();
    for (long i = 0; i < 5; i = i + 1) {
        list_add(l, x + i);
    }
    long *out = malloc(sizeof(long));
    list_get_at(l, 4, out);
    assert(*out == x + 4);
    list_get_at(l, 3, out);
    assert(*out == x + 3);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_21(void) {
    // Symbolic in-bounds index.
    long i = symb_long();
    assume(i >= 0 && i < 3);
    struct List *l = list_new();
    list_add(l, 20);
    list_add(l, 21);
    list_add(l, 22);
    long *out = malloc(sizeof(long));
    assert(list_get_at(l, i, out) == 0);
    assert(*out == 20 + i);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_22(void) {
    // Removing the only element fixes both ends.
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    long *out = malloc(sizeof(long));
    list_remove_first(l, out);
    assert(list_size(l) == 0);
    assert(list_get_first(l, out) == 8);
    assert(list_get_last(l, out) == 8);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_23(void) {
    // Duplicates: remove drops the first occurrence only.
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, x);
    assert(list_remove(l, x) == 0);
    assert(list_size(l) == 1);
    assert(list_contains(l, x));
    list_destroy(l);
    return 0;
}

long test_list_24(void) {
    // Aliasing question on two symbolic values.
    long x = symb_long();
    long y = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    if (list_contains(l, y)) {
        assert(x == y);
    } else {
        assert(x != y);
    }
    list_destroy(l);
    return 0;
}

long test_list_25(void) {
    long x = symb_long();
    struct List *l = list_new();
    list_add_first(l, x);
    list_add_last(l, x + 1);
    list_add_first(l, x - 1);
    long *out = malloc(sizeof(long));
    list_get_at(l, 0, out);
    assert(*out == x - 1);
    list_get_at(l, 1, out);
    assert(*out == x);
    list_get_at(l, 2, out);
    assert(*out == x + 1);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_26(void) {
    // Index tracking after a middle removal.
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, x + 1);
    list_add(l, x + 2);
    long *out = malloc(sizeof(long));
    list_remove_at(l, 1, out);
    assert(list_index_of(l, x + 2) == 1);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_27(void) {
    // Remove at the ends through remove_at.
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, x + 1);
    list_add(l, x + 2);
    long *out = malloc(sizeof(long));
    assert(list_remove_at(l, 2, out) == 0);
    assert(*out == x + 2);
    assert(list_remove_at(l, 0, out) == 0);
    assert(*out == x);
    assert(list_size(l) == 1);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_28(void) {
    struct List *l = list_new();
    long *out = malloc(sizeof(long));
    assert(list_remove_at(l, 0, out) == 3);
    list_add(l, 1);
    assert(list_remove_at(l, 1, out) == 3);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_29(void) {
    // A longer build-up with interleaved removals.
    long x = symb_long();
    struct List *l = list_new();
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 4; i = i + 1) {
        list_add(l, x + i);
    }
    list_remove_first(l, out);
    list_remove_last(l, out);
    assert(list_size(l) == 2);
    list_get_first(l, out);
    assert(*out == x + 1);
    list_get_last(l, out);
    assert(*out == x + 2);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_30(void) {
    // Rebuild after clearing by removal.
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    long *out = malloc(sizeof(long));
    list_remove_first(l, out);
    list_add(l, x + 5);
    list_get_first(l, out);
    assert(*out == x + 5);
    assert(list_size(l) == 1);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_31(void) {
    // Contains on an empty list after destroy-like drain.
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    long *out = malloc(sizeof(long));
    list_remove_first(l, out);
    assert(!list_contains(l, x));
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_32(void) {
    // Reverse of a single element and of an empty list.
    long x = symb_long();
    struct List *l = list_new();
    list_reverse(l);
    assert(list_size(l) == 0);
    list_add(l, x);
    list_reverse(l);
    long *out = malloc(sizeof(long));
    list_get_first(l, out);
    assert(*out == x);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_33(void) {
    // Symbolic comparison drives a sorted insertion.
    long x = symb_long();
    long y = symb_long();
    struct List *l = list_new();
    if (x <= y) {
        list_add(l, x);
        list_add(l, y);
    } else {
        list_add(l, y);
        list_add(l, x);
    }
    long *first = malloc(sizeof(long));
    long *second = malloc(sizeof(long));
    list_get_at(l, 0, first);
    list_get_at(l, 1, second);
    assert(*first <= *second);
    free(first);
    free(second);
    list_destroy(l);
    return 0;
}

long test_list_34(void) {
    // add_at into every position of a two-element list.
    long p = symb_long();
    assume(p >= 0 && p <= 2);
    struct List *l = list_new();
    list_add(l, 100);
    list_add(l, 200);
    assert(list_add_at(l, 150, p) == 0);
    assert(list_size(l) == 3);
    long *out = malloc(sizeof(long));
    list_get_at(l, p, out);
    assert(*out == 150);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_35(void) {
    // remove_at with a symbolic position keeps the other element.
    long p = symb_long();
    assume(p == 0 || p == 1);
    long x = symb_long();
    struct List *l = list_new();
    list_add(l, x);
    list_add(l, x + 1);
    long *out = malloc(sizeof(long));
    assert(list_remove_at(l, p, out) == 0);
    assert(*out == x + p);
    assert(list_size(l) == 1);
    list_get_first(l, out);
    assert(*out == x + 1 - p);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_36(void) {
    // prev pointers stay consistent after reversal (walk via get_at from
    // the tail half).
    long x = symb_long();
    struct List *l = list_new();
    for (long i = 0; i < 4; i = i + 1) {
        list_add(l, x + i);
    }
    list_reverse(l);
    long *out = malloc(sizeof(long));
    list_get_at(l, 3, out);
    assert(*out == x);
    list_get_at(l, 2, out);
    assert(*out == x + 1);
    free(out);
    list_destroy(l);
    return 0;
}

long test_list_37(void) {
    // Size counts every successful mutation.
    long x = symb_long();
    struct List *l = list_new();
    assert(list_size(l) == 0);
    list_add(l, x);
    list_add_first(l, x);
    list_add_at(l, x, 1);
    assert(list_size(l) == 3);
    long *out = malloc(sizeof(long));
    list_remove_at(l, 1, out);
    assert(list_size(l) == 2);
    free(out);
    list_destroy(l);
    return 0;
}
