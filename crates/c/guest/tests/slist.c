// Symbolic tests for the singly linked list (Table 2 row `slist`,
// #T = 38).

long test_slist_1(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    long *out = malloc(sizeof(long));
    assert(slist_get_first(sl, out) == 0);
    assert(*out == x);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_2(void) {
    long x = symb_long();
    long y = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, y);
    long *out = malloc(sizeof(long));
    slist_get_first(sl, out);
    assert(*out == x);
    slist_get_last(sl, out);
    assert(*out == y);
    assert(slist_size(sl) == 2);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_3(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add_first(sl, x);
    slist_add_first(sl, x + 1);
    long *out = malloc(sizeof(long));
    slist_get_first(sl, out);
    assert(*out == x + 1);
    slist_get_last(sl, out);
    assert(*out == x);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_4(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    for (long i = 0; i < 3; i = i + 1) {
        slist_add(sl, x + i);
    }
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 3; i = i + 1) {
        assert(slist_get_at(sl, i, out) == 0);
        assert(*out == x + i);
    }
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_5(void) {
    struct SList *sl = slist_new();
    long *out = malloc(sizeof(long));
    assert(slist_get_first(sl, out) == 8);
    assert(slist_get_last(sl, out) == 8);
    assert(slist_get_at(sl, 0, out) == 3);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_6(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, 1);
    slist_add(sl, 3);
    assert(slist_add_at(sl, x, 1) == 0);
    long *out = malloc(sizeof(long));
    slist_get_at(sl, 1, out);
    assert(*out == x);
    slist_get_at(sl, 2, out);
    assert(*out == 3);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_7(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, 1);
    assert(slist_add_at(sl, x, 0) == 0);
    long *out = malloc(sizeof(long));
    slist_get_first(sl, out);
    assert(*out == x);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_8(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, 1);
    assert(slist_add_at(sl, x, 1) == 0);
    long *out = malloc(sizeof(long));
    slist_get_last(sl, out);
    assert(*out == x);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_9(void) {
    struct SList *sl = slist_new();
    slist_add(sl, 1);
    assert(slist_add_at(sl, 9, 2) == 3);
    assert(slist_add_at(sl, 9, 0 - 1) == 3);
    slist_destroy(sl);
    return 0;
}

long test_slist_10(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x + 1);
    long *out = malloc(sizeof(long));
    assert(slist_remove_first(sl, out) == 0);
    assert(*out == x);
    assert(slist_size(sl) == 1);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_11(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x + 1);
    long *out = malloc(sizeof(long));
    assert(slist_remove_last(sl, out) == 0);
    assert(*out == x + 1);
    slist_get_last(sl, out);
    assert(*out == x);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_12(void) {
    struct SList *sl = slist_new();
    long *out = malloc(sizeof(long));
    assert(slist_remove_first(sl, out) == 8);
    assert(slist_remove_last(sl, out) == 8);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_13(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x + 1);
    slist_add(sl, x + 2);
    long *out = malloc(sizeof(long));
    assert(slist_remove_at(sl, 1, out) == 0);
    assert(*out == x + 1);
    assert(slist_size(sl) == 2);
    slist_get_at(sl, 1, out);
    assert(*out == x + 2);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_14(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, y);
    assert(slist_index_of(sl, x) == 0);
    assert(slist_index_of(sl, y) == 1);
    slist_destroy(sl);
    return 0;
}

long test_slist_15(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct SList *sl = slist_new();
    slist_add(sl, x);
    assert(slist_index_of(sl, y) == 0 - 1);
    assert(slist_contains(sl, x));
    assert(!slist_contains(sl, y));
    slist_destroy(sl);
    return 0;
}

long test_slist_16(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, y);
    assert(slist_remove(sl, x) == 0);
    assert(slist_size(sl) == 1);
    long *out = malloc(sizeof(long));
    slist_get_first(sl, out);
    assert(*out == y);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_17(void) {
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct SList *sl = slist_new();
    slist_add(sl, x);
    assert(slist_remove(sl, y) == 8);
    assert(slist_size(sl) == 1);
    slist_destroy(sl);
    return 0;
}

long test_slist_18(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x + 1);
    slist_add(sl, x + 2);
    slist_reverse(sl);
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 3; i = i + 1) {
        slist_get_at(sl, i, out);
        assert(*out == x + 2 - i);
    }
    slist_get_last(sl, out);
    assert(*out == x);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_19(void) {
    long x = symb_long();
    long y = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, y);
    slist_reverse(sl);
    slist_reverse(sl);
    long *out = malloc(sizeof(long));
    slist_get_first(sl, out);
    assert(*out == x);
    slist_get_last(sl, out);
    assert(*out == y);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_20(void) {
    // Removing the tail updates the tail pointer.
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x + 1);
    long *out = malloc(sizeof(long));
    slist_remove_last(sl, out);
    slist_add(sl, x + 9);
    slist_get_last(sl, out);
    assert(*out == x + 9);
    assert(slist_size(sl) == 2);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_21(void) {
    long i = symb_long();
    assume(i >= 0 && i < 3);
    struct SList *sl = slist_new();
    slist_add(sl, 30);
    slist_add(sl, 31);
    slist_add(sl, 32);
    long *out = malloc(sizeof(long));
    assert(slist_get_at(sl, i, out) == 0);
    assert(*out == 30 + i);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_22(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    long *out = malloc(sizeof(long));
    slist_remove_first(sl, out);
    assert(slist_size(sl) == 0);
    assert(slist_get_first(sl, out) == 8);
    assert(slist_get_last(sl, out) == 8);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_23(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x);
    assert(slist_remove(sl, x) == 0);
    assert(slist_size(sl) == 1);
    assert(slist_contains(sl, x));
    slist_destroy(sl);
    return 0;
}

long test_slist_24(void) {
    long x = symb_long();
    long y = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    if (slist_contains(sl, y)) {
        assert(x == y);
    } else {
        assert(x != y);
    }
    slist_destroy(sl);
    return 0;
}

long test_slist_25(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add_first(sl, x);
    slist_add_last(sl, x + 1);
    slist_add_first(sl, x - 1);
    long *out = malloc(sizeof(long));
    slist_get_at(sl, 0, out);
    assert(*out == x - 1);
    slist_get_at(sl, 1, out);
    assert(*out == x);
    slist_get_at(sl, 2, out);
    assert(*out == x + 1);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_26(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x + 1);
    slist_add(sl, x + 2);
    long *out = malloc(sizeof(long));
    slist_remove_at(sl, 1, out);
    assert(slist_index_of(sl, x + 2) == 1);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_27(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x + 1);
    slist_add(sl, x + 2);
    long *out = malloc(sizeof(long));
    assert(slist_remove_at(sl, 2, out) == 0);
    assert(*out == x + 2);
    assert(slist_remove_at(sl, 0, out) == 0);
    assert(*out == x);
    assert(slist_size(sl) == 1);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_28(void) {
    struct SList *sl = slist_new();
    long *out = malloc(sizeof(long));
    assert(slist_remove_at(sl, 0, out) == 3);
    slist_add(sl, 1);
    assert(slist_remove_at(sl, 1, out) == 3);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_29(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    long *out = malloc(sizeof(long));
    for (long i = 0; i < 4; i = i + 1) {
        slist_add(sl, x + i);
    }
    slist_remove_first(sl, out);
    slist_remove_last(sl, out);
    assert(slist_size(sl) == 2);
    slist_get_first(sl, out);
    assert(*out == x + 1);
    slist_get_last(sl, out);
    assert(*out == x + 2);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_30(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    long *out = malloc(sizeof(long));
    slist_remove_first(sl, out);
    slist_add(sl, x + 5);
    slist_get_first(sl, out);
    assert(*out == x + 5);
    assert(slist_size(sl) == 1);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_31(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    long *out = malloc(sizeof(long));
    slist_remove_first(sl, out);
    assert(!slist_contains(sl, x));
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_32(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_reverse(sl);
    assert(slist_size(sl) == 0);
    slist_add(sl, x);
    slist_reverse(sl);
    long *out = malloc(sizeof(long));
    slist_get_first(sl, out);
    assert(*out == x);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_33(void) {
    long x = symb_long();
    long y = symb_long();
    struct SList *sl = slist_new();
    if (x <= y) {
        slist_add(sl, x);
        slist_add(sl, y);
    } else {
        slist_add(sl, y);
        slist_add(sl, x);
    }
    long *first = malloc(sizeof(long));
    long *second = malloc(sizeof(long));
    slist_get_at(sl, 0, first);
    slist_get_at(sl, 1, second);
    assert(*first <= *second);
    free(first);
    free(second);
    slist_destroy(sl);
    return 0;
}

long test_slist_34(void) {
    long p = symb_long();
    assume(p >= 0 && p <= 2);
    struct SList *sl = slist_new();
    slist_add(sl, 100);
    slist_add(sl, 200);
    assert(slist_add_at(sl, 150, p) == 0);
    assert(slist_size(sl) == 3);
    long *out = malloc(sizeof(long));
    slist_get_at(sl, p, out);
    assert(*out == 150);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_35(void) {
    long p = symb_long();
    assume(p == 0 || p == 1);
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x + 1);
    long *out = malloc(sizeof(long));
    assert(slist_remove_at(sl, p, out) == 0);
    assert(*out == x + p);
    assert(slist_size(sl) == 1);
    slist_get_first(sl, out);
    assert(*out == x + 1 - p);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_36(void) {
    // Reversal keeps the tail pointer usable for appends.
    long x = symb_long();
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, x + 1);
    slist_reverse(sl);
    slist_add(sl, x + 9);
    long *out = malloc(sizeof(long));
    slist_get_last(sl, out);
    assert(*out == x + 9);
    assert(slist_size(sl) == 3);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_37(void) {
    long x = symb_long();
    struct SList *sl = slist_new();
    assert(slist_size(sl) == 0);
    slist_add(sl, x);
    slist_add_first(sl, x);
    slist_add_at(sl, x, 1);
    assert(slist_size(sl) == 3);
    long *out = malloc(sizeof(long));
    slist_remove_at(sl, 1, out);
    assert(slist_size(sl) == 2);
    free(out);
    slist_destroy(sl);
    return 0;
}

long test_slist_38(void) {
    // Removing the last element by value fixes the tail.
    long x = symb_long();
    long y = symb_long();
    assume(x != y);
    struct SList *sl = slist_new();
    slist_add(sl, x);
    slist_add(sl, y);
    assert(slist_remove(sl, y) == 0);
    long *out = malloc(sizeof(long));
    slist_get_last(sl, out);
    assert(*out == x);
    slist_add(sl, y + 1);
    slist_get_last(sl, out);
    assert(*out == y + 1);
    free(out);
    slist_destroy(sl);
    return 0;
}
