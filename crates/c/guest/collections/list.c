// Doubly linked list of longs (the `cc_list` of Collections-C).

struct DNode {
    long value;
    struct DNode *next;
    struct DNode *prev;
};

struct List {
    long size;
    struct DNode *head;
    struct DNode *tail;
};

struct List *list_new(void) {
    struct List *l = malloc(sizeof(struct List));
    l->size = 0;
    l->head = NULL;
    l->tail = NULL;
    return l;
}

long list_add_last(struct List *l, long value) {
    struct DNode *node = malloc(sizeof(struct DNode));
    node->value = value;
    node->next = NULL;
    node->prev = l->tail;
    if (l->tail == NULL) {
        l->head = node;
    } else {
        l->tail->next = node;
    }
    l->tail = node;
    l->size = l->size + 1;
    return 0;
}

long list_add(struct List *l, long value) {
    return list_add_last(l, value);
}

long list_add_first(struct List *l, long value) {
    struct DNode *node = malloc(sizeof(struct DNode));
    node->value = value;
    node->prev = NULL;
    node->next = l->head;
    if (l->head == NULL) {
        l->tail = node;
    } else {
        l->head->prev = node;
    }
    l->head = node;
    l->size = l->size + 1;
    return 0;
}

// Internal: the node at `index` (walking from the closer end).
struct DNode *list_node_at(struct List *l, long index) {
    struct DNode *node;
    if (index < l->size / 2) {
        node = l->head;
        for (long i = 0; i < index; i = i + 1) {
            node = node->next;
        }
    } else {
        node = l->tail;
        for (long i = l->size - 1; i > index; i = i - 1) {
            node = node->prev;
        }
    }
    return node;
}

long list_get_at(struct List *l, long index, long *out) {
    if (index < 0 || index >= l->size) {
        return 3;
    }
    struct DNode *node = list_node_at(l, index);
    *out = node->value;
    return 0;
}

long list_get_first(struct List *l, long *out) {
    if (l->size == 0) {
        return 8;
    }
    *out = l->head->value;
    return 0;
}

long list_get_last(struct List *l, long *out) {
    if (l->size == 0) {
        return 8;
    }
    *out = l->tail->value;
    return 0;
}

long list_add_at(struct List *l, long value, long index) {
    if (index < 0 || index > l->size) {
        return 3;
    }
    if (index == 0) {
        return list_add_first(l, value);
    }
    if (index == l->size) {
        return list_add_last(l, value);
    }
    struct DNode *at = list_node_at(l, index);
    struct DNode *node = malloc(sizeof(struct DNode));
    node->value = value;
    node->prev = at->prev;
    node->next = at;
    at->prev->next = node;
    at->prev = node;
    l->size = l->size + 1;
    return 0;
}

// Internal: unlink and free a node.
void list_unlink(struct List *l, struct DNode *node) {
    if (node->prev == NULL) {
        l->head = node->next;
    } else {
        node->prev->next = node->next;
    }
    if (node->next == NULL) {
        l->tail = node->prev;
    } else {
        node->next->prev = node->prev;
    }
    free(node);
    l->size = l->size - 1;
    return;
}

long list_remove_at(struct List *l, long index, long *out) {
    if (index < 0 || index >= l->size) {
        return 3;
    }
    struct DNode *node = list_node_at(l, index);
    *out = node->value;
    list_unlink(l, node);
    return 0;
}

long list_remove_first(struct List *l, long *out) {
    if (l->size == 0) {
        return 8;
    }
    return list_remove_at(l, 0, out);
}

long list_remove_last(struct List *l, long *out) {
    if (l->size == 0) {
        return 8;
    }
    return list_remove_at(l, l->size - 1, out);
}

long list_index_of(struct List *l, long value) {
    struct DNode *node = l->head;
    long index = 0;
    while (node != NULL) {
        if (node->value == value) {
            return index;
        }
        index = index + 1;
        node = node->next;
    }
    return 0 - 1;
}

long list_contains(struct List *l, long value) {
    return list_index_of(l, value) >= 0;
}

long list_remove(struct List *l, long value) {
    struct DNode *node = l->head;
    while (node != NULL) {
        if (node->value == value) {
            list_unlink(l, node);
            return 0;
        }
        node = node->next;
    }
    return 8;
}

void list_reverse(struct List *l) {
    struct DNode *node = l->head;
    l->tail = l->head;
    struct DNode *prev = NULL;
    while (node != NULL) {
        struct DNode *next = node->next;
        node->next = prev;
        node->prev = next;
        prev = node;
        node = next;
    }
    l->head = prev;
    return;
}

long list_size(struct List *l) {
    return l->size;
}

void list_destroy(struct List *l) {
    struct DNode *node = l->head;
    while (node != NULL) {
        struct DNode *next = node->next;
        free(node);
        node = next;
    }
    free(l);
    return;
}
