// LIFO stack over the dynamic array (the `cc_stack` of Collections-C,
// which is likewise an array adapter).

struct Stack {
    struct Array *a;
};

struct Stack *stack_new(void) {
    struct Stack *s = malloc(sizeof(struct Stack));
    s->a = array_new(8);
    return s;
}

long stack_push(struct Stack *s, long value) {
    return array_add(s->a, value);
}

long stack_pop(struct Stack *s, long *out) {
    if (array_size(s->a) == 0) {
        return 8;
    }
    return array_remove_at(s->a, array_size(s->a) - 1, out);
}

long stack_peek(struct Stack *s, long *out) {
    if (array_size(s->a) == 0) {
        return 8;
    }
    return array_get_at(s->a, array_size(s->a) - 1, out);
}

long stack_size(struct Stack *s) {
    return array_size(s->a);
}

void stack_destroy(struct Stack *s) {
    array_destroy(s->a);
    free(s);
    return;
}
