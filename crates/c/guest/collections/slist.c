// Singly linked list of longs (the `cc_slist` of Collections-C).

struct SNode {
    long value;
    struct SNode *next;
};

struct SList {
    long size;
    struct SNode *head;
    struct SNode *tail;
};

struct SList *slist_new(void) {
    struct SList *sl = malloc(sizeof(struct SList));
    sl->size = 0;
    sl->head = NULL;
    sl->tail = NULL;
    return sl;
}

long slist_add_last(struct SList *sl, long value) {
    struct SNode *node = malloc(sizeof(struct SNode));
    node->value = value;
    node->next = NULL;
    if (sl->head == NULL) {
        sl->head = node;
        sl->tail = node;
    } else {
        sl->tail->next = node;
        sl->tail = node;
    }
    sl->size = sl->size + 1;
    return 0;
}

long slist_add(struct SList *sl, long value) {
    return slist_add_last(sl, value);
}

long slist_add_first(struct SList *sl, long value) {
    struct SNode *node = malloc(sizeof(struct SNode));
    node->value = value;
    node->next = sl->head;
    sl->head = node;
    if (sl->tail == NULL) {
        sl->tail = node;
    }
    sl->size = sl->size + 1;
    return 0;
}

long slist_add_at(struct SList *sl, long value, long index) {
    if (index < 0 || index > sl->size) {
        return 3;
    }
    if (index == 0) {
        return slist_add_first(sl, value);
    }
    if (index == sl->size) {
        return slist_add_last(sl, value);
    }
    struct SNode *prev = sl->head;
    for (long i = 1; i < index; i = i + 1) {
        prev = prev->next;
    }
    struct SNode *node = malloc(sizeof(struct SNode));
    node->value = value;
    node->next = prev->next;
    prev->next = node;
    sl->size = sl->size + 1;
    return 0;
}

long slist_get_at(struct SList *sl, long index, long *out) {
    if (index < 0 || index >= sl->size) {
        return 3;
    }
    struct SNode *node = sl->head;
    for (long i = 0; i < index; i = i + 1) {
        node = node->next;
    }
    *out = node->value;
    return 0;
}

long slist_get_first(struct SList *sl, long *out) {
    if (sl->size == 0) {
        return 8;
    }
    *out = sl->head->value;
    return 0;
}

long slist_get_last(struct SList *sl, long *out) {
    if (sl->size == 0) {
        return 8;
    }
    *out = sl->tail->value;
    return 0;
}

long slist_index_of(struct SList *sl, long value) {
    struct SNode *node = sl->head;
    long index = 0;
    while (node != NULL) {
        if (node->value == value) {
            return index;
        }
        index = index + 1;
        node = node->next;
    }
    return 0 - 1;
}

long slist_contains(struct SList *sl, long value) {
    return slist_index_of(sl, value) >= 0;
}

long slist_remove_first(struct SList *sl, long *out) {
    if (sl->size == 0) {
        return 8;
    }
    struct SNode *node = sl->head;
    *out = node->value;
    sl->head = node->next;
    if (sl->head == NULL) {
        sl->tail = NULL;
    }
    free(node);
    sl->size = sl->size - 1;
    return 0;
}

long slist_remove_at(struct SList *sl, long index, long *out) {
    if (index < 0 || index >= sl->size) {
        return 3;
    }
    if (index == 0) {
        return slist_remove_first(sl, out);
    }
    struct SNode *prev = sl->head;
    for (long i = 1; i < index; i = i + 1) {
        prev = prev->next;
    }
    struct SNode *node = prev->next;
    *out = node->value;
    prev->next = node->next;
    if (node == sl->tail) {
        sl->tail = prev;
    }
    free(node);
    sl->size = sl->size - 1;
    return 0;
}

long slist_remove_last(struct SList *sl, long *out) {
    if (sl->size == 0) {
        return 8;
    }
    return slist_remove_at(sl, sl->size - 1, out);
}

long slist_remove(struct SList *sl, long value) {
    long index = slist_index_of(sl, value);
    if (index < 0) {
        return 8;
    }
    long *scratch = malloc(sizeof(long));
    slist_remove_at(sl, index, scratch);
    free(scratch);
    return 0;
}

void slist_reverse(struct SList *sl) {
    struct SNode *prev = NULL;
    struct SNode *node = sl->head;
    sl->tail = sl->head;
    while (node != NULL) {
        struct SNode *next = node->next;
        node->next = prev;
        prev = node;
        node = next;
    }
    sl->head = prev;
    return;
}

long slist_size(struct SList *sl) {
    return sl->size;
}

void slist_destroy(struct SList *sl) {
    struct SNode *node = sl->head;
    while (node != NULL) {
        struct SNode *next = node->next;
        free(node);
        node = next;
    }
    free(sl);
    return;
}
