// Dynamic array of longs (the `cc_array` of Collections-C).
// Status codes mirror Collections-C: 0 = OK, 3 = ERR_OUT_OF_RANGE,
// 8 = ERR_VALUE_NOT_FOUND.

struct Array {
    long size;
    long capacity;
    long *buffer;
};

struct Array *array_new(long capacity) {
    struct Array *ar = malloc(sizeof(struct Array));
    ar->size = 0;
    ar->capacity = capacity;
    ar->buffer = malloc(capacity * sizeof(long));
    return ar;
}

void array_expand(struct Array *ar) {
    long newcap = ar->capacity * 2;
    long *nb = malloc(newcap * sizeof(long));
    memcpy(nb, ar->buffer, ar->size * sizeof(long));
    free(ar->buffer);
    ar->buffer = nb;
    ar->capacity = newcap;
    return;
}

long array_add(struct Array *ar, long value) {
    if (ar->size >= ar->capacity) {
        array_expand(ar);
    }
    ar->buffer[ar->size] = value;
    ar->size = ar->size + 1;
    return 0;
}

long array_add_at(struct Array *ar, long value, long index) {
    if (index < 0 || index > ar->size) {
        return 3;
    }
    if (ar->size >= ar->capacity) {
        array_expand(ar);
    }
    for (long i = ar->size; i > index; i = i - 1) {
        ar->buffer[i] = ar->buffer[i - 1];
    }
    ar->buffer[index] = value;
    ar->size = ar->size + 1;
    return 0;
}

long array_get_at(struct Array *ar, long index, long *out) {
    if (index < 0 || index >= ar->size) {
        return 3;
    }
    *out = ar->buffer[index];
    return 0;
}

long array_replace_at(struct Array *ar, long value, long index, long *out) {
    if (index < 0 || index >= ar->size) {
        return 3;
    }
    *out = ar->buffer[index];
    ar->buffer[index] = value;
    return 0;
}

long array_remove_at(struct Array *ar, long index, long *out) {
    if (index < 0 || index >= ar->size) {
        return 3;
    }
    *out = ar->buffer[index];
    for (long i = index; i < ar->size - 1; i = i + 1) {
        ar->buffer[i] = ar->buffer[i + 1];
    }
    ar->size = ar->size - 1;
    return 0;
}

long array_index_of(struct Array *ar, long value) {
    for (long i = 0; i < ar->size; i = i + 1) {
        if (ar->buffer[i] == value) {
            return i;
        }
    }
    return 0 - 1;
}

long array_contains(struct Array *ar, long value) {
    long count = 0;
    for (long i = 0; i < ar->size; i = i + 1) {
        if (ar->buffer[i] == value) {
            count = count + 1;
        }
    }
    return count;
}

long array_remove(struct Array *ar, long value) {
    long index = array_index_of(ar, value);
    if (index < 0) {
        return 8;
    }
    long *scratch = malloc(sizeof(long));
    array_remove_at(ar, index, scratch);
    free(scratch);
    return 0;
}

void array_reverse(struct Array *ar) {
    long i = 0;
    long j = ar->size - 1;
    while (i < j) {
        long tmp = ar->buffer[i];
        ar->buffer[i] = ar->buffer[j];
        ar->buffer[j] = tmp;
        i = i + 1;
        j = j - 1;
    }
    return;
}

long array_size(struct Array *ar) {
    return ar->size;
}

void array_destroy(struct Array *ar) {
    free(ar->buffer);
    free(ar);
    return;
}
