// FIFO queue over the deque (the `cc_queue` of Collections-C, which is
// likewise a deque adapter: enqueue at the front, poll from the back).

struct Queue {
    struct Deque *d;
};

struct Queue *queue_new(void) {
    struct Queue *q = malloc(sizeof(struct Queue));
    q->d = deque_new();
    return q;
}

long queue_enqueue(struct Queue *q, long value) {
    return deque_add_first(q->d, value);
}

long queue_poll(struct Queue *q, long *out) {
    return deque_remove_last(q->d, out);
}

long queue_peek(struct Queue *q, long *out) {
    return deque_get_last(q->d, out);
}

long queue_size(struct Queue *q) {
    return deque_size(q->d);
}

void queue_destroy(struct Queue *q) {
    deque_destroy(q->d);
    free(q);
    return;
}
