// Binary min-heap priority queue of longs (the `cc_pqueue` of
// Collections-C, with the default numeric comparison; the minimum is on
// top).

struct PQueue {
    long size;
    long capacity;
    long *buffer;
};

struct PQueue *pqueue_new(void) {
    struct PQueue *pq = malloc(sizeof(struct PQueue));
    pq->size = 0;
    pq->capacity = 8;
    pq->buffer = malloc(8 * sizeof(long));
    return pq;
}

void pqueue_expand(struct PQueue *pq) {
    long newcap = pq->capacity * 2;
    long *nb = malloc(newcap * sizeof(long));
    memcpy(nb, pq->buffer, pq->size * sizeof(long));
    free(pq->buffer);
    pq->buffer = nb;
    pq->capacity = newcap;
    return;
}

long pqueue_push(struct PQueue *pq, long value) {
    if (pq->size >= pq->capacity) {
        pqueue_expand(pq);
    }
    long i = pq->size;
    pq->buffer[i] = value;
    pq->size = pq->size + 1;
    while (i > 0) {
        long parent = (i - 1) / 2;
        if (pq->buffer[parent] <= pq->buffer[i]) {
            break;
        }
        long tmp = pq->buffer[parent];
        pq->buffer[parent] = pq->buffer[i];
        pq->buffer[i] = tmp;
        i = parent;
    }
    return 0;
}

long pqueue_top(struct PQueue *pq, long *out) {
    if (pq->size == 0) {
        return 8;
    }
    *out = pq->buffer[0];
    return 0;
}

long pqueue_pop(struct PQueue *pq, long *out) {
    if (pq->size == 0) {
        return 8;
    }
    *out = pq->buffer[0];
    pq->size = pq->size - 1;
    pq->buffer[0] = pq->buffer[pq->size];
    long i = 0;
    while (1) {
        long left = 2 * i + 1;
        long right = 2 * i + 2;
        long smallest = i;
        if (left < pq->size && pq->buffer[left] < pq->buffer[smallest]) {
            smallest = left;
        }
        if (right < pq->size && pq->buffer[right] < pq->buffer[smallest]) {
            smallest = right;
        }
        if (smallest == i) {
            break;
        }
        long tmp = pq->buffer[smallest];
        pq->buffer[smallest] = pq->buffer[i];
        pq->buffer[i] = tmp;
        i = smallest;
    }
    return 0;
}

long pqueue_size(struct PQueue *pq) {
    return pq->size;
}

void pqueue_destroy(struct PQueue *pq) {
    free(pq->buffer);
    free(pq);
    return;
}
