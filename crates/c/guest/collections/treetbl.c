// Ordered key→value table over a binary search tree (the `cc_treetable`
// of Collections-C; the original balances with red-black rotations — the
// plain BST preserves the API and the memory-shape of the workload).

struct TNode {
    long key;
    long value;
    struct TNode *left;
    struct TNode *right;
};

struct TreeTbl {
    long size;
    struct TNode *root;
};

struct TreeTbl *treetbl_new(void) {
    struct TreeTbl *t = malloc(sizeof(struct TreeTbl));
    t->size = 0;
    t->root = NULL;
    return t;
}

long treetbl_add(struct TreeTbl *t, long key, long value) {
    struct TNode *node = malloc(sizeof(struct TNode));
    node->key = key;
    node->value = value;
    node->left = NULL;
    node->right = NULL;
    if (t->root == NULL) {
        t->root = node;
        t->size = t->size + 1;
        return 0;
    }
    struct TNode *cur = t->root;
    while (1) {
        if (key == cur->key) {
            cur->value = value;
            free(node);
            return 0;
        }
        if (key < cur->key) {
            if (cur->left == NULL) {
                cur->left = node;
                t->size = t->size + 1;
                return 0;
            }
            cur = cur->left;
        } else {
            if (cur->right == NULL) {
                cur->right = node;
                t->size = t->size + 1;
                return 0;
            }
            cur = cur->right;
        }
    }
    return 0;
}

long treetbl_get(struct TreeTbl *t, long key, long *out) {
    struct TNode *cur = t->root;
    while (cur != NULL) {
        if (key == cur->key) {
            *out = cur->value;
            return 0;
        }
        if (key < cur->key) {
            cur = cur->left;
        } else {
            cur = cur->right;
        }
    }
    return 6;
}

long treetbl_contains_key(struct TreeTbl *t, long key) {
    long *scratch = malloc(sizeof(long));
    long status = treetbl_get(t, key, scratch);
    free(scratch);
    return status == 0;
}

long treetbl_first_key(struct TreeTbl *t, long *out) {
    if (t->root == NULL) {
        return 6;
    }
    struct TNode *cur = t->root;
    while (cur->left != NULL) {
        cur = cur->left;
    }
    *out = cur->key;
    return 0;
}

long treetbl_last_key(struct TreeTbl *t, long *out) {
    if (t->root == NULL) {
        return 6;
    }
    struct TNode *cur = t->root;
    while (cur->right != NULL) {
        cur = cur->right;
    }
    *out = cur->key;
    return 0;
}

// Internal: removes `key` from the subtree rooted at `node`; returns the
// new subtree root. Decrements the size exactly when a node is freed.
struct TNode *treetbl_remove_node(struct TreeTbl *t, struct TNode *node, long key) {
    if (node == NULL) {
        return NULL;
    }
    if (key < node->key) {
        node->left = treetbl_remove_node(t, node->left, key);
        return node;
    }
    if (key > node->key) {
        node->right = treetbl_remove_node(t, node->right, key);
        return node;
    }
    if (node->left == NULL) {
        struct TNode *right = node->right;
        free(node);
        t->size = t->size - 1;
        return right;
    }
    if (node->right == NULL) {
        struct TNode *left = node->left;
        free(node);
        t->size = t->size - 1;
        return left;
    }
    struct TNode *succ = node->right;
    while (succ->left != NULL) {
        succ = succ->left;
    }
    node->key = succ->key;
    node->value = succ->value;
    node->right = treetbl_remove_node(t, node->right, succ->key);
    return node;
}

long treetbl_remove(struct TreeTbl *t, long key, long *out) {
    long status = treetbl_get(t, key, out);
    if (status != 0) {
        return 6;
    }
    t->root = treetbl_remove_node(t, t->root, key);
    return 0;
}

long treetbl_size(struct TreeTbl *t) {
    return t->size;
}

void treetbl_destroy_node(struct TNode *node) {
    if (node == NULL) {
        return;
    }
    treetbl_destroy_node(node->left);
    treetbl_destroy_node(node->right);
    free(node);
    return;
}

void treetbl_destroy(struct TreeTbl *t) {
    treetbl_destroy_node(t->root);
    free(t);
    return;
}
