// Ordered set over the tree table (the `cc_treeset` of Collections-C,
// which is likewise a treetable adapter).

struct TreeSet {
    struct TreeTbl *t;
};

struct TreeSet *treeset_new(void) {
    struct TreeSet *s = malloc(sizeof(struct TreeSet));
    s->t = treetbl_new();
    return s;
}

long treeset_add(struct TreeSet *s, long value) {
    return treetbl_add(s->t, value, value);
}

long treeset_contains(struct TreeSet *s, long value) {
    return treetbl_contains_key(s->t, value);
}

long treeset_remove(struct TreeSet *s, long value) {
    long *scratch = malloc(sizeof(long));
    long status = treetbl_remove(s->t, value, scratch);
    free(scratch);
    return status;
}

long treeset_first(struct TreeSet *s, long *out) {
    return treetbl_first_key(s->t, out);
}

long treeset_last(struct TreeSet *s, long *out) {
    return treetbl_last_key(s->t, out);
}

long treeset_size(struct TreeSet *s) {
    return treetbl_size(s->t);
}

void treeset_destroy(struct TreeSet *s) {
    treetbl_destroy(s->t);
    free(s);
    return;
}
