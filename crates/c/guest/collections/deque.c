// Circular-buffer double-ended queue of longs (the `cc_deque` of
// Collections-C). The capacity is a power of two; indices wrap with
// `& (capacity - 1)`, as in the original.

struct Deque {
    long size;
    long capacity;
    long first;
    long last;
    long *buffer;
};

struct Deque *deque_new(void) {
    struct Deque *dq = malloc(sizeof(struct Deque));
    dq->size = 0;
    dq->capacity = 8;
    dq->first = 0;
    dq->last = 0;
    dq->buffer = malloc(8 * sizeof(long));
    return dq;
}

// Internal: doubles the buffer, linearising the contents.
void deque_expand(struct Deque *dq) {
    long newcap = dq->capacity * 2;
    long *nb = malloc(newcap * sizeof(long));
    for (long i = 0; i < dq->size; i = i + 1) {
        nb[i] = dq->buffer[(dq->first + i) & (dq->capacity - 1)];
    }
    free(dq->buffer);
    dq->buffer = nb;
    dq->first = 0;
    dq->last = dq->size;
    dq->capacity = newcap;
    return;
}

long deque_add_last(struct Deque *dq, long value) {
    if (dq->size >= dq->capacity) {
        deque_expand(dq);
    }
    dq->buffer[dq->last] = value;
    dq->last = (dq->last + 1) & (dq->capacity - 1);
    dq->size = dq->size + 1;
    return 0;
}

long deque_add_first(struct Deque *dq, long value) {
    if (dq->size >= dq->capacity) {
        deque_expand(dq);
    }
    dq->first = (dq->first - 1) & (dq->capacity - 1);
    dq->buffer[dq->first] = value;
    dq->size = dq->size + 1;
    return 0;
}

long deque_remove_first(struct Deque *dq, long *out) {
    if (dq->size == 0) {
        return 8;
    }
    *out = dq->buffer[dq->first];
    dq->first = (dq->first + 1) & (dq->capacity - 1);
    dq->size = dq->size - 1;
    return 0;
}

long deque_remove_last(struct Deque *dq, long *out) {
    if (dq->size == 0) {
        return 8;
    }
    dq->last = (dq->last - 1) & (dq->capacity - 1);
    *out = dq->buffer[dq->last];
    dq->size = dq->size - 1;
    return 0;
}

long deque_get_first(struct Deque *dq, long *out) {
    if (dq->size == 0) {
        return 8;
    }
    *out = dq->buffer[dq->first];
    return 0;
}

long deque_get_last(struct Deque *dq, long *out) {
    if (dq->size == 0) {
        return 8;
    }
    *out = dq->buffer[(dq->last - 1) & (dq->capacity - 1)];
    return 0;
}

long deque_get_at(struct Deque *dq, long index, long *out) {
    if (index < 0 || index >= dq->size) {
        return 3;
    }
    *out = dq->buffer[(dq->first + index) & (dq->capacity - 1)];
    return 0;
}

long deque_size(struct Deque *dq) {
    return dq->size;
}

void deque_destroy(struct Deque *dq) {
    free(dq->buffer);
    free(dq);
    return;
}
