//! Randomized end-to-end soundness for the MiniC instantiation: random
//! programs over a heap-allocated array (symbolic values *and* symbolic
//! indices), replayed concretely on every modelled path — Theorem 3.6
//! over the CompCert-style memory, including its out-of-bounds and
//! uninitialized-read error branches.

use gillian_c::ast::{CBinOp, CExpr, CFunc, CModule, CStmt, LValue};
use gillian_c::compile::compile_unit;
use gillian_c::types::CType;
use gillian_c::{CConcMemory, CSymMemory};
use gillian_core::explore::ExploreConfig;
use gillian_core::soundness::check_program;
use gillian_solver::Solver;
use proptest::prelude::*;
use std::sync::Arc;

const NUM_VARS: [&str; 2] = ["a", "b"];

fn var() -> impl Strategy<Value = CExpr> {
    proptest::sample::select(NUM_VARS.to_vec()).prop_map(|v| CExpr::Var(v.to_string()))
}

fn arith() -> impl Strategy<Value = CExpr> {
    let leaf = prop_oneof![(-8i64..8).prop_map(CExpr::Int), var()];
    leaf.prop_recursive(2, 6, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![Just(CBinOp::Add), Just(CBinOp::Sub), Just(CBinOp::Mul)],
        )
            .prop_map(|(x, y, op)| CExpr::Bin(op, Box::new(x), Box::new(y)))
    })
}

/// An index expression: a small literal (possibly out of bounds!) or the
/// bounded symbolic index `i`.
fn index() -> impl Strategy<Value = CExpr> {
    prop_oneof![
        (-1i64..5).prop_map(CExpr::Int),
        Just(CExpr::Var("i".to_string())),
    ]
}

fn cond() -> impl Strategy<Value = CExpr> {
    (arith(), arith(), 0..4u8).prop_map(|(x, y, op)| {
        let op = match op {
            0 => CBinOp::Lt,
            1 => CBinOp::Le,
            2 => CBinOp::Eq,
            _ => CBinOp::Ne,
        };
        CExpr::Bin(op, Box::new(x), Box::new(y))
    })
}

fn xs() -> CExpr {
    CExpr::Var("xs".to_string())
}

fn arb_stmt(depth: u32) -> BoxedStrategy<CStmt> {
    let simple = prop_oneof![
        (proptest::sample::select(NUM_VARS.to_vec()), arith())
            .prop_map(|(x, e)| CStmt::Assign(LValue::Var(x.to_string()), e)),
        // xs[index] = value — the index may be out of bounds, producing an
        // error path the replay must also take.
        (index(), arith()).prop_map(|(i, v)| CStmt::Assign(LValue::Index(xs(), i), v)),
        // value reads, possibly of uninitialized or OOB cells.
        (proptest::sample::select(NUM_VARS.to_vec()), index()).prop_map(|(x, i)| {
            CStmt::Assign(
                LValue::Var(x.to_string()),
                CExpr::Index(Box::new(xs()), Box::new(i)),
            )
        }),
        cond().prop_map(CStmt::Assert),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    let nested = arb_stmt(depth - 1);
    prop_oneof![
        3 => simple,
        1 => (cond(), proptest::collection::vec(nested, 1..3))
            .prop_map(|(c, then)| CStmt::If { cond: c, then, otherwise: vec![] }),
    ]
    .boxed()
}

fn arb_program() -> impl Strategy<Value = CModule> {
    proptest::collection::vec(arb_stmt(1), 1..6).prop_map(|stmts| {
        let mut body = vec![
            CStmt::Decl(
                CType::Long,
                "a".into(),
                Some(CExpr::Call("symb_long".into(), vec![])),
            ),
            CStmt::Decl(
                CType::Long,
                "b".into(),
                Some(CExpr::Call("symb_long".into(), vec![])),
            ),
            CStmt::Decl(
                CType::Long,
                "i".into(),
                Some(CExpr::Call("symb_long".into(), vec![])),
            ),
            // 0 ≤ i ≤ 4: in bounds except for the last slot (size 4).
            CStmt::Assume(CExpr::Bin(
                CBinOp::And,
                Box::new(CExpr::Bin(
                    CBinOp::Le,
                    Box::new(CExpr::Int(0)),
                    Box::new(CExpr::Var("i".into())),
                )),
                Box::new(CExpr::Bin(
                    CBinOp::Le,
                    Box::new(CExpr::Var("i".into())),
                    Box::new(CExpr::Int(4)),
                )),
            )),
            CStmt::Decl(
                CType::Long.ptr_to(),
                "xs".into(),
                Some(CExpr::Call("malloc".into(), vec![CExpr::Int(32)])),
            ),
            // Initialise the first two slots; 2 and 3 stay uninitialized.
            CStmt::Assign(LValue::Index(xs(), CExpr::Int(0)), CExpr::Var("a".into())),
            CStmt::Assign(LValue::Index(xs(), CExpr::Int(1)), CExpr::Var("b".into())),
        ];
        body.extend(stmts);
        body.push(CStmt::Return(Some(CExpr::Bin(
            CBinOp::Add,
            Box::new(CExpr::Var("a".into())),
            Box::new(CExpr::Var("b".into())),
        ))));
        CModule {
            structs: vec![],
            funcs: vec![CFunc {
                ret: CType::Long,
                name: "main".into(),
                params: vec![],
                body,
            }],
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_minic_programs_are_restricted_sound(module in arb_program()) {
        let prog = compile_unit(&module).expect("generated program compiles");
        let cfg = ExploreConfig {
            max_cmds_per_path: 20_000,
            max_total_cmds: 300_000,
            max_paths: 512,
            ..Default::default()
        };
        let result = check_program::<CSymMemory, CConcMemory>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            cfg,
        );
        if let Err(discrepancies) = result {
            prop_assert!(
                false,
                "soundness violated:\n{:#?}\nprogram:\n{:#?}",
                discrepancies,
                module
            );
        }
    }
}
