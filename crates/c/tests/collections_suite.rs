//! Runs the full Collections symbolic suite (the workload of Table 2).
//! The fixed library verifies cleanly on all 161 tests; this is the
//! baseline against which the seeded-bug findings (see `c_bugs.rs`) stand
//! out.

use gillian_c::collections;
use gillian_core::testing::run_test;
use std::sync::Arc;

#[test]
fn all_collections_suites_verify() {
    let mut total_tests = 0;
    let mut total_cmds = 0;
    for suite in collections::suite_names() {
        let row = collections::run_row(
            suite,
            gillian_solver::Solver::optimized,
            collections::table2_config(),
        );
        assert!(
            row.failures.is_empty(),
            "suite {suite} found unexpected bugs: {:?}",
            row.failures
        );
        assert!(
            row.truncated.is_empty(),
            "suite {suite} hit exploration budgets: {:?}",
            row.truncated
        );
        total_tests += row.tests;
        total_cmds += row.gil_cmds;
    }
    assert_eq!(total_tests, 161);
    assert!(total_cmds > 10_000);
}

#[test]
fn every_array_test_is_fully_verified() {
    // Stronger than the suite check: no error path exists at all, and
    // every test has at least one normally-terminating path.
    let (prog, entries) = collections::suite_prog("array").unwrap();
    for entry in &entries {
        let out = run_test::<gillian_c::CSymMemory>(
            &prog,
            entry,
            Arc::new(gillian_solver::Solver::optimized()),
            collections::table2_config(),
        );
        assert!(out.verified(), "{entry}: {:?}", out.bugs);
        assert!(
            out.result.normal().count() > 0,
            "{entry} has no normal path"
        );
    }
}
