//! Reproduces the paper's §4.2 bug findings in Collections-C on the
//! seeded buggy library variants. Every finding must come with a verified
//! counter-model and a confirming concrete replay (no false positives,
//! Theorem 3.6).

use gillian_c::collections::{buggy, buggy_prog};
use gillian_c::{CConcMemory, CSymMemory};
use gillian_core::explore::ExploreConfig;
use gillian_core::testing::{run_test_with_replay, ReplayStatus};
use gillian_solver::Solver;
use std::sync::Arc;

fn find_bugs(buggy_src: &str, harness: &str) -> Vec<gillian_core::BugReport> {
    let prog = buggy_prog(buggy_src, harness).expect("harness compiles");
    let out = run_test_with_replay::<CSymMemory, CConcMemory>(
        &prog,
        "main",
        Arc::new(Solver::optimized()),
        ExploreConfig::default(),
    );
    out.bugs
}

/// Paper bug 1: "a buffer overflow bug in the implementation of dynamic
/// arrays, caused by an off-by-one index".
#[test]
fn bug1_array_off_by_one_buffer_overflow() {
    let bugs = find_bugs(
        buggy::ARRAY,
        r#"
        long main() {
            struct Array *ar = array_new(2);
            array_add(ar, 1);
            array_add(ar, 2);
            array_add(ar, 3);
            return array_size(ar);
        }
    "#,
    );
    assert!(!bugs.is_empty(), "the overflow must be found");
    let bug = &bugs[0];
    assert!(bug.error.contains("out-of-bounds"), "{}", bug.error);
    assert!(bug.confirmed(), "replay: {:?}", bug.replay);
    assert!(matches!(bug.replay, Some(ReplayStatus::ConfirmedError(_))));
}

/// Paper bug 2: "usage of undefined behaviours (pointer comparison, in
/// particular)".
#[test]
fn bug2_ub_pointer_comparison_in_expand() {
    let bugs = find_bugs(
        buggy::ARRAY,
        r#"
        long main() {
            struct Array *ar = array_new(2);
            array_add(ar, 1);
            array_expand(ar);
            return 0;
        }
    "#,
    );
    assert!(!bugs.is_empty());
    assert!(
        bugs[0].error.contains("ub-pointer-comparison"),
        "{}",
        bugs[0].error
    );
    assert!(bugs[0].confirmed());
}

/// Paper bug 3: "several bugs in the concrete test suite: in particular,
/// comparing freed pointers" — the buggy *test* itself is the subject.
#[test]
fn bug3_test_compares_freed_pointers() {
    let bugs = find_bugs(
        buggy::ARRAY,
        r#"
        long main() {
            long *p = malloc(8);
            free(p);
            long *q = malloc(8);
            // The old test-suite idiom: ordering a freed pointer.
            if (p <= q) {
                return 1;
            }
            return 0;
        }
    "#,
    );
    assert!(!bugs.is_empty());
    assert!(
        bugs[0].error.contains("ub-pointer-comparison"),
        "{}",
        bugs[0].error
    );
    assert!(bugs[0].confirmed());
}

/// Paper bug 4: "over-allocation in the ring-buffer data structure, but
/// with correct behaviour of the associated functions".
#[test]
fn bug4_ring_buffer_over_allocation() {
    // Functional behaviour is correct…
    let functional = find_bugs(
        buggy::RBUF,
        r#"
        long main() {
            long x = symb_long();
            struct RBuf *rb = rbuf_new(4);
            rbuf_enqueue(rb, x);
            long *out = malloc(sizeof(long));
            rbuf_dequeue(rb, out);
            assert(*out == x);
            free(out);
            rbuf_destroy(rb);
            return 0;
        }
    "#,
    );
    assert!(functional.is_empty(), "rbuf operations stay correct");
    // …but the allocation-size property fails.
    let bugs = find_bugs(
        buggy::RBUF,
        r#"
        long main() {
            struct RBuf *rb = rbuf_new(4);
            long *probe = rb->buffer;
            assert(block_size(probe) == 4 * sizeof(long));
            rbuf_destroy(rb);
            return 0;
        }
    "#,
    );
    assert!(!bugs.is_empty(), "the over-allocation must be exposed");
    assert!(bugs[0].confirmed());
}

/// Paper bug 5 (analogue): a silently-degrading comparison — duplicates
/// accumulate while lookups keep returning "serendipitously correct"
/// values; the size invariant exposes it.
#[test]
fn bug5_treetbl_duplicate_insertion() {
    // Lookups still pass…
    let lookups = find_bugs(
        buggy::TREETBL,
        r#"
        long main() {
            long k = symb_long();
            struct TreeTbl *t = treetbl_new();
            treetbl_add(t, k, 1);
            long *out = malloc(sizeof(long));
            assert(treetbl_get(t, k, out) == 0);
            free(out);
            treetbl_destroy(t);
            return 0;
        }
    "#,
    );
    assert!(lookups.is_empty(), "single-add lookups still work");
    // …but re-adding a key inflates the size.
    let bugs = find_bugs(
        buggy::TREETBL,
        r#"
        long main() {
            long k = symb_long();
            struct TreeTbl *t = treetbl_new();
            treetbl_add(t, k, 1);
            treetbl_add(t, k, 2);
            assert(treetbl_size(t) == 1);
            treetbl_destroy(t);
            return 0;
        }
    "#,
    );
    assert!(!bugs.is_empty(), "the duplicate insertion must be exposed");
    assert!(bugs[0].error.contains("assertion failure"));
    assert!(bugs[0].confirmed());
}

/// Classic memory-safety findings the engine must also catch: use after
/// free and double free.
#[test]
fn use_after_free_and_double_free_are_found() {
    let uaf = find_bugs(
        buggy::ARRAY,
        r#"
        long main() {
            struct Array *ar = array_new(2);
            long *buf = ar->buffer;
            array_destroy(ar);
            return *buf;
        }
    "#,
    );
    assert!(uaf.iter().any(|b| b.error.contains("use-after-free")));
    assert!(uaf[0].confirmed());

    let df = find_bugs(
        buggy::ARRAY,
        r#"
        long main() {
            long *p = malloc(8);
            free(p);
            free(p);
            return 0;
        }
    "#,
    );
    assert!(df.iter().any(|b| b.error.contains("double-free")));
    assert!(df[0].confirmed());
}

/// Differential soundness, end to end, over real library code: every
/// modelled symbolic path replays concretely to the same outcome
/// (Theorem 3.6 on the Collections workload).
#[test]
fn restricted_soundness_on_collections_workloads() {
    use gillian_core::soundness::check_program;
    let sources = [
        r#"
        long main() {
            long x = symb_long();
            struct Array *ar = array_new(2);
            array_add(ar, x);
            array_add(ar, x + 1);
            array_add(ar, x + 2);
            long *out = malloc(sizeof(long));
            array_get_at(ar, 1, out);
            long v = *out;
            free(out);
            array_destroy(ar);
            return v;
        }
        "#,
        r#"
        long main() {
            long i = symb_long();
            assume(i >= 0 && i < 2);
            struct Array *ar = array_new(2);
            array_add(ar, 10);
            array_add(ar, 20);
            long *out = malloc(sizeof(long));
            array_get_at(ar, i, out);
            long v = *out;
            free(out);
            array_destroy(ar);
            return v;
        }
        "#,
    ];
    let lib: String = gillian_c::collections::LIB_SOURCES
        .iter()
        .map(|(_, s)| *s)
        .collect::<Vec<_>>()
        .join("\n");
    for harness in sources {
        let mut module = gillian_c::parse_unit(&lib).unwrap();
        module.extend(gillian_c::parse_unit(harness).unwrap());
        let prog = gillian_c::compile_unit(&module).unwrap();
        let report = check_program::<CSymMemory, CConcMemory>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        )
        .unwrap_or_else(|d| panic!("soundness violated: {d:#?}"));
        assert!(report.replayed > 0, "no path was replayed");
    }
}
