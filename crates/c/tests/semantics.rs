//! Behavioural tests for MiniC semantics corners: short-circuiting,
//! integer width behaviour, pointer equality vs ordering, struct layout
//! through memory, and memcpy.

use gillian_c::symbolic_test;

#[test]
fn logical_and_short_circuits_past_null() {
    // The classic guard: `p != NULL && *p > 0` must not dereference NULL.
    let out = symbolic_test(
        r#"
        long main() {
            long *p = NULL;
            if (p != NULL && *p > 0) {
                return 1;
            }
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
}

#[test]
fn unguarded_null_dereference_is_ub() {
    let out = symbolic_test(
        r#"
        long main() {
            long *p = NULL;
            return *p;
        }
    "#,
    )
    .unwrap();
    assert_eq!(out.bugs.len(), 1);
    assert!(
        out.bugs[0].error.contains("invalid-block"),
        "{}",
        out.bugs[0].error
    );
    assert!(out.bugs[0].confirmed());
}

#[test]
fn narrow_types_wrap_at_stores_and_casts() {
    let out = symbolic_test(
        r#"
        long main() {
            char *c = malloc(1);
            *c = 200;
            assert(*c == -56);
            long x = (char)300;
            assert(x == 44);
            int *i = malloc(4);
            *i = 2147483647 + 1;        // arithmetic is 64-bit…
            assert(*i == -2147483648);  // …truncation happens at the store
            free(c);
            free(i);
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
}

#[test]
fn pointer_equality_is_defined_ordering_is_not() {
    let out = symbolic_test(
        r#"
        long main() {
            long *p = malloc(8);
            long *q = malloc(8);
            assert(p != q);
            assert(p == p);
            // Ordering within one block is fine.
            long *r = p + 0;
            assert(p <= r);
            free(p);
            free(q);
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);

    let ub = symbolic_test(
        r#"
        long main() {
            long *p = malloc(8);
            long *q = malloc(8);
            if (p < q) { return 1; }
            return 0;
        }
    "#,
    )
    .unwrap();
    assert_eq!(ub.bugs.len(), 1);
    assert!(ub.bugs[0].error.contains("ub-pointer-comparison"));
}

#[test]
fn struct_fields_do_not_alias() {
    let out = symbolic_test(
        r#"
        struct Mixed { char tag; int count; long payload; };
        long main() {
            long x = symb_long();
            struct Mixed *m = malloc(sizeof(struct Mixed));
            m->tag = 7;
            m->count = 42;
            m->payload = x;
            assert(m->tag == 7);
            assert(m->count == 42);
            assert(m->payload == x);
            // Overwriting one field leaves the others intact.
            m->count = 43;
            assert(m->tag == 7);
            assert(m->payload == x);
            free(m);
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
}

#[test]
fn memcpy_copies_bytes_and_preserves_uninitialized_holes() {
    let out = symbolic_test(
        r#"
        long main() {
            long x = symb_long();
            long *src = malloc(24);
            src[0] = x;
            src[2] = x + 2;             // src[1] stays uninitialized
            long *dst = malloc(24);
            memcpy(dst, src, 24);
            assert(dst[0] == x);
            assert(dst[2] == x + 2);
            free(src);
            free(dst);
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);

    // Reading the copied hole is still an uninitialized read.
    let hole = symbolic_test(
        r#"
        long main() {
            long *src = malloc(16);
            src[0] = 1;
            long *dst = malloc(16);
            memcpy(dst, src, 16);
            return dst[1];
        }
    "#,
    )
    .unwrap();
    assert_eq!(hole.bugs.len(), 1);
    assert!(
        hole.bugs[0].error.contains("uninitialized"),
        "{}",
        hole.bugs[0].error
    );
}

#[test]
fn integer_division_by_zero_traps() {
    let out = symbolic_test(
        r#"
        long main() {
            long d = symb_long();
            assume(0 <= d && d <= 1);
            return 10 / d;
        }
    "#,
    )
    .unwrap();
    assert_eq!(out.bugs.len(), 1, "{:?}", out.bugs);
    assert_eq!(out.bugs[0].script, vec![gillian_gil::Value::Int(0)]);
    assert!(out.bugs[0].confirmed());
}

#[test]
fn pointer_difference_counts_elements() {
    let out = symbolic_test(
        r#"
        long main() {
            long *xs = malloc(32);
            long *p = xs + 3;
            assert(p - xs == 3);
            free(xs);
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
}

#[test]
fn uninitialized_local_use_is_an_error() {
    let out = symbolic_test(
        r#"
        long main() {
            long x;
            return x;
        }
    "#,
    )
    .unwrap();
    assert_eq!(out.bugs.len(), 1);
    assert!(out.bugs[0].confirmed());
}
