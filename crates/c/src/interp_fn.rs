//! The MiniC memory interpretation function (paper Def. 3.7 for the C
//! instantiation): interprets blocks and their byte cells pointwise under
//! a logical environment.

use crate::mem::{CConcMemory, CSymMemory};
use gillian_core::soundness::MemoryInterpretation;
use gillian_solver::Model;

/// The interpretation function for MiniC memories.
#[derive(Clone, Copy, Debug, Default)]
pub struct CInterpretation;

impl MemoryInterpretation for CInterpretation {
    type Concrete = CConcMemory;
    type Symbolic = CSymMemory;

    fn interpret(&self, model: &Model, sym: &CSymMemory) -> Result<CConcMemory, String> {
        let mut out = CConcMemory::default();
        for (b, size, perm, freed) in sym.blocks_iter() {
            out.register_block(b, size, perm, freed);
            for (off_e, (v_e, k, n)) in sym.cells_iter(b) {
                let off = model
                    .eval(off_e)
                    .map_err(|e| format!("I_C: offset {off_e} uninterpretable: {e}"))?;
                let Some(off) = off.as_int() else {
                    return Err(format!("I_C: offset {off_e} interprets to non-integer"));
                };
                let v = model
                    .eval(v_e)
                    .map_err(|e| format!("I_C: value {v_e} uninterpretable: {e}"))?;
                if !out.set_cell(b, off, v, *k, *n) {
                    return Err(format!("I_C: cells collapse at {b}+{off}"));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunks::Chunk;
    use gillian_core::soundness::check_action;
    use gillian_gil::{Expr, LVar, Sym, Value};
    use gillian_solver::{PathCondition, Solver};

    fn blk(i: u64) -> Sym {
        Sym(Sym::FIRST_FRESH + i)
    }

    /// MA-RS/MA-RC for the C actions on representative memories — the C
    /// analogue of the paper's Lemma 3.11, checked empirically.
    #[test]
    fn c_actions_satisfy_memory_lemmas() {
        let solver = Solver::optimized();
        let mut m = CSymMemory::default();
        m.register_block(blk(0), 16);
        m.set_run(blk(0), 0, Expr::lvar(LVar(1)), 8);
        m.set_run(blk(0), 8, Expr::int(7), 8);
        let mut pc = PathCondition::new();
        pc.push(
            Expr::lvar(LVar(1))
                .type_of()
                .eq(Expr::type_tag(gillian_gil::TypeTag::Int)),
        );
        let b = Expr::Val(Value::Sym(blk(0)));
        let i8c = Chunk::int(8).to_expr();
        let off = Expr::lvar(LVar(0));
        let cases: Vec<(&str, Expr)> = vec![
            ("load", Expr::list([i8c.clone(), b.clone(), Expr::int(0)])),
            ("load", Expr::list([i8c.clone(), b.clone(), off.clone()])),
            (
                "store",
                Expr::list([i8c.clone(), b.clone(), Expr::int(8), Expr::int(3)]),
            ),
            (
                "store",
                Expr::list([i8c.clone(), b.clone(), off, Expr::lvar(LVar(2))]),
            ),
            ("sizeBlock", b.clone()),
            ("free", Expr::list([b.clone(), Expr::int(0)])),
            (
                "loadBytes",
                Expr::list([b.clone(), Expr::int(0), Expr::int(8)]),
            ),
        ];
        for (action, arg) in cases {
            let checked = check_action(&CInterpretation, &solver, &m, action, &arg, &pc)
                .unwrap_or_else(|problems| {
                    panic!("MA-RS violated for {action}({arg}): {problems:#?}")
                });
            assert!(checked > 0, "{action}({arg}): no branch was modelled");
        }
    }
}
