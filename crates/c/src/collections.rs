//! The Collections guest library and its symbolic test suite (Table 2).
//!
//! Ten data structures re-implemented in MiniC with the same shape as
//! Collections-C (paper §4.2): dynamic array, deque, doubly linked list,
//! priority queue, queue, ring buffer, singly linked list, stack, tree
//! table, and tree set — with a 161-test symbolic suite matching Table
//! 2's per-structure counts (array 22, deque 34, list 37, pqueue 2,
//! queue 4, rbuf 3, slist 38, stack 2, treetbl 13, treeset 6).
//!
//! [`buggy`] bundles the variants seeding the paper's §4.2 bug classes;
//! the bug-finding tests and the `bug_finding` example run them and
//! demand confirmed counter-models.

use crate::ast::CModule;
use crate::compile::{compile_unit, CompileError};
use crate::parser::parse_unit;
use gillian_core::explore::ExploreConfig;
use gillian_core::testing::{run_suite, TestSuiteResult};
use gillian_gil::Prog;
use gillian_solver::Solver;

/// The library sources, in dependency order.
pub const LIB_SOURCES: &[(&str, &str)] = &[
    ("array", include_str!("../guest/collections/array.c")),
    ("slist", include_str!("../guest/collections/slist.c")),
    ("list", include_str!("../guest/collections/list.c")),
    ("deque", include_str!("../guest/collections/deque.c")),
    ("rbuf", include_str!("../guest/collections/rbuf.c")),
    ("pqueue", include_str!("../guest/collections/pqueue.c")),
    ("queue", include_str!("../guest/collections/queue.c")),
    ("stack", include_str!("../guest/collections/stack.c")),
    ("treetbl", include_str!("../guest/collections/treetbl.c")),
    ("treeset", include_str!("../guest/collections/treeset.c")),
];

/// The per-structure symbolic test sources (Table 2 rows).
pub const TEST_SOURCES: &[(&str, &str)] = &[
    ("array", include_str!("../guest/tests/array.c")),
    ("deque", include_str!("../guest/tests/deque.c")),
    ("list", include_str!("../guest/tests/list.c")),
    ("pqueue", include_str!("../guest/tests/pqueue.c")),
    ("queue", include_str!("../guest/tests/queue.c")),
    ("rbuf", include_str!("../guest/tests/rbuf.c")),
    ("slist", include_str!("../guest/tests/slist.c")),
    ("stack", include_str!("../guest/tests/stack.c")),
    ("treetbl", include_str!("../guest/tests/treetbl.c")),
    ("treeset", include_str!("../guest/tests/treeset.c")),
];

/// The buggy library variants (paper §4.2 bug classes).
pub mod buggy {
    /// Off-by-one dynamic array + UB pointer comparison in expand
    /// (bugs 1 and 2).
    pub const ARRAY: &str = include_str!("../guest/buggy/array.c");
    /// Over-allocating ring buffer (bug 4).
    pub const RBUF: &str = include_str!("../guest/buggy/rbuf.c");
    /// Duplicate-inserting tree table (the bug-5 analogue).
    pub const TREETBL: &str = include_str!("../guest/buggy/treetbl.c");
}

/// The suite names, in Table 2 row order.
pub fn suite_names() -> Vec<&'static str> {
    TEST_SOURCES.iter().map(|(n, _)| *n).collect()
}

/// Parses the whole guest library into one module.
///
/// # Panics
///
/// Panics if a bundled library source fails to parse (a build error).
pub fn library_module() -> CModule {
    let mut module = CModule::default();
    for (name, src) in LIB_SOURCES {
        let m = parse_unit(src)
            .unwrap_or_else(|e| panic!("bundled library {name} failed to parse: {e}"));
        module.extend(m);
    }
    module
}

/// Builds the GIL program and test-entry list for one suite.
///
/// # Errors
///
/// Returns a compile error (type error in the bundled sources).
///
/// # Panics
///
/// Panics on an unknown suite name or unparseable bundled source.
pub fn suite_prog(suite: &str) -> Result<(Prog, Vec<String>), CompileError> {
    let (_, src) = TEST_SOURCES
        .iter()
        .find(|(n, _)| *n == suite)
        .unwrap_or_else(|| panic!("unknown Collections suite {suite}"));
    let mut module = library_module();
    let tests =
        parse_unit(src).unwrap_or_else(|e| panic!("bundled tests {suite} failed to parse: {e}"));
    let entries: Vec<String> = tests
        .funcs
        .iter()
        .filter(|f| f.name.starts_with("test_"))
        .map(|f| f.name.clone())
        .collect();
    module.extend(tests);
    Ok((compile_unit(&module)?, entries))
}

/// Compiles a buggy-library harness: `buggy_src` plus `harness_src`
/// (entry functions exercising the seeded bugs).
///
/// # Errors
///
/// Returns parse/compile error descriptions.
pub fn buggy_prog(buggy_src: &str, harness_src: &str) -> Result<Prog, String> {
    let mut module = parse_unit(buggy_src).map_err(|e| e.to_string())?;
    module.extend(parse_unit(harness_src).map_err(|e| e.to_string())?);
    compile_unit(&module).map_err(|e| e.to_string())
}

/// Runs one Table 2 row with the given solver configuration.
///
/// # Panics
///
/// Panics if the bundled sources fail to compile (a build error).
pub fn run_row(
    suite: &str,
    solver_factory: impl Fn() -> Solver,
    cfg: ExploreConfig,
) -> TestSuiteResult {
    let (prog, entries) =
        suite_prog(suite).unwrap_or_else(|e| panic!("suite {suite} failed to compile: {e}"));
    run_suite::<crate::mem::CSymMemory>(suite, &prog, &entries, solver_factory, cfg)
}

/// The exploration budget used for Table 2 runs.
pub fn table2_config() -> ExploreConfig {
    ExploreConfig {
        max_cmds_per_path: 200_000,
        max_total_cmds: 20_000_000,
        max_paths: 8192,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_parses_and_compiles() {
        let module = library_module();
        assert!(module.func("array_add").is_some());
        assert!(module.func("treetbl_remove").is_some());
        let prog = compile_unit(&module).expect("library compiles");
        assert!(prog.proc("slist_reverse").is_some());
    }

    #[test]
    fn suites_have_table2_test_counts() {
        let expected = [
            ("array", 22),
            ("deque", 34),
            ("list", 37),
            ("pqueue", 2),
            ("queue", 4),
            ("rbuf", 3),
            ("slist", 38),
            ("stack", 2),
            ("treetbl", 13),
            ("treeset", 6),
        ];
        let mut total = 0;
        for (suite, count) in expected {
            let (_, entries) = suite_prog(suite).expect("compiles");
            assert_eq!(entries.len(), count, "suite {suite}");
            total += entries.len();
        }
        assert_eq!(total, 161, "Table 2 reports 161 tests in total");
    }
}
