//! The MiniC concrete and symbolic memory models (paper §4.2) — the
//! CompCert-style memory: separated blocks, block-offset pointers,
//! byte-granular memory values, permissions, and chunked load/store.
//!
//! A memory value occupying byte `off + k` of a stored `n`-byte value `v`
//! is the triple `[v, k, n]` (the unified CompCertS representation the
//! paper adopts for its symbolic memory and notes "could also be applied
//! to the CompCert concrete memory model" — we do exactly that, so the
//! concrete and symbolic heaps have the same shape).
//!
//! ## Actions
//!
//! `A_C = {alloc, free, load, store, loadBytes, storeBytes, dropPerm,
//! checkPerm, sizeBlock, cmpPtr, globalSet, globalGet}` — the heap,
//! permission-table and global-environment management of the paper's
//! action set, minus the concurrency-related actions (Gillian handles
//! sequential programs only, §4.2).
//!
//! ## Undefined behaviour
//!
//! Every UB class the paper's evaluation exercises surfaces as an error
//! value `["UB", kind, detail]`: invalid/null dereference, out-of-bounds
//! access (the Collections-C buffer overflow), use-after-free, double
//! free, uninitialized/partial reads, insufficient permissions, and
//! cross-block or invalid pointer ordering (the Collections-C pointer
//! comparison bugs).
//!
//! ## Documented limitations (matching the paper's §4.2)
//!
//! - allocation sizes must be concrete ("we do not reason about
//!   allocation of symbolic size");
//! - alignment is not checked;
//! - a symbolic store that *partially* overlaps a differently-based run is
//!   not detected (chunk-strided code, which is what compilers emit, never
//!   does this); the differential soundness tests guard the corner.

use crate::chunks::{Chunk, ChunkKind};
use crate::values::POISON;
use gillian_core::memory::{ConcreteMemory, SymBranch, SymbolicMemory};
use gillian_gil::ops::eval_unop;
use gillian_gil::{Expr, LVar, Sym, UnOp, Value};
use gillian_solver::{PathCondition, Solver};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Permission levels, ascending (paper: "we model permissions as
/// integers, in ascending order of permissiveness").
pub mod perm {
    /// No access (freed or fully dropped).
    pub const NONE: u8 = 0;
    /// Read-only.
    pub const READABLE: u8 = 1;
    /// Read and write.
    pub const WRITABLE: u8 = 2;
    /// Read, write, and free.
    pub const FREEABLE: u8 = 3;
}

/// Dense codes for the MiniC actions, used by the bytecode backend's
/// per-site inline caches (`gillian_core::exec`): a dispatch site caches
/// the code on first execution and thereafter skips the string match.
mod code {
    pub const ALLOC: u16 = 0;
    pub const FREE: u16 = 1;
    pub const LOAD: u16 = 2;
    pub const STORE: u16 = 3;
    pub const LOAD_BYTES: u16 = 4;
    pub const STORE_BYTES: u16 = 5;
    pub const DROP_PERM: u16 = 6;
    pub const CHECK_PERM: u16 = 7;
    pub const SIZE_BLOCK: u16 = 8;
    pub const CMP_PTR: u16 = 9;
    pub const GLOBAL_SET: u16 = 10;
    pub const GLOBAL_GET: u16 = 11;
}

fn c_action_code(name: &str) -> Option<u16> {
    Some(match name {
        "alloc" => code::ALLOC,
        "free" => code::FREE,
        "load" => code::LOAD,
        "store" => code::STORE,
        "loadBytes" => code::LOAD_BYTES,
        "storeBytes" => code::STORE_BYTES,
        "dropPerm" => code::DROP_PERM,
        "checkPerm" => code::CHECK_PERM,
        "sizeBlock" => code::SIZE_BLOCK,
        "cmpPtr" => code::CMP_PTR,
        "globalSet" => code::GLOBAL_SET,
        "globalGet" => code::GLOBAL_GET,
        _ => return None,
    })
}

fn ub_value(kind: &str, detail: impl std::fmt::Display) -> Value {
    Value::List(vec![
        Value::str("UB"),
        Value::str(kind),
        Value::str(detail.to_string()),
    ])
}

fn ub_expr(kind: &str, detail: impl std::fmt::Display) -> Expr {
    Expr::Val(ub_value(kind, detail))
}

fn wrap_op(chunk: Chunk) -> Option<UnOp> {
    match chunk.kind {
        ChunkKind::Int if chunk.size < 8 => Some(if chunk.signed {
            UnOp::WrapSigned(chunk.size * 8)
        } else {
            UnOp::WrapUnsigned(chunk.size * 8)
        }),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Concrete memory
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
struct ConcBlock {
    size: i64,
    perm: u8,
    freed: bool,
    cells: BTreeMap<i64, (Value, u8, u8)>,
}

/// The concrete MiniC memory.
///
/// Blocks sit behind [`Arc`]s with copy-on-write mutation: cloning a
/// memory is cheap (states clone on every step), and sequential execution
/// mutates blocks in place because the previous state has been dropped.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CConcMemory {
    blocks: Arc<BTreeMap<Sym, Arc<ConcBlock>>>,
    globals: Arc<BTreeMap<Arc<str>, Value>>,
}

impl CConcMemory {
    fn block_mut(&mut self, b: Sym) -> Option<&mut ConcBlock> {
        Arc::make_mut(&mut self.blocks)
            .get_mut(&b)
            .map(Arc::make_mut)
    }

    fn blocks_mut(&mut self) -> &mut BTreeMap<Sym, Arc<ConcBlock>> {
        Arc::make_mut(&mut self.blocks)
    }
}

fn value_args(arg: &Value, n: usize, action: &str) -> Result<Vec<Value>, Value> {
    match arg.as_list() {
        Some(items) if items.len() == n => Ok(items.to_vec()),
        _ => Err(ub_value(
            "bad-action-argument",
            format!("{action}: expected {n}-element list, got {arg}"),
        )),
    }
}

fn as_block(v: &Value, action: &str) -> Result<Sym, Value> {
    v.as_sym().ok_or_else(|| {
        ub_value(
            "bad-action-argument",
            format!("{action}: {v} is not a block"),
        )
    })
}

fn as_offset(v: &Value, action: &str) -> Result<i64, Value> {
    v.as_int().ok_or_else(|| {
        ub_value(
            "bad-action-argument",
            format!("{action}: {v} is not an offset"),
        )
    })
}

/// Decodes a stored value through a chunk (concrete).
fn decode_value(v: &Value, chunk: Chunk) -> Result<Value, Value> {
    match (chunk.kind, v) {
        (ChunkKind::Int, Value::Int(_)) => match wrap_op(chunk) {
            Some(op) => eval_unop(op, v).map_err(|e| ub_value("decode", e.0)),
            None => Ok(v.clone()),
        },
        (ChunkKind::Float, Value::Num(_)) => Ok(v.clone()),
        (ChunkKind::Ptr, Value::List(items)) if items.len() == 2 => Ok(v.clone()),
        _ => Err(ub_value(
            "mixed-read",
            format!("value {v} does not decode as a {} chunk", chunk.kind.name()),
        )),
    }
}

/// Encodes a value for storage through a chunk (concrete).
fn encode_value(v: &Value, chunk: Chunk) -> Result<Value, Value> {
    decode_value(v, chunk).map_err(|_| {
        ub_value(
            "mixed-store",
            format!(
                "value {v} cannot be stored through a {} chunk",
                chunk.kind.name()
            ),
        )
    })
}

impl CConcMemory {
    fn block(&self, b: Sym, action: &str) -> Result<&ConcBlock, Value> {
        match self.blocks.get(&b) {
            Some(blk) if blk.freed => {
                Err(ub_value("use-after-free", format!("{action} on freed {b}")))
            }
            Some(blk) => Ok(blk),
            None => Err(ub_value("invalid-block", format!("{action} on {b}"))),
        }
    }

    fn check_bounds(
        blk: &ConcBlock,
        off: i64,
        len: i64,
        b: Sym,
        action: &str,
    ) -> Result<(), Value> {
        if off < 0 || off + len > blk.size {
            Err(ub_value(
                "out-of-bounds",
                format!(
                    "{action} of {len} bytes at {b}+{off} (block size {})",
                    blk.size
                ),
            ))
        } else {
            Ok(())
        }
    }

    fn check_perm(blk: &ConcBlock, need: u8, b: Sym, action: &str) -> Result<(), Value> {
        if blk.perm < need {
            Err(ub_value(
                "insufficient-permission",
                format!("{action} needs permission {need} on {b} (has {})", blk.perm),
            ))
        } else {
            Ok(())
        }
    }

    /// Direct block registration (for interpretation functions).
    pub fn register_block(&mut self, b: Sym, size: i64, perm: u8, freed: bool) {
        self.blocks_mut().insert(
            b,
            Arc::new(ConcBlock {
                size,
                perm,
                freed,
                cells: BTreeMap::new(),
            }),
        );
    }

    /// Direct cell write (for interpretation functions).
    pub fn set_cell(&mut self, b: Sym, off: i64, value: Value, k: u8, n: u8) -> bool {
        match self.block_mut(b) {
            Some(blk) => blk.cells.insert(off, (value, k, n)).is_none(),
            None => false,
        }
    }

    /// Number of live blocks.
    pub fn live_blocks(&self) -> usize {
        self.blocks.values().filter(|b| !b.freed).count()
    }
}

impl ConcreteMemory for CConcMemory {
    // Concrete dispatch keeps the default (name-keyed) coded delegation:
    // the concrete actions are dominated by their map operations, so the
    // inline cache's only concrete win is resolving the code once.
    fn action_code(&self, name: &str) -> Option<u16> {
        c_action_code(name)
    }

    fn execute_action(&mut self, name: &str, arg: Value) -> Result<Value, Value> {
        match name {
            "alloc" => {
                let args = value_args(&arg, 2, "alloc")?;
                let b = as_block(&args[0], "alloc")?;
                let size = as_offset(&args[1], "alloc")?;
                if size < 0 {
                    return Err(ub_value("bad-alloc", format!("negative size {size}")));
                }
                if self.blocks.contains_key(&b) {
                    return Err(ub_value("bad-alloc", format!("block {b} exists")));
                }
                self.register_block(b, size, perm::FREEABLE, false);
                Ok(args[0].clone())
            }
            "free" => {
                let args = value_args(&arg, 2, "free")?;
                let b = as_block(&args[0], "free")?;
                let off = as_offset(&args[1], "free")?;
                if off != 0 {
                    return Err(ub_value(
                        "bad-free",
                        format!("free of {b}+{off} (nonzero offset)"),
                    ));
                }
                match self.block_mut(b) {
                    None => Err(ub_value("invalid-block", format!("free of {b}"))),
                    Some(blk) if blk.freed => Err(ub_value(
                        "double-free",
                        format!("free of already freed {b}"),
                    )),
                    Some(blk) => {
                        if blk.perm < perm::FREEABLE {
                            return Err(ub_value(
                                "insufficient-permission",
                                format!("free of {b} with permission {}", blk.perm),
                            ));
                        }
                        blk.freed = true;
                        blk.perm = perm::NONE;
                        blk.cells.clear();
                        Ok(Value::Bool(true))
                    }
                }
            }
            "load" => {
                let args = value_args(&arg, 3, "load")?;
                let chunk = Chunk::from_value(&args[0])
                    .ok_or_else(|| ub_value("bad-action-argument", "load: bad chunk"))?;
                let b = as_block(&args[1], "load")?;
                let off = as_offset(&args[2], "load")?;
                let blk = self.block(b, "load")?;
                Self::check_perm(blk, perm::READABLE, b, "load")?;
                Self::check_bounds(blk, off, chunk.size as i64, b, "load")?;
                let Some((v0, 0, n0)) = blk.cells.get(&off).cloned() else {
                    return Err(ub_value(
                        "uninitialized-read",
                        format!("load at {b}+{off} reads uninitialized or partial bytes"),
                    ));
                };
                if n0 != chunk.size {
                    return Err(ub_value(
                        "mixed-read",
                        format!(
                            "load of {} bytes over a {n0}-byte value at {b}+{off}",
                            chunk.size
                        ),
                    ));
                }
                for i in 1..n0 {
                    match blk.cells.get(&(off + i as i64)) {
                        Some((v, k, n)) if *v == v0 && *k == i && *n == n0 => {}
                        _ => {
                            return Err(ub_value(
                                "mixed-read",
                                format!("load at {b}+{off} reads torn bytes"),
                            ))
                        }
                    }
                }
                decode_value(&v0, chunk)
            }
            "store" => {
                let args = value_args(&arg, 4, "store")?;
                let chunk = Chunk::from_value(&args[0])
                    .ok_or_else(|| ub_value("bad-action-argument", "store: bad chunk"))?;
                let b = as_block(&args[1], "store")?;
                let off = as_offset(&args[2], "store")?;
                let value = encode_value(&args[3], chunk)?;
                let blk = self.block(b, "store")?;
                Self::check_perm(blk, perm::WRITABLE, b, "store")?;
                Self::check_bounds(blk, off, chunk.size as i64, b, "store")?;
                let size = chunk.size;
                let blk = self.block_mut(b).expect("checked above");
                // Invalidate every run with a byte in the written range
                // [off, off + size).
                let lo = off;
                let hi = off + size as i64;
                let mut to_remove: BTreeSet<i64> = BTreeSet::new();
                for (o, (_, k, n)) in blk.cells.iter() {
                    let start = o - *k as i64;
                    if start + *n as i64 > lo && start < hi {
                        for i in 0..*n as i64 {
                            to_remove.insert(start + i);
                        }
                    }
                }
                for o in to_remove {
                    blk.cells.remove(&o);
                }
                for k in 0..size {
                    blk.cells.insert(off + k as i64, (value.clone(), k, size));
                }
                Ok(value)
            }
            "loadBytes" => {
                let args = value_args(&arg, 3, "loadBytes")?;
                let b = as_block(&args[0], "loadBytes")?;
                let off = as_offset(&args[1], "loadBytes")?;
                let len = as_offset(&args[2], "loadBytes")?;
                let blk = self.block(b, "loadBytes")?;
                Self::check_perm(blk, perm::READABLE, b, "loadBytes")?;
                Self::check_bounds(blk, off, len, b, "loadBytes")?;
                let mut out = Vec::with_capacity(len as usize);
                for i in 0..len {
                    match blk.cells.get(&(off + i)) {
                        Some((v, k, n)) => out.push(Value::List(vec![
                            v.clone(),
                            Value::Int(*k as i64),
                            Value::Int(*n as i64),
                        ])),
                        None => out.push(Value::Sym(POISON)),
                    }
                }
                Ok(Value::List(out))
            }
            "storeBytes" => {
                let args = value_args(&arg, 3, "storeBytes")?;
                let b = as_block(&args[0], "storeBytes")?;
                let off = as_offset(&args[1], "storeBytes")?;
                let bytes = args[2]
                    .as_list()
                    .ok_or_else(|| ub_value("bad-action-argument", "storeBytes: bytes"))?
                    .to_vec();
                let len = bytes.len() as i64;
                let blk = self.block(b, "storeBytes")?;
                Self::check_perm(blk, perm::WRITABLE, b, "storeBytes")?;
                Self::check_bounds(blk, off, len, b, "storeBytes")?;
                let blk = self.block_mut(b).expect("checked above");
                for (i, byte) in bytes.into_iter().enumerate() {
                    let at = off + i as i64;
                    if byte == Value::Sym(POISON) {
                        blk.cells.remove(&at);
                    } else if let Some(items) = byte.as_list() {
                        if items.len() == 3 {
                            let k = items[1].as_int().unwrap_or(0) as u8;
                            let n = items[2].as_int().unwrap_or(1) as u8;
                            blk.cells.insert(at, (items[0].clone(), k, n));
                            continue;
                        }
                        return Err(ub_value("bad-action-argument", "storeBytes: bad byte"));
                    } else {
                        return Err(ub_value("bad-action-argument", "storeBytes: bad byte"));
                    }
                }
                Ok(Value::Bool(true))
            }
            "dropPerm" => {
                let args = value_args(&arg, 2, "dropPerm")?;
                let b = as_block(&args[0], "dropPerm")?;
                let p = as_offset(&args[1], "dropPerm")? as u8;
                let blk = self
                    .block_mut(b)
                    .ok_or_else(|| ub_value("invalid-block", format!("dropPerm on {b}")))?;
                blk.perm = blk.perm.min(p);
                Ok(Value::Int(blk.perm as i64))
            }
            "checkPerm" => {
                let b = as_block(&arg, "checkPerm")?;
                match self.blocks.get(&b) {
                    Some(blk) => Ok(Value::Int(blk.perm as i64)),
                    None => Ok(Value::Int(-1)),
                }
            }
            "sizeBlock" => {
                let b = as_block(&arg, "sizeBlock")?;
                let blk = self.block(b, "sizeBlock")?;
                Ok(Value::Int(blk.size))
            }
            "cmpPtr" => {
                let args = value_args(&arg, 3, "cmpPtr")?;
                let op = args[0]
                    .as_str()
                    .ok_or_else(|| ub_value("bad-action-argument", "cmpPtr: op"))?
                    .to_string();
                let p1 = args[1].as_list().filter(|l| l.len() == 2);
                let p2 = args[2].as_list().filter(|l| l.len() == 2);
                let (Some(p1), Some(p2)) = (p1, p2) else {
                    return Err(ub_value("bad-action-argument", "cmpPtr: non-pointers"));
                };
                let same_block = p1[0] == p2[0];
                match op.as_str() {
                    "eq" => Ok(Value::Bool(p1 == p2)),
                    "ne" => Ok(Value::Bool(p1 != p2)),
                    "lt" | "le" => {
                        // Ordering is defined only within one *valid* block.
                        if !same_block {
                            return Err(ub_value(
                                "ub-pointer-comparison",
                                "ordering of pointers into different blocks",
                            ));
                        }
                        let b = as_block(&p1[0], "cmpPtr")?;
                        let _ = self.block(b, "cmpPtr").map_err(|_| {
                            ub_value("ub-pointer-comparison", "ordering of invalid pointers")
                        })?;
                        let o1 = as_offset(&p1[1], "cmpPtr")?;
                        let o2 = as_offset(&p2[1], "cmpPtr")?;
                        Ok(Value::Bool(if op == "lt" { o1 < o2 } else { o1 <= o2 }))
                    }
                    other => Err(ub_value("bad-action-argument", format!("cmpPtr: {other}"))),
                }
            }
            "globalSet" => {
                let args = value_args(&arg, 2, "globalSet")?;
                let name = args[0]
                    .as_str()
                    .ok_or_else(|| ub_value("bad-action-argument", "globalSet: name"))?;
                Arc::make_mut(&mut self.globals).insert(Arc::from(name), args[1].clone());
                Ok(args[1].clone())
            }
            "globalGet" => {
                let name = arg
                    .as_str()
                    .ok_or_else(|| ub_value("bad-action-argument", "globalGet: name"))?;
                self.globals
                    .get(name)
                    .cloned()
                    .ok_or_else(|| ub_value("invalid-global", name))
            }
            other => Err(ub_value("unknown-action", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Symbolic memory
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
struct SymBlock {
    size: i64,
    perm: u8,
    freed: bool,
    /// Byte cells keyed by *simplified* offset expression.
    cells: BTreeMap<Expr, (Expr, u8, u8)>,
}

/// The symbolic MiniC memory.
///
/// Like [`CConcMemory`], blocks are copy-on-write behind [`Arc`]s, so the
/// per-branch state clones of symbolic execution stay cheap and straight-
/// line execution mutates in place.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CSymMemory {
    blocks: Arc<BTreeMap<Sym, Arc<SymBlock>>>,
    globals: Arc<BTreeMap<Arc<str>, Expr>>,
}

impl CSymMemory {
    fn block_mut(&mut self, b: Sym) -> Option<&mut SymBlock> {
        Arc::make_mut(&mut self.blocks)
            .get_mut(&b)
            .map(Arc::make_mut)
    }

    fn blocks_mut(&mut self) -> &mut BTreeMap<Sym, Arc<SymBlock>> {
        Arc::make_mut(&mut self.blocks)
    }
}

fn expr_args(arg: &Expr, n: usize, action: &str) -> Result<Vec<Expr>, Expr> {
    let parts: Option<Vec<Expr>> = match arg {
        Expr::List(es) if es.len() == n => Some(es.to_vec()),
        Expr::Val(Value::List(vs)) if vs.len() == n => {
            Some(vs.iter().cloned().map(Expr::Val).collect())
        }
        _ => None,
    };
    parts.ok_or_else(|| {
        ub_expr(
            "bad-action-argument",
            format!("{action}: expected {n}-element list, got {arg}"),
        )
    })
}

fn expr_block(e: &Expr, action: &str) -> Result<Sym, Expr> {
    match e {
        Expr::Val(Value::Sym(s)) => Ok(*s),
        other => Err(ub_expr(
            "bad-action-argument",
            format!("{action}: {other} is not a literal block"),
        )),
    }
}

fn expr_ptr(e: &Expr) -> Option<(Expr, Expr)> {
    match e {
        Expr::List(items) if items.len() == 2 => Some((items[0].clone(), items[1].clone())),
        Expr::Val(Value::List(items)) if items.len() == 2 => {
            Some((Expr::Val(items[0].clone()), Expr::Val(items[1].clone())))
        }
        _ => None,
    }
}

/// The map key for byte `base + k` of a run: a direct constant fold when
/// the (already simplified) base offset is a literal integer — the common
/// case for concrete address arithmetic — and a solver round-trip
/// otherwise. It must agree exactly with what `simplify` would produce
/// (the constant folder), or the cell map would key the same byte two
/// different ways.
fn offset_key(base: &Expr, k: u8, solver: &Solver, pc: &PathCondition) -> Expr {
    if let Some(o) = base.as_int() {
        if let Some(sum) = o.checked_add(k as i64) {
            return Expr::int(sum);
        }
    }
    solver.simplify(pc, &base.clone().add(Expr::int(k as i64)))
}

/// Decodes a stored symbolic value through a chunk.
fn decode_expr(v: &Expr, chunk: Chunk) -> Expr {
    match wrap_op(chunk) {
        Some(op) => v.clone().un(op),
        None => v.clone(),
    }
}

impl CSymMemory {
    /// Direct block registration (for tests).
    pub fn register_block(&mut self, b: Sym, size: i64) {
        self.blocks_mut().insert(
            b,
            Arc::new(SymBlock {
                size,
                perm: perm::FREEABLE,
                freed: false,
                cells: BTreeMap::new(),
            }),
        );
    }

    /// Direct run write (for tests): stores value `v` of `n` bytes at
    /// concrete offset `off`.
    pub fn set_run(&mut self, b: Sym, off: i64, v: Expr, n: u8) {
        let blk = self.block_mut(b).expect("block registered");
        for k in 0..n {
            blk.cells
                .insert(Expr::int(off + k as i64), (v.clone(), k, n));
        }
    }

    /// Iterates blocks (for the interpretation function).
    pub fn blocks_iter(&self) -> impl Iterator<Item = (Sym, i64, u8, bool)> + '_ {
        self.blocks
            .iter()
            .map(|(b, blk)| (*b, blk.size, blk.perm, blk.freed))
    }

    /// Iterates cells of a block (for the interpretation function).
    pub fn cells_iter(&self, b: Sym) -> impl Iterator<Item = (&Expr, &(Expr, u8, u8))> {
        self.blocks
            .get(&b)
            .into_iter()
            .flat_map(|blk| blk.cells.iter())
    }

    /// The run-start cells (`k == 0`) of a block.
    fn run_starts(&self, b: Sym) -> Vec<(Expr, Expr, u8)> {
        self.blocks
            .get(&b)
            .map(|blk| {
                blk.cells
                    .iter()
                    .filter(|(_, (_, k, _))| *k == 0)
                    .map(|(off, (v, _, n))| (off.clone(), v.clone(), *n))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True when every cell offset of the block is a literal integer —
    /// the common case, where accesses at literal offsets can use direct
    /// map lookups instead of alias branching.
    fn all_offsets_literal(&self, b: Sym) -> bool {
        self.blocks
            .get(&b)
            .is_some_and(|blk| blk.cells.keys().all(|off| off.as_int().is_some()))
    }

    /// Fast-path candidates for an access at a *literal* offset into a
    /// block whose cells are all at literal offsets: at most one run can
    /// match, found by direct lookup instead of scanning every run.
    fn literal_candidates(&self, b: Sym, off: i64) -> Option<Vec<(Expr, Expr, u8)>> {
        if !self.all_offsets_literal(b) {
            return None;
        }
        let blk = self.blocks.get(&b)?;
        Some(match blk.cells.get(&Expr::int(off)) {
            Some((v, 0, n)) => vec![(Expr::int(off), v.clone(), *n)],
            // A mid-run hit or a miss: no run *starts* here; the general
            // machinery then produces the torn/uninitialized error branch.
            _ => Vec::new(),
        })
    }

    /// Checks a complete run of `n` cells for value `v` starting at `base`.
    fn run_complete(
        &self,
        b: Sym,
        base: &Expr,
        v: &Expr,
        n: u8,
        solver: &Solver,
        pc: &PathCondition,
    ) -> bool {
        let Some(blk) = self.blocks.get(&b) else {
            return false;
        };
        for i in 1..n {
            let key = offset_key(base, i, solver, pc);
            match blk.cells.get(&key) {
                Some((cv, ck, cn)) if cv == v && *ck == i && *cn == n => {}
                _ => return false,
            }
        }
        true
    }

    /// Removes the run starting at `base` with `n` bytes.
    fn remove_run(blk: &mut SymBlock, base: &Expr, n: u8, solver: &Solver, pc: &PathCondition) {
        for i in 0..n {
            let key = offset_key(base, i, solver, pc);
            blk.cells.remove(&key);
        }
    }

    /// Inserts a run of `n` bytes of `v` at `base`.
    fn insert_run(
        blk: &mut SymBlock,
        base: &Expr,
        v: &Expr,
        n: u8,
        solver: &Solver,
        pc: &PathCondition,
    ) {
        for k in 0..n {
            let key = offset_key(base, k, solver, pc);
            blk.cells.insert(key, (v.clone(), k, n));
        }
    }

    /// Validity prologue shared by memory accesses: checks the block and
    /// returns `(in_bounds, out_of_bounds)` constraints for `len` bytes at
    /// `off`, or the immediate error.
    #[allow(clippy::too_many_arguments)]
    fn access_prologue(
        &self,
        action: &str,
        b: Sym,
        off: &Expr,
        len: i64,
        need: u8,
        solver: &Solver,
        pc: &PathCondition,
    ) -> Result<(Expr, Expr), Expr> {
        let Some(blk) = self.blocks.get(&b) else {
            return Err(ub_expr("invalid-block", format!("{action} on {b}")));
        };
        if blk.freed {
            return Err(ub_expr("use-after-free", format!("{action} on freed {b}")));
        }
        if blk.perm < need {
            return Err(ub_expr(
                "insufficient-permission",
                format!("{action} needs permission {need} on {b} (has {})", blk.perm),
            ));
        }
        // Literal offsets (the common case for concrete programs) fold
        // the bounds check directly — same result the simplifier's
        // constant folder would return, without the solver round-trips.
        let in_bounds = match off.as_int() {
            Some(o) => {
                if 0 <= o && o <= blk.size - len {
                    Expr::tt()
                } else {
                    Expr::ff()
                }
            }
            None => {
                let e = Expr::int(0)
                    .le(off.clone())
                    .and(off.clone().le(Expr::int(blk.size - len)));
                solver.simplify(pc, &e)
            }
        };
        let out_of_bounds = match in_bounds.as_bool() {
            Some(b) => Expr::Val(Value::Bool(!b)),
            None => solver.simplify(pc, &in_bounds.clone().not()),
        };
        Ok((in_bounds, out_of_bounds))
    }
}

/// Pushes a branch unless its constraint is trivially false or unsat.
fn push_branch<M>(
    out: &mut Vec<SymBranch<M>>,
    pc: &PathCondition,
    solver: &Solver,
    branch: SymBranch<M>,
) {
    if branch.constraint.as_bool() == Some(false) {
        return;
    }
    if solver.sat_with(pc, &branch.constraint).possibly_sat() {
        out.push(branch);
    }
}

/// The one decision probe a literal fast path keeps: the surviving
/// branch's constraint is the literal `true`, so `push_branch` would gate
/// it on `sat(pc ∧ true)` — and since `simplify(pc, true)` is the
/// identity and [`PathCondition::push`] drops literal `true`, that query
/// is *exactly* `sat(pc)`, issued here without the clone-and-push
/// round-trip. An unsat path condition yields the same empty branch set
/// as the general path.
fn literal_gate<M>(
    pc: &PathCondition,
    solver: &Solver,
    branches: Vec<SymBranch<M>>,
) -> Vec<SymBranch<M>> {
    if solver.check_sat(pc).possibly_sat() {
        branches
    } else {
        Vec::new()
    }
}

/// `simplify(pc, decode_expr(v, chunk))` with the solver round-trip
/// skipped when it is provably the identity: literals and bare logical
/// variables are fixpoints of the simplifier, and a literal under a wrap
/// folds through the same `eval_unop` the simplifier's constant folder
/// uses (errors stay residual there, so those fall through to it).
fn decode_simplified(v: &Expr, chunk: Chunk, pc: &PathCondition, solver: &Solver) -> Expr {
    match wrap_op(chunk) {
        None => match v {
            Expr::Val(_) | Expr::LVar(_) => v.clone(),
            _ => solver.simplify(pc, v),
        },
        Some(op) => {
            if let Expr::Val(val) = v {
                if let Ok(folded) = eval_unop(op, val) {
                    return Expr::Val(folded);
                }
            }
            solver.simplify(pc, &decode_expr(v, chunk))
        }
    }
}

impl CSymMemory {
    // ---- literal fast paths (bytecode backend only) -----------------
    //
    // When the offset is a literal integer and every cell offset of the
    // accessed block is literal, each decision of the general `load`/
    // `store` machinery folds: the bounds check folds in
    // `access_prologue`, at most one run can alias the access (found by
    // direct map lookup, as in `literal_candidates`), its equality
    // constraint folds to the literal `true`, and the out-of-bounds and
    // none-of-the-runs constraints fold to `false`. The branch set is a
    // single branch decided without the solver — except the one residual
    // [`literal_gate`] probe and, for values that are not simplifier
    // fixpoints, the same decode `simplify` the general path issues.
    // These helpers are reachable only from `execute_action_coded` (the
    // bytecode backend); the tree walk stays a byte-identical reference.

    /// The literal-access prologue shared by `fast_load`/`fast_store`:
    /// `None` falls back to the general path (symbolic anything, missing
    /// or freed block, insufficient permission — the error prologues stay
    /// on one code path).
    fn literal_access(&self, args: &[Expr], need: u8) -> Option<(Chunk, Sym, i64, &SymBlock)> {
        let chunk = args[0].as_value().and_then(Chunk::from_value)?;
        let b = match &args[1] {
            Expr::Val(Value::Sym(s)) => *s,
            _ => return None,
        };
        let off = args[2].as_int()?;
        let blk = self.blocks.get(&b)?;
        if blk.freed || blk.perm < need || !self.all_offsets_literal(b) {
            return None;
        }
        Some((chunk, b, off, blk))
    }

    fn fast_load(
        &self,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        let args = expr_args(arg, 3, "load").ok()?;
        let (chunk, b, off, blk) = self.literal_access(&args, perm::READABLE)?;
        let branch = if !(0 <= off && off <= blk.size - chunk.size as i64) {
            SymBranch::err_if(
                self.clone(),
                ub_expr(
                    "out-of-bounds",
                    format!("load of {} bytes at {b}+{off}", chunk.size),
                ),
                Expr::tt(),
            )
        } else {
            match blk.cells.get(&Expr::int(off)) {
                Some((v, 0, n))
                    if *n == chunk.size
                        && self.run_complete(b, &Expr::int(off), v, *n, solver, pc) =>
                {
                    SymBranch::ok_if(
                        self.clone(),
                        decode_simplified(v, chunk, pc, solver),
                        Expr::tt(),
                    )
                }
                Some((_, 0, _)) => SymBranch::err_if(
                    self.clone(),
                    ub_expr("mixed-read", format!("torn load at {b}+{off}")),
                    Expr::tt(),
                ),
                // A mid-run hit or a miss: no run starts here.
                _ => SymBranch::err_if(
                    self.clone(),
                    ub_expr(
                        "uninitialized-read",
                        format!("load at {b}+{off} reads uninitialized bytes"),
                    ),
                    Expr::tt(),
                ),
            }
        };
        Some(literal_gate(pc, solver, vec![branch]))
    }

    fn fast_store(
        &self,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        let args = expr_args(arg, 4, "store").ok()?;
        let (chunk, b, off, blk) = self.literal_access(&args, perm::WRITABLE)?;
        let branch = if !(0 <= off && off <= blk.size - chunk.size as i64) {
            SymBranch::err_if(
                self.clone(),
                ub_expr(
                    "out-of-bounds",
                    format!("store of {} bytes at {b}+{off}", chunk.size),
                ),
                Expr::tt(),
            )
        } else {
            let value = decode_simplified(&args[3], chunk, pc, solver);
            let base = Expr::int(off);
            // Only a run *starting* here is replaced wholesale; a mid-run
            // overwrite is handled by the concrete-overlap removal, as on
            // the general path's none-of-the-runs branch.
            let old_run = match blk.cells.get(&base) {
                Some((_, 0, n)) => Some(*n),
                _ => None,
            };
            let mut mem = self.clone();
            let mblk = mem.block_mut(b).expect("block checked");
            if let Some(n) = old_run {
                Self::remove_run(mblk, &base, n, solver, pc);
            }
            remove_concrete_overlaps(mblk, &base, chunk.size);
            Self::insert_run(mblk, &base, &value, chunk.size, solver, pc);
            SymBranch::ok_if(mem, value, Expr::tt())
        };
        Some(literal_gate(pc, solver, vec![branch]))
    }

    fn fast_free(
        &self,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        let args = expr_args(arg, 2, "free").ok()?;
        let b = match &args[0] {
            Expr::Val(Value::Sym(s)) => *s,
            _ => return None,
        };
        let off = args[1].as_int()?;
        let blk = self.blocks.get(&b)?;
        if blk.freed || blk.perm < perm::FREEABLE {
            return None;
        }
        let branch = if off == 0 {
            let mut mem = self.clone();
            if let Some(mblk) = mem.block_mut(b) {
                mblk.freed = true;
                mblk.perm = perm::NONE;
                mblk.cells.clear();
            }
            SymBranch::ok_if(mem, Expr::tt(), Expr::tt())
        } else {
            SymBranch::err_if(
                self.clone(),
                ub_expr("bad-free", format!("free of {b} at nonzero offset {off}")),
                Expr::tt(),
            )
        };
        Some(literal_gate(pc, solver, vec![branch]))
    }

    /// `cmpPtr` on two fully-literal pointers: every comparison folds
    /// through the same `eval_binop` the simplifier's constant folder
    /// uses (`Value`'s derived equality is element-wise on the promoted
    /// pointer lists). The general path issues no satisfiability probes
    /// for `cmpPtr` — only simplifies — so no gate applies here either.
    fn fast_cmp_ptr(&self, arg: &Expr) -> Option<Vec<SymBranch<Self>>> {
        let args = expr_args(arg, 3, "cmpPtr").ok()?;
        let op = match &args[0] {
            Expr::Val(Value::Str(s)) => s.clone(),
            _ => return None,
        };
        let (b1, o1) = expr_ptr(&args[1])?;
        let (b2, o2) = expr_ptr(&args[2])?;
        let (vb1, vo1, vb2, vo2) = match (&b1, &o1, &b2, &o2) {
            (Expr::Val(vb1), Expr::Val(vo1), Expr::Val(vb2), Expr::Val(vo2)) => {
                (vb1, vo1, vb2, vo2)
            }
            _ => return None,
        };
        Some(match op.as_ref() {
            "eq" => vec![SymBranch::ok(
                self.clone(),
                Expr::bool(vb1 == vb2 && vo1 == vo2),
            )],
            "ne" => vec![SymBranch::ok(
                self.clone(),
                Expr::bool(vb1 != vb2 || vo1 != vo2),
            )],
            "lt" | "le" => {
                if vb1 != vb2 {
                    vec![SymBranch::err_if(
                        self.clone(),
                        ub_expr(
                            "ub-pointer-comparison",
                            "ordering of pointers into different blocks",
                        ),
                        Expr::tt(),
                    )]
                } else {
                    let Value::Sym(blk) = vb1 else { return None };
                    match self.blocks.get(blk) {
                        Some(info) if !info.freed => {
                            let (Value::Int(a), Value::Int(c)) = (vo1, vo2) else {
                                // Mixed offset types stay residual under
                                // the folder; let the general path decide.
                                return None;
                            };
                            let cmp = if op.as_ref() == "lt" { a < c } else { a <= c };
                            vec![SymBranch::ok(self.clone(), Expr::bool(cmp))]
                        }
                        _ => vec![SymBranch::err_if(
                            self.clone(),
                            ub_expr("ub-pointer-comparison", "ordering of invalid pointers"),
                            Expr::tt(),
                        )],
                    }
                }
            }
            _ => return None,
        })
    }
}

impl SymbolicMemory for CSymMemory {
    fn action_code(&self, name: &str) -> Option<u16> {
        c_action_code(name)
    }

    fn execute_action_coded(
        &self,
        code: u16,
        name: &str,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        // Only the hot heap accesses have literal fast paths; a fast
        // helper returns `None` whenever anything symbolic is involved.
        // Everything else falls back to the general implementation.
        let fast = match code {
            code::LOAD => self.fast_load(arg, pc, solver),
            code::STORE => self.fast_store(arg, pc, solver),
            code::FREE => self.fast_free(arg, pc, solver),
            code::CMP_PTR => self.fast_cmp_ptr(arg),
            _ => None,
        };
        fast.unwrap_or_else(|| self.execute_action(name, arg, pc, solver))
    }
    fn language() -> &'static str {
        "minic"
    }

    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        let err1 = |e: Expr| vec![SymBranch::err_if(self.clone(), e, Expr::tt())];
        match name {
            "alloc" => {
                let args = match expr_args(arg, 2, "alloc") {
                    Ok(a) => a,
                    Err(e) => return err1(e),
                };
                let b = match expr_block(&args[0], "alloc") {
                    Ok(b) => b,
                    Err(e) => return err1(e),
                };
                let Some(size) = args[1].as_int() else {
                    // Paper §4.2: symbolic allocation sizes are an open
                    // research problem; MiniC rejects them like Gillian-C.
                    return err1(ub_expr(
                        "symbolic-alloc",
                        format!("alloc of symbolic size {}", args[1]),
                    ));
                };
                if size < 0 {
                    return err1(ub_expr("bad-alloc", format!("negative size {size}")));
                }
                if self.blocks.contains_key(&b) {
                    return err1(ub_expr("bad-alloc", format!("block {b} exists")));
                }
                let mut mem = self.clone();
                mem.register_block(b, size);
                vec![SymBranch::ok(mem, args[0].clone())]
            }
            "free" => {
                let args = match expr_args(arg, 2, "free") {
                    Ok(a) => a,
                    Err(e) => return err1(e),
                };
                let b = match expr_block(&args[0], "free") {
                    Ok(b) => b,
                    Err(e) => return err1(e),
                };
                let off = &args[1];
                let Some(blk) = self.blocks.get(&b) else {
                    return err1(ub_expr("invalid-block", format!("free of {b}")));
                };
                if blk.freed {
                    return err1(ub_expr("double-free", format!("free of already freed {b}")));
                }
                if blk.perm < perm::FREEABLE {
                    return err1(ub_expr(
                        "insufficient-permission",
                        format!("free of {b} with permission {}", blk.perm),
                    ));
                }
                let mut out = Vec::new();
                let zero = solver.simplify(pc, &off.clone().eq(Expr::int(0)));
                let nonzero = solver.simplify(pc, &zero.clone().not());
                let mut mem = self.clone();
                if let Some(mblk) = mem.block_mut(b) {
                    mblk.freed = true;
                    mblk.perm = perm::NONE;
                    mblk.cells.clear();
                }
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::ok_if(mem, Expr::tt(), zero),
                );
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        ub_expr("bad-free", format!("free of {b} at nonzero offset {off}")),
                        nonzero,
                    ),
                );
                out
            }
            "load" => {
                let args = match expr_args(arg, 3, "load") {
                    Ok(a) => a,
                    Err(e) => return err1(e),
                };
                let chunk = match args[0].as_value().and_then(Chunk::from_value) {
                    Some(c) => c,
                    None => return err1(ub_expr("bad-action-argument", "load: bad chunk")),
                };
                let b = match expr_block(&args[1], "load") {
                    Ok(b) => b,
                    Err(e) => return err1(e),
                };
                let off = solver.simplify(pc, &args[2]);
                let (in_bounds, oob) = match self.access_prologue(
                    "load",
                    b,
                    &off,
                    chunk.size as i64,
                    perm::READABLE,
                    solver,
                    pc,
                ) {
                    Ok(x) => x,
                    Err(e) => return err1(e),
                };
                let mut out = Vec::new();
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        ub_expr(
                            "out-of-bounds",
                            format!("load of {} bytes at {b}+{off}", chunk.size),
                        ),
                        oob,
                    ),
                );
                let mut none_of = in_bounds.clone();
                let candidates = match off.as_int().and_then(|o| self.literal_candidates(b, o)) {
                    Some(c) => c,
                    None => self.run_starts(b),
                };
                for (base, v, n) in candidates {
                    let eq =
                        solver.simplify(pc, &in_bounds.clone().and(off.clone().eq(base.clone())));
                    none_of = none_of.and(off.clone().ne(base.clone()));
                    if eq.as_bool() == Some(false) || !solver.sat_with(pc, &eq).possibly_sat() {
                        continue;
                    }
                    if n == chunk.size && self.run_complete(b, &base, &v, n, solver, pc) {
                        let decoded = solver.simplify(pc, &decode_expr(&v, chunk));
                        push_branch(
                            &mut out,
                            pc,
                            solver,
                            SymBranch::ok_if(self.clone(), decoded, eq),
                        );
                    } else {
                        push_branch(
                            &mut out,
                            pc,
                            solver,
                            SymBranch::err_if(
                                self.clone(),
                                ub_expr("mixed-read", format!("torn load at {b}+{off}")),
                                eq,
                            ),
                        );
                    }
                }
                let none_of = solver.simplify(pc, &none_of);
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        ub_expr(
                            "uninitialized-read",
                            format!("load at {b}+{off} reads uninitialized bytes"),
                        ),
                        none_of,
                    ),
                );
                out
            }
            "store" => {
                let args = match expr_args(arg, 4, "store") {
                    Ok(a) => a,
                    Err(e) => return err1(e),
                };
                let chunk = match args[0].as_value().and_then(Chunk::from_value) {
                    Some(c) => c,
                    None => return err1(ub_expr("bad-action-argument", "store: bad chunk")),
                };
                let b = match expr_block(&args[1], "store") {
                    Ok(b) => b,
                    Err(e) => return err1(e),
                };
                let off = solver.simplify(pc, &args[2]);
                let value = solver.simplify(pc, &decode_expr(&args[3], chunk));
                let (in_bounds, oob) = match self.access_prologue(
                    "store",
                    b,
                    &off,
                    chunk.size as i64,
                    perm::WRITABLE,
                    solver,
                    pc,
                ) {
                    Ok(x) => x,
                    Err(e) => return err1(e),
                };
                let mut out = Vec::new();
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        ub_expr(
                            "out-of-bounds",
                            format!("store of {} bytes at {b}+{off}", chunk.size),
                        ),
                        oob,
                    ),
                );
                let mut none_of = in_bounds.clone();
                let candidates = match off.as_int().and_then(|o| self.literal_candidates(b, o)) {
                    Some(c) => c,
                    None => self.run_starts(b),
                };
                for (base, _, n) in candidates {
                    let eq =
                        solver.simplify(pc, &in_bounds.clone().and(off.clone().eq(base.clone())));
                    none_of = none_of.and(off.clone().ne(base.clone()));
                    if eq.as_bool() == Some(false) || !solver.sat_with(pc, &eq).possibly_sat() {
                        continue;
                    }
                    let mut mem = self.clone();
                    let blk = mem.block_mut(b).expect("block checked");
                    Self::remove_run(blk, &base, n, solver, pc);
                    // Concrete partial overlaps with *other* runs.
                    remove_concrete_overlaps(blk, &base, chunk.size);
                    Self::insert_run(blk, &base, &value, chunk.size, solver, pc);
                    push_branch(
                        &mut out,
                        pc,
                        solver,
                        SymBranch::ok_if(mem, value.clone(), eq),
                    );
                }
                let none_of = solver.simplify(pc, &none_of);
                if none_of.as_bool() != Some(false) && solver.sat_with(pc, &none_of).possibly_sat()
                {
                    let mut mem = self.clone();
                    let blk = mem.block_mut(b).expect("block checked");
                    remove_concrete_overlaps(blk, &off, chunk.size);
                    Self::insert_run(blk, &off, &value, chunk.size, solver, pc);
                    push_branch(
                        &mut out,
                        pc,
                        solver,
                        SymBranch::ok_if(mem, value.clone(), none_of),
                    );
                }
                out
            }
            "loadBytes" => {
                let args = match expr_args(arg, 3, "loadBytes") {
                    Ok(a) => a,
                    Err(e) => return err1(e),
                };
                let b = match expr_block(&args[0], "loadBytes") {
                    Ok(b) => b,
                    Err(e) => return err1(e),
                };
                let (Some(off), Some(len)) = (args[1].as_int(), args[2].as_int()) else {
                    return err1(ub_expr(
                        "symbolic-bytes",
                        "loadBytes needs concrete offset and length",
                    ));
                };
                let Some(blk) = self.blocks.get(&b) else {
                    return err1(ub_expr("invalid-block", format!("loadBytes on {b}")));
                };
                if blk.freed {
                    return err1(ub_expr("use-after-free", format!("loadBytes on freed {b}")));
                }
                if off < 0 || off + len > blk.size {
                    return err1(ub_expr("out-of-bounds", format!("loadBytes at {b}+{off}")));
                }
                let mut bytes = Vec::with_capacity(len as usize);
                for i in 0..len {
                    match blk.cells.get(&Expr::int(off + i)) {
                        Some((v, k, n)) => bytes.push(Expr::list([
                            v.clone(),
                            Expr::int(*k as i64),
                            Expr::int(*n as i64),
                        ])),
                        None => bytes.push(Expr::Val(Value::Sym(POISON))),
                    }
                }
                vec![SymBranch::ok(self.clone(), Expr::List(bytes.into()))]
            }
            "storeBytes" => {
                let args = match expr_args(arg, 3, "storeBytes") {
                    Ok(a) => a,
                    Err(e) => return err1(e),
                };
                let b = match expr_block(&args[0], "storeBytes") {
                    Ok(b) => b,
                    Err(e) => return err1(e),
                };
                let Some(off) = args[1].as_int() else {
                    return err1(ub_expr(
                        "symbolic-bytes",
                        "storeBytes needs a concrete offset",
                    ));
                };
                let bytes: Vec<Expr> = match &args[2] {
                    Expr::List(es) => es.to_vec(),
                    Expr::Val(Value::List(vs)) => vs.iter().cloned().map(Expr::Val).collect(),
                    _ => return err1(ub_expr("bad-action-argument", "storeBytes: bytes")),
                };
                let len = bytes.len() as i64;
                let Some(blk) = self.blocks.get(&b) else {
                    return err1(ub_expr("invalid-block", format!("storeBytes on {b}")));
                };
                if blk.freed {
                    return err1(ub_expr(
                        "use-after-free",
                        format!("storeBytes on freed {b}"),
                    ));
                }
                if blk.perm < perm::WRITABLE {
                    return err1(ub_expr("insufficient-permission", "storeBytes"));
                }
                if off < 0 || off + len > blk.size {
                    return err1(ub_expr("out-of-bounds", format!("storeBytes at {b}+{off}")));
                }
                let mut mem = self.clone();
                let blk = mem.block_mut(b).expect("checked");
                for (i, byte) in bytes.into_iter().enumerate() {
                    let key = Expr::int(off + i as i64);
                    if byte == Expr::Val(Value::Sym(POISON)) {
                        blk.cells.remove(&key);
                        continue;
                    }
                    let parts = match &byte {
                        Expr::List(items) if items.len() == 3 => items.clone(),
                        Expr::Val(Value::List(items)) if items.len() == 3 => {
                            items.iter().cloned().map(Expr::Val).collect()
                        }
                        _ => return err1(ub_expr("bad-action-argument", "storeBytes: bad byte")),
                    };
                    let (Some(k), Some(n)) = (parts[1].as_int(), parts[2].as_int()) else {
                        return err1(ub_expr("bad-action-argument", "storeBytes: bad byte"));
                    };
                    blk.cells.insert(key, (parts[0].clone(), k as u8, n as u8));
                }
                vec![SymBranch::ok(mem, Expr::tt())]
            }
            "dropPerm" => {
                let args = match expr_args(arg, 2, "dropPerm") {
                    Ok(a) => a,
                    Err(e) => return err1(e),
                };
                let b = match expr_block(&args[0], "dropPerm") {
                    Ok(b) => b,
                    Err(e) => return err1(e),
                };
                let Some(p) = args[1].as_int() else {
                    return err1(ub_expr("bad-action-argument", "dropPerm: level"));
                };
                let mut mem = self.clone();
                let Some(blk) = mem.block_mut(b) else {
                    return err1(ub_expr("invalid-block", format!("dropPerm on {b}")));
                };
                blk.perm = blk.perm.min(p as u8);
                let result = Expr::int(blk.perm as i64);
                vec![SymBranch::ok(mem, result)]
            }
            "checkPerm" => {
                let b = match expr_block(arg, "checkPerm") {
                    Ok(b) => b,
                    Err(e) => return err1(e),
                };
                let p = self.blocks.get(&b).map(|blk| blk.perm as i64).unwrap_or(-1);
                vec![SymBranch::ok(self.clone(), Expr::int(p))]
            }
            "sizeBlock" => {
                let b = match expr_block(arg, "sizeBlock") {
                    Ok(b) => b,
                    Err(e) => return err1(e),
                };
                match self.blocks.get(&b) {
                    Some(blk) if !blk.freed => {
                        vec![SymBranch::ok(self.clone(), Expr::int(blk.size))]
                    }
                    Some(_) => err1(ub_expr("use-after-free", format!("sizeBlock on freed {b}"))),
                    None => err1(ub_expr("invalid-block", format!("sizeBlock on {b}"))),
                }
            }
            "cmpPtr" => {
                let args = match expr_args(arg, 3, "cmpPtr") {
                    Ok(a) => a,
                    Err(e) => return err1(e),
                };
                let op = match &args[0] {
                    Expr::Val(Value::Str(s)) => s.to_string(),
                    _ => return err1(ub_expr("bad-action-argument", "cmpPtr: op")),
                };
                let (Some((b1, o1)), Some((b2, o2))) = (expr_ptr(&args[1]), expr_ptr(&args[2]))
                else {
                    return err1(ub_expr("bad-action-argument", "cmpPtr: non-pointers"));
                };
                match op.as_str() {
                    "eq" => vec![SymBranch::ok(
                        self.clone(),
                        solver.simplify(pc, &args[1].clone().eq(args[2].clone())),
                    )],
                    "ne" => vec![SymBranch::ok(
                        self.clone(),
                        solver.simplify(pc, &args[1].clone().ne(args[2].clone())),
                    )],
                    "lt" | "le" => {
                        // Blocks are literal symbols, so this decides
                        // concretely in practice.
                        let same = solver.simplify(pc, &b1.clone().eq(b2.clone()));
                        match same.as_bool() {
                            Some(false) => err1(ub_expr(
                                "ub-pointer-comparison",
                                "ordering of pointers into different blocks",
                            )),
                            _ => {
                                let blk = match expr_block(&b1, "cmpPtr") {
                                    Ok(b) => b,
                                    Err(e) => return err1(e),
                                };
                                match self.blocks.get(&blk) {
                                    Some(info) if !info.freed => {
                                        let cmp = if op == "lt" { o1.lt(o2) } else { o1.le(o2) };
                                        vec![SymBranch::ok(self.clone(), solver.simplify(pc, &cmp))]
                                    }
                                    _ => err1(ub_expr(
                                        "ub-pointer-comparison",
                                        "ordering of invalid pointers",
                                    )),
                                }
                            }
                        }
                    }
                    other => err1(ub_expr("bad-action-argument", format!("cmpPtr: {other}"))),
                }
            }
            "globalSet" => {
                let args = match expr_args(arg, 2, "globalSet") {
                    Ok(a) => a,
                    Err(e) => return err1(e),
                };
                let name = match &args[0] {
                    Expr::Val(Value::Str(s)) => s.clone(),
                    _ => return err1(ub_expr("bad-action-argument", "globalSet: name")),
                };
                let mut mem = self.clone();
                Arc::make_mut(&mut mem.globals).insert(name, args[1].clone());
                vec![SymBranch::ok(mem, args[1].clone())]
            }
            "globalGet" => {
                let name = match arg {
                    Expr::Val(Value::Str(s)) => s.clone(),
                    _ => return err1(ub_expr("bad-action-argument", "globalGet: name")),
                };
                match self.globals.get(&name) {
                    Some(v) => vec![SymBranch::ok(self.clone(), v.clone())],
                    None => err1(ub_expr("invalid-global", name)),
                }
            }
            other => err1(ub_expr("unknown-action", other)),
        }
    }

    fn lvars(&self) -> BTreeSet<LVar> {
        let mut out = BTreeSet::new();
        for blk in self.blocks.values() {
            for (off, (v, _, _)) in &blk.cells {
                out.extend(off.lvars());
                out.extend(v.lvars());
            }
        }
        for v in self.globals.values() {
            out.extend(v.lvars());
        }
        out
    }
}

/// Removes runs with *concrete* bases that overlap a write of `size` bytes
/// at `base` (when `base` is concrete). Symbolic partial overlaps are the
/// documented limitation.
fn remove_concrete_overlaps(blk: &mut SymBlock, base: &Expr, size: u8) {
    let Some(lo) = base.as_int() else { return };
    let hi = lo + size as i64;
    let starts: Vec<(i64, u8)> = blk
        .cells
        .iter()
        .filter_map(|(off, (_, k, n))| {
            let o = off.as_int()?;
            (*k == 0).then_some((o, *n))
        })
        .collect();
    for (start, n) in starts {
        if start < hi && start + n as i64 > lo {
            for i in 0..n as i64 {
                blk.cells.remove(&Expr::int(start + i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::ptr_value;

    fn blk(i: u64) -> Sym {
        Sym(Sym::FIRST_FRESH + i)
    }

    fn alloc_conc(m: &mut CConcMemory, i: u64, size: i64) -> Sym {
        let b = blk(i);
        m.execute_action("alloc", Value::List(vec![Value::Sym(b), Value::Int(size)]))
            .unwrap();
        b
    }

    #[test]
    fn concrete_store_load_round_trip() {
        let mut m = CConcMemory::default();
        let b = alloc_conc(&mut m, 0, 16);
        let chunk = Chunk::int(4).to_value();
        m.execute_action(
            "store",
            Value::List(vec![
                chunk.clone(),
                Value::Sym(b),
                Value::Int(0),
                Value::Int(1234),
            ]),
        )
        .unwrap();
        let v = m
            .execute_action(
                "load",
                Value::List(vec![chunk, Value::Sym(b), Value::Int(0)]),
            )
            .unwrap();
        assert_eq!(v, Value::Int(1234));
    }

    #[test]
    fn concrete_narrow_store_wraps() {
        let mut m = CConcMemory::default();
        let b = alloc_conc(&mut m, 0, 8);
        let chunk = Chunk::int(1).to_value();
        m.execute_action(
            "store",
            Value::List(vec![
                chunk.clone(),
                Value::Sym(b),
                Value::Int(0),
                Value::Int(200),
            ]),
        )
        .unwrap();
        let v = m
            .execute_action(
                "load",
                Value::List(vec![chunk, Value::Sym(b), Value::Int(0)]),
            )
            .unwrap();
        assert_eq!(v, Value::Int(-56), "signed char wraps");
    }

    #[test]
    fn concrete_out_of_bounds_is_ub() {
        let mut m = CConcMemory::default();
        let b = alloc_conc(&mut m, 0, 4);
        let chunk = Chunk::int(4).to_value();
        let e = m
            .execute_action(
                "store",
                Value::List(vec![chunk, Value::Sym(b), Value::Int(1), Value::Int(0)]),
            )
            .unwrap_err();
        assert!(e.to_string().contains("out-of-bounds"), "{e}");
    }

    #[test]
    fn concrete_uninitialized_and_torn_reads_are_ub() {
        let mut m = CConcMemory::default();
        let b = alloc_conc(&mut m, 0, 16);
        let i4 = Chunk::int(4).to_value();
        let e = m
            .execute_action(
                "load",
                Value::List(vec![i4.clone(), Value::Sym(b), Value::Int(0)]),
            )
            .unwrap_err();
        assert!(e.to_string().contains("uninitialized"), "{e}");
        // Store 8 bytes, read 4: torn.
        let i8c = Chunk::int(8).to_value();
        m.execute_action(
            "store",
            Value::List(vec![i8c, Value::Sym(b), Value::Int(0), Value::Int(7)]),
        )
        .unwrap();
        let e = m
            .execute_action("load", Value::List(vec![i4, Value::Sym(b), Value::Int(0)]))
            .unwrap_err();
        assert!(e.to_string().contains("mixed-read"), "{e}");
    }

    #[test]
    fn concrete_overlapping_store_invalidates_old_run() {
        let mut m = CConcMemory::default();
        let b = alloc_conc(&mut m, 0, 16);
        let i8c = Chunk::int(8).to_value();
        let i4 = Chunk::int(4).to_value();
        m.execute_action(
            "store",
            Value::List(vec![
                i8c.clone(),
                Value::Sym(b),
                Value::Int(0),
                Value::Int(7),
            ]),
        )
        .unwrap();
        // Overwrite bytes 4..8 with an int: old 8-byte run must die.
        m.execute_action(
            "store",
            Value::List(vec![
                i4.clone(),
                Value::Sym(b),
                Value::Int(4),
                Value::Int(1),
            ]),
        )
        .unwrap();
        let e = m
            .execute_action("load", Value::List(vec![i8c, Value::Sym(b), Value::Int(0)]))
            .unwrap_err();
        assert!(e.to_string().contains("uninitialized") || e.to_string().contains("mixed"));
        let v = m
            .execute_action("load", Value::List(vec![i4, Value::Sym(b), Value::Int(4)]))
            .unwrap();
        assert_eq!(v, Value::Int(1));
    }

    #[test]
    fn concrete_free_lifecycle() {
        let mut m = CConcMemory::default();
        let b = alloc_conc(&mut m, 0, 8);
        m.execute_action("free", Value::List(vec![Value::Sym(b), Value::Int(0)]))
            .unwrap();
        let chunk = Chunk::int(4).to_value();
        let e = m
            .execute_action(
                "load",
                Value::List(vec![chunk, Value::Sym(b), Value::Int(0)]),
            )
            .unwrap_err();
        assert!(e.to_string().contains("use-after-free"), "{e}");
        let e = m
            .execute_action("free", Value::List(vec![Value::Sym(b), Value::Int(0)]))
            .unwrap_err();
        assert!(e.to_string().contains("double-free"), "{e}");
    }

    #[test]
    fn concrete_memcpy_via_bytes() {
        let mut m = CConcMemory::default();
        let src = alloc_conc(&mut m, 0, 8);
        let dst = alloc_conc(&mut m, 1, 8);
        let chunk = Chunk::int(8).to_value();
        m.execute_action(
            "store",
            Value::List(vec![
                chunk.clone(),
                Value::Sym(src),
                Value::Int(0),
                Value::Int(99),
            ]),
        )
        .unwrap();
        let bytes = m
            .execute_action(
                "loadBytes",
                Value::List(vec![Value::Sym(src), Value::Int(0), Value::Int(8)]),
            )
            .unwrap();
        m.execute_action(
            "storeBytes",
            Value::List(vec![Value::Sym(dst), Value::Int(0), bytes]),
        )
        .unwrap();
        let v = m
            .execute_action(
                "load",
                Value::List(vec![chunk, Value::Sym(dst), Value::Int(0)]),
            )
            .unwrap();
        assert_eq!(v, Value::Int(99));
    }

    #[test]
    fn concrete_pointer_comparison_ub() {
        let mut m = CConcMemory::default();
        let b1 = alloc_conc(&mut m, 0, 8);
        let b2 = alloc_conc(&mut m, 1, 8);
        // Equality across blocks is defined.
        let v = m
            .execute_action(
                "cmpPtr",
                Value::List(vec![Value::str("eq"), ptr_value(b1, 0), ptr_value(b2, 0)]),
            )
            .unwrap();
        assert_eq!(v, Value::Bool(false));
        // Ordering across blocks is UB.
        let e = m
            .execute_action(
                "cmpPtr",
                Value::List(vec![Value::str("lt"), ptr_value(b1, 0), ptr_value(b2, 0)]),
            )
            .unwrap_err();
        assert!(e.to_string().contains("ub-pointer-comparison"), "{e}");
        // Ordering within one block is fine.
        let v = m
            .execute_action(
                "cmpPtr",
                Value::List(vec![Value::str("lt"), ptr_value(b1, 0), ptr_value(b1, 4)]),
            )
            .unwrap();
        assert_eq!(v, Value::Bool(true));
        // Ordering of freed pointers is UB (the Collections-C test bug).
        m.execute_action("free", Value::List(vec![Value::Sym(b1), Value::Int(0)]))
            .unwrap();
        let e = m
            .execute_action(
                "cmpPtr",
                Value::List(vec![Value::str("le"), ptr_value(b1, 0), ptr_value(b1, 4)]),
            )
            .unwrap_err();
        assert!(e.to_string().contains("invalid pointers"), "{e}");
    }

    #[test]
    fn symbolic_load_with_symbolic_offset_branches() {
        let solver = Solver::optimized();
        let mut pc = PathCondition::new();
        let mut m = CSymMemory::default();
        let b = blk(0);
        m.register_block(b, 16);
        m.set_run(b, 0, Expr::int(10), 8);
        m.set_run(b, 8, Expr::int(20), 8);
        let off = Expr::lvar(LVar(0));
        pc.push(
            off.clone()
                .type_of()
                .eq(Expr::type_tag(gillian_gil::TypeTag::Int)),
        );
        let chunk = Chunk::int(8).to_expr();
        let branches = m.execute_action(
            "load",
            &Expr::list([chunk, Expr::Val(Value::Sym(b)), off]),
            &pc,
            &solver,
        );
        // out-of-bounds error, two hits, uninitialized-gap error.
        let oks: Vec<_> = branches.iter().filter(|br| br.outcome.is_ok()).collect();
        assert_eq!(oks.len(), 2, "{branches:#?}");
        assert!(branches.iter().filter(|br| br.outcome.is_err()).count() >= 2);
    }

    #[test]
    fn symbolic_concrete_offsets_do_not_branch() {
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let mut m = CSymMemory::default();
        let b = blk(0);
        m.register_block(b, 8);
        m.set_run(b, 0, Expr::lvar(LVar(3)), 8);
        let chunk = Chunk::int(8).to_expr();
        let branches = m.execute_action(
            "load",
            &Expr::list([chunk, Expr::Val(Value::Sym(b)), Expr::int(0)]),
            &pc,
            &solver,
        );
        assert_eq!(branches.len(), 1, "{branches:#?}");
        assert_eq!(branches[0].outcome, Ok(Expr::lvar(LVar(3))));
    }

    #[test]
    fn symbolic_out_of_bounds_with_symbolic_index() {
        // The Collections-C off-by-one shape: index i with 0 ≤ i ≤ size is
        // out of bounds exactly at i = size.
        let solver = Solver::optimized();
        let mut pc = PathCondition::new();
        let mut m = CSymMemory::default();
        let b = blk(0);
        m.register_block(b, 8);
        m.set_run(b, 0, Expr::int(5), 8);
        let i = Expr::lvar(LVar(0));
        pc.push(Expr::int(0).le(i.clone()));
        pc.push(i.clone().le(Expr::int(1)));
        let chunk = Chunk::int(8).to_expr();
        let off = i.mul(Expr::int(8));
        let branches = m.execute_action(
            "load",
            &Expr::list([chunk, Expr::Val(Value::Sym(b)), off]),
            &pc,
            &solver,
        );
        let errs: Vec<String> = branches
            .iter()
            .filter_map(|br| br.outcome.as_ref().err().map(|e| e.to_string()))
            .collect();
        assert!(
            errs.iter().any(|e| e.contains("out-of-bounds")),
            "i = 1 must be a feasible overflow: {branches:#?}"
        );
        assert!(branches.iter().any(|br| br.outcome.is_ok()));
    }

    #[test]
    fn symbolic_alloc_of_symbolic_size_is_rejected() {
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let m = CSymMemory::default();
        let branches = m.execute_action(
            "alloc",
            &Expr::list([Expr::Val(Value::Sym(blk(0))), Expr::lvar(LVar(0))]),
            &pc,
            &solver,
        );
        assert_eq!(branches.len(), 1);
        assert!(branches[0].outcome.is_err());
    }
}
