//! MiniC value conventions on top of GIL.
//!
//! - C integers are GIL `Int`s (arithmetic is 64-bit; truncation to the
//!   declared width happens at stores and casts via the wrap operators);
//! - C doubles are GIL `Num`s;
//! - pointers are two-element GIL lists `[block, offset]` with the block an
//!   uninterpreted symbol and the offset an integer (the paper's
//!   block-offset pairs, §4.2);
//! - `NULL` is the pointer `[ς_null, 0]` into a reserved block that is
//!   never allocated, so dereferencing it is an invalid-block error;
//! - the *poison* symbol marks uninitialized bytes travelling through
//!   `loadBytes`/`storeBytes` (CompCert's `Vundef` at byte granularity).

use gillian_gil::{Expr, Sym, Value};

/// The reserved block symbol of the null pointer.
pub const NULL_BLOCK: Sym = Sym(3);
/// The poison marker for uninitialized bytes.
pub const POISON: Sym = Sym(4);

/// `NULL` as a GIL value.
pub fn null_ptr_value() -> Value {
    Value::List(vec![Value::Sym(NULL_BLOCK), Value::Int(0)])
}

/// `NULL` as a GIL expression.
pub fn null_ptr_expr() -> Expr {
    Expr::Val(null_ptr_value())
}

/// Builds a concrete pointer value.
pub fn ptr_value(block: Sym, offset: i64) -> Value {
    Value::List(vec![Value::Sym(block), Value::Int(offset)])
}

/// Builds a pointer expression from block and offset expressions.
pub fn ptr_expr(block: Expr, offset: Expr) -> Expr {
    Expr::list([block, offset])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_symbols_are_below_fresh() {
        const { assert!(NULL_BLOCK.0 < Sym::FIRST_FRESH) };
        const { assert!(POISON.0 < Sym::FIRST_FRESH) };
        assert_ne!(NULL_BLOCK, POISON);
    }

    #[test]
    fn null_is_a_block_offset_pair() {
        let v = null_ptr_value();
        let items = v.as_list().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0], Value::Sym(NULL_BLOCK));
        assert_eq!(items[1], Value::Int(0));
    }
}
