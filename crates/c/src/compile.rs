//! The MiniC→GIL compiler.
//!
//! Mirrors the Gillian-C pipeline (paper §4.2): control flow compiles
//! trivially to GIL gotos and memory management is restated in terms of
//! the identified actions of the C memory model. The compiler is *typed*:
//! expression types drive pointer-arithmetic scaling, chunk selection for
//! loads/stores, and struct field offsets — the information CompCert's
//! C#minor still carries.
//!
//! Integer arithmetic happens at 64 bits; narrowing to the declared width
//! happens at casts and stores (via the wrap operators), so two's-
//! complement behaviour at each width is preserved where it is observable.

use crate::ast::{CBinOp, CExpr, CFunc, CModule, CStmt, CUnOp, LValue};
use crate::types::{CType, Layout};
use crate::values::null_ptr_expr;
use gillian_gil::{BinOp, Cmd, Expr, Proc, Prog, TypeTag, UnOp};
use std::collections::BTreeMap;
use std::fmt;

/// A MiniC compilation (typing) error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "minic compile error: {}", self.0)
    }
}
impl std::error::Error for CompileError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError(msg.into()))
}

/// Compiles a MiniC translation unit to a GIL program.
///
/// # Errors
///
/// Returns [`CompileError`] on type errors, unknown functions/fields, and
/// uses of unsupported constructs.
pub fn compile_unit(module: &CModule) -> Result<Prog, CompileError> {
    let layout = Layout::new(module.structs.iter().cloned()).map_err(|e| CompileError(e.0))?;
    let mut sigs: BTreeMap<String, (CType, Vec<CType>)> = BTreeMap::new();
    for f in &module.funcs {
        let params = f.params.iter().map(|(t, _)| t.clone()).collect();
        if sigs
            .insert(f.name.clone(), (f.ret.clone(), params))
            .is_some()
        {
            return err(format!("duplicate function {}", f.name));
        }
    }
    let mut prog = Prog::new();
    for f in &module.funcs {
        prog.add(compile_func(f, &layout, &sigs)?);
    }
    Ok(prog)
}

struct LoopFrame {
    break_holes: Vec<usize>,
    continue_holes: Vec<usize>,
}

struct Ctx<'a> {
    cmds: Vec<Cmd>,
    tmp: usize,
    layout: &'a Layout,
    sigs: &'a BTreeMap<String, (CType, Vec<CType>)>,
    locals: BTreeMap<String, CType>,
    loops: Vec<LoopFrame>,
    ret: CType,
}

impl<'a> Ctx<'a> {
    fn temp(&mut self) -> String {
        self.tmp += 1;
        format!("__t{}", self.tmp)
    }

    fn here(&self) -> usize {
        self.cmds.len()
    }

    fn emit(&mut self, c: Cmd) -> usize {
        self.cmds.push(c);
        self.cmds.len() - 1
    }

    fn emit_hole(&mut self) -> usize {
        self.emit(Cmd::Skip)
    }

    fn patch_goto(&mut self, at: usize, target: usize) {
        self.cmds[at] = Cmd::Goto(target);
    }

    /// Materialises a boolean guard into an `Int` 0/1 temp.
    fn bool_to_int(&mut self, guard: Expr) -> Expr {
        let t = self.temp();
        let at = self.here();
        self.emit(Cmd::IfGoto(guard, at + 3));
        self.emit(Cmd::assign(&t, Expr::int(0)));
        self.emit(Cmd::Goto(at + 4));
        self.emit(Cmd::assign(&t, Expr::int(1)));
        Expr::pvar(t)
    }

    fn size_of(&self, t: &CType) -> Result<i64, CompileError> {
        self.layout.size_of(t).map_err(|e| CompileError(e.0))
    }

    fn chunk_expr(&self, t: &CType) -> Result<Expr, CompileError> {
        Ok(self
            .layout
            .chunk_of(t)
            .map_err(|e| CompileError(e.0))?
            .to_expr())
    }
}

fn int_width(t: &CType) -> Option<u8> {
    match t {
        CType::Char => Some(8),
        CType::Short => Some(16),
        CType::Int => Some(32),
        CType::Long => Some(64),
        _ => None,
    }
}

fn ptr_block(p: Expr) -> Expr {
    p.lst_nth(Expr::int(0))
}

fn ptr_off(p: Expr) -> Expr {
    p.lst_nth(Expr::int(1))
}

fn make_ptr(block: Expr, off: Expr) -> Expr {
    Expr::list([block, off])
}

/// Implicit conversion of `v : from` to type `to`.
fn convert(v: Expr, from: &CType, to: &CType) -> Result<Expr, CompileError> {
    if from == to {
        return Ok(v);
    }
    match (from, to) {
        (f, t) if f.is_integer() && t.is_integer() => {
            let w = int_width(t).expect("integer width");
            Ok(if w < 64 { v.un(UnOp::WrapSigned(w)) } else { v })
        }
        (f, CType::Double) if f.is_integer() => Ok(v.un(UnOp::IntToNum)),
        (CType::Double, t) if t.is_integer() => {
            let w = int_width(t).expect("integer width");
            let trunc = v.un(UnOp::NumToInt);
            Ok(if w < 64 {
                trunc.un(UnOp::WrapSigned(w))
            } else {
                trunc
            })
        }
        (CType::Ptr(a), CType::Ptr(b)) if **a == CType::Void || **b == CType::Void => Ok(v),
        _ => err(format!("cannot convert {from} to {to}")),
    }
}

fn compile_func(
    f: &CFunc,
    layout: &Layout,
    sigs: &BTreeMap<String, (CType, Vec<CType>)>,
) -> Result<Proc, CompileError> {
    let mut ctx = Ctx {
        cmds: Vec::new(),
        tmp: 0,
        layout,
        sigs,
        locals: f
            .params
            .iter()
            .map(|(t, n)| (n.clone(), t.clone()))
            .collect(),
        loops: Vec::new(),
        ret: f.ret.clone(),
    };
    compile_stmts(&f.body, &mut ctx)?;
    ctx.emit(Cmd::Return(Expr::int(0)));
    Ok(Proc::new(
        f.name.as_str(),
        f.params.iter().map(|(_, n)| n.as_str()),
        ctx.cmds,
    ))
}

fn compile_stmts(stmts: &[CStmt], ctx: &mut Ctx<'_>) -> Result<(), CompileError> {
    for s in stmts {
        compile_stmt(s, ctx)?;
    }
    Ok(())
}

fn compile_stmt(s: &CStmt, ctx: &mut Ctx<'_>) -> Result<(), CompileError> {
    match s {
        CStmt::Decl(t, x, init) => {
            ctx.locals.insert(x.clone(), t.clone());
            if let Some(e) = init {
                let (v, vt) = compile_expr(e, ctx)?;
                let v = convert(v, &vt, t)?;
                ctx.emit(Cmd::assign(x, v));
            }
            // An uninitialized local stays unbound: reading it is an error
            // (C UB: use of an uninitialized variable).
            Ok(())
        }
        CStmt::Assign(lv, e) => match lv {
            LValue::Var(x) => {
                let t = ctx
                    .locals
                    .get(x)
                    .cloned()
                    .ok_or_else(|| CompileError(format!("assignment to undeclared {x}")))?;
                let (v, vt) = compile_expr(e, ctx)?;
                let v = convert(v, &vt, &t)?;
                ctx.emit(Cmd::assign(x, v));
                Ok(())
            }
            LValue::Deref(p) => store_through(ctx, p, None, None, e),
            LValue::Index(p, i) => store_through(ctx, p, Some(i), None, e),
            LValue::Arrow(p, f) => store_through(ctx, p, None, Some(f), e),
        },
        CStmt::ExprStmt(e) => {
            compile_expr(e, ctx)?;
            Ok(())
        }
        CStmt::If {
            cond,
            then,
            otherwise,
        } => {
            let guard = compile_cond(cond, ctx)?;
            let guard_at = ctx.emit_hole();
            compile_stmts(otherwise, ctx)?;
            let skip_then = ctx.emit_hole();
            let then_at = ctx.here();
            compile_stmts(then, ctx)?;
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(guard, then_at);
            ctx.patch_goto(skip_then, end);
            Ok(())
        }
        CStmt::While { cond, body } => {
            let loop_at = ctx.here();
            let guard = compile_cond(cond, ctx)?;
            let guard_at = ctx.emit_hole();
            let exit = ctx.emit_hole();
            let body_at = ctx.here();
            ctx.loops.push(LoopFrame {
                break_holes: Vec::new(),
                continue_holes: Vec::new(),
            });
            compile_stmts(body, ctx)?;
            ctx.emit(Cmd::Goto(loop_at));
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(guard, body_at);
            ctx.patch_goto(exit, end);
            let frame = ctx.loops.pop().expect("loop frame");
            for h in frame.break_holes {
                ctx.patch_goto(h, end);
            }
            for h in frame.continue_holes {
                ctx.patch_goto(h, loop_at);
            }
            Ok(())
        }
        CStmt::For {
            init,
            cond,
            step,
            body,
        } => {
            compile_stmt(init, ctx)?;
            let loop_at = ctx.here();
            let guard = compile_cond(cond, ctx)?;
            let guard_at = ctx.emit_hole();
            let exit = ctx.emit_hole();
            let body_at = ctx.here();
            ctx.loops.push(LoopFrame {
                break_holes: Vec::new(),
                continue_holes: Vec::new(),
            });
            compile_stmts(body, ctx)?;
            let frame = ctx.loops.pop().expect("loop frame");
            let cont_at = ctx.here();
            compile_stmt(step, ctx)?;
            ctx.emit(Cmd::Goto(loop_at));
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(guard, body_at);
            ctx.patch_goto(exit, end);
            for h in frame.break_holes {
                ctx.patch_goto(h, end);
            }
            for h in frame.continue_holes {
                ctx.patch_goto(h, cont_at);
            }
            Ok(())
        }
        CStmt::Break => {
            let hole = ctx.emit_hole();
            match ctx.loops.last_mut() {
                Some(f) => f.break_holes.push(hole),
                None => return err("break outside a loop"),
            }
            Ok(())
        }
        CStmt::Continue => {
            let hole = ctx.emit_hole();
            match ctx.loops.last_mut() {
                Some(f) => f.continue_holes.push(hole),
                None => return err("continue outside a loop"),
            }
            Ok(())
        }
        CStmt::Return(e) => {
            let value = match e {
                Some(e) => {
                    let (v, vt) = compile_expr(e, ctx)?;
                    let ret = ctx.ret.clone();
                    convert(v, &vt, &ret)?
                }
                None => Expr::int(0),
            };
            ctx.emit(Cmd::Return(value));
            Ok(())
        }
        CStmt::Assume(e) => {
            let guard = compile_cond(e, ctx)?;
            let at = ctx.here();
            ctx.emit(Cmd::IfGoto(guard, at + 2));
            ctx.emit(Cmd::Vanish);
            Ok(())
        }
        CStmt::Assert(e) => {
            let guard = compile_cond(e, ctx)?;
            let at = ctx.here();
            ctx.emit(Cmd::IfGoto(guard, at + 2));
            ctx.emit(Cmd::Fail(Expr::list([
                Expr::str("assertion failure"),
                Expr::str(format!("{e:?}")),
            ])));
            Ok(())
        }
    }
}

/// Resolves an lvalue address: `(block, offset, element type)`.
fn lvalue_addr(
    ctx: &mut Ctx<'_>,
    base: &CExpr,
    index: Option<&CExpr>,
    field: Option<&str>,
) -> Result<(Expr, Expr, CType), CompileError> {
    let (p, pt) = compile_expr(base, ctx)?;
    let CType::Ptr(pointee) = pt else {
        return err(format!("dereference of non-pointer {pt}"));
    };
    let block = ptr_block(p.clone());
    let off = ptr_off(p);
    match (index, field) {
        (None, None) => Ok((block, off, *pointee)),
        (Some(i), None) => {
            let (iv, it) = compile_expr(i, ctx)?;
            if !it.is_integer() {
                return err(format!("index of type {it}"));
            }
            let size = ctx.size_of(&pointee)?;
            Ok((block, off.add(iv.mul(Expr::int(size))), *pointee))
        }
        (None, Some(f)) => {
            let CType::Struct(sname) = *pointee else {
                return err(format!("-> on non-struct pointer {pointee}"));
            };
            let (foff, ft) = ctx.layout.field(&sname, f).map_err(|e| CompileError(e.0))?;
            Ok((block, off.add(Expr::int(foff)), ft))
        }
        _ => unreachable!("index and field are exclusive"),
    }
}

/// Compiles `*p = e`, `p[i] = e`, `p->f = e`.
fn store_through(
    ctx: &mut Ctx<'_>,
    base: &CExpr,
    index: Option<&CExpr>,
    field: Option<&str>,
    value: &CExpr,
) -> Result<(), CompileError> {
    let (block, off, elem) = lvalue_addr(ctx, base, index, field)?;
    let (v, vt) = compile_expr(value, ctx)?;
    let v = convert(v, &vt, &elem)?;
    let chunk = ctx.chunk_expr(&elem)?;
    ctx.emit(Cmd::action(
        "_",
        "store",
        Expr::list([chunk, block, off, v]),
    ));
    Ok(())
}

/// Compiles a load through an lvalue address.
fn load_from(
    ctx: &mut Ctx<'_>,
    base: &CExpr,
    index: Option<&CExpr>,
    field: Option<&str>,
) -> Result<(Expr, CType), CompileError> {
    let (block, off, elem) = lvalue_addr(ctx, base, index, field)?;
    let chunk = ctx.chunk_expr(&elem)?;
    let t = ctx.temp();
    ctx.emit(Cmd::action(&t, "load", Expr::list([chunk, block, off])));
    Ok((Expr::pvar(t), elem))
}

/// Compiles an expression to a value and its type.
fn compile_expr(e: &CExpr, ctx: &mut Ctx<'_>) -> Result<(Expr, CType), CompileError> {
    match e {
        CExpr::Int(n) => Ok((Expr::int(*n), CType::Long)),
        CExpr::Float(x) => Ok((Expr::num(*x), CType::Double)),
        CExpr::Null => Ok((null_ptr_expr(), CType::Void.ptr_to())),
        CExpr::SizeOf(t) => Ok((Expr::int(ctx.size_of(t)?), CType::Long)),
        CExpr::Var(x) => match ctx.locals.get(x) {
            Some(t) => Ok((Expr::pvar(x), t.clone())),
            None => err(format!("undeclared variable {x}")),
        },
        CExpr::Un(op, inner) => match op {
            CUnOp::Neg => {
                let (v, t) = compile_expr(inner, ctx)?;
                if t.is_integer() || t == CType::Double {
                    Ok((v.un(UnOp::Neg), t))
                } else {
                    err(format!("negation of {t}"))
                }
            }
            CUnOp::Not => {
                let guard = compile_cond(inner, ctx)?;
                Ok((ctx.bool_to_int(guard.not()), CType::Int))
            }
            CUnOp::BitNot => {
                let (v, t) = compile_expr(inner, ctx)?;
                if t.is_integer() {
                    Ok((v.un(UnOp::BitNot), CType::Long))
                } else {
                    err(format!("~ of {t}"))
                }
            }
        },
        CExpr::Bin(op, a, b) => compile_bin(*op, a, b, ctx),
        CExpr::Deref(p) => load_from(ctx, p, None, None),
        CExpr::Index(p, i) => load_from(ctx, p, Some(i), None),
        CExpr::Arrow(p, f) => load_from(ctx, p, None, Some(f)),
        CExpr::Call(name, args) => compile_call(name, args, ctx),
        CExpr::Cast(to, inner) => {
            let (v, from) = compile_expr(inner, ctx)?;
            match (&from, to) {
                // Pointer-to-pointer casts retype without conversion.
                (CType::Ptr(_), CType::Ptr(_)) => Ok((v, to.clone())),
                _ => Ok((convert(v, &from, to)?, to.clone())),
            }
        }
    }
}

fn compile_bin(
    op: CBinOp,
    a: &CExpr,
    b: &CExpr,
    ctx: &mut Ctx<'_>,
) -> Result<(Expr, CType), CompileError> {
    match op {
        CBinOp::And | CBinOp::Or => {
            let guard = compile_cond(
                &CExpr::Bin(op, Box::new(a.clone()), Box::new(b.clone())),
                ctx,
            )?;
            return Ok((ctx.bool_to_int(guard), CType::Int));
        }
        CBinOp::Eq | CBinOp::Ne | CBinOp::Lt | CBinOp::Le | CBinOp::Gt | CBinOp::Ge => {
            let guard = compile_cmp(op, a, b, ctx)?;
            return Ok((ctx.bool_to_int(guard), CType::Int));
        }
        _ => {}
    }
    let (va, ta) = compile_expr(a, ctx)?;
    let (vb, tb) = compile_expr(b, ctx)?;
    // Pointer arithmetic.
    if let CBinOp::Add | CBinOp::Sub = op {
        match (&ta, &tb) {
            (CType::Ptr(elem), t) if t.is_integer() => {
                let size = ctx.size_of(elem)?;
                let delta = vb.mul(Expr::int(size));
                let off = ptr_off(va.clone());
                let new_off = if op == CBinOp::Add {
                    off.add(delta)
                } else {
                    off.sub(delta)
                };
                return Ok((make_ptr(ptr_block(va), new_off), ta.clone()));
            }
            (t, CType::Ptr(elem)) if t.is_integer() && op == CBinOp::Add => {
                let size = ctx.size_of(elem)?;
                let off = ptr_off(vb.clone()).add(va.mul(Expr::int(size)));
                return Ok((make_ptr(ptr_block(vb), off), tb.clone()));
            }
            (CType::Ptr(e1), CType::Ptr(e2)) if op == CBinOp::Sub => {
                if e1 != e2 {
                    return err(format!("pointer difference of {ta} and {tb}"));
                }
                let size = ctx.size_of(e1)?;
                // Pointer difference across blocks is UB.
                let at = ctx.here();
                ctx.emit(Cmd::IfGoto(
                    ptr_block(va.clone()).eq(ptr_block(vb.clone())),
                    at + 2,
                ));
                ctx.emit(Cmd::Fail(Expr::list([
                    Expr::str("UB"),
                    Expr::str("ub-pointer-difference"),
                    Expr::str("pointers into different blocks"),
                ])));
                let diff = ptr_off(va).sub(ptr_off(vb)).div(Expr::int(size));
                return Ok((diff, CType::Long));
            }
            _ => {}
        }
    }
    // Numeric operators.
    let gop = match op {
        CBinOp::Add => BinOp::Add,
        CBinOp::Sub => BinOp::Sub,
        CBinOp::Mul => BinOp::Mul,
        CBinOp::Div => BinOp::Div,
        CBinOp::Mod => BinOp::Mod,
        CBinOp::BitAnd => BinOp::BitAnd,
        CBinOp::BitOr => BinOp::BitOr,
        CBinOp::BitXor => BinOp::BitXor,
        CBinOp::Shl => BinOp::Shl,
        CBinOp::Shr => BinOp::ShrA,
        _ => unreachable!("handled above"),
    };
    match (&ta, &tb) {
        (x, y) if x.is_integer() && y.is_integer() => {
            // Integer division/modulo by zero is UB: emit the explicit
            // guard so the symbolic execution explores the trapping branch
            // (a residual `a / b` expression would not).
            if matches!(op, CBinOp::Div | CBinOp::Mod) {
                let at = ctx.here();
                ctx.emit(Cmd::IfGoto(vb.clone().ne(Expr::int(0)), at + 2));
                ctx.emit(Cmd::Fail(Expr::list([
                    Expr::str("UB"),
                    Expr::str("division-by-zero"),
                    Expr::str(format!("{op:?} with zero divisor")),
                ])));
            }
            Ok((va.bin(gop, vb), CType::Long))
        }
        (CType::Double, CType::Double) => Ok((va.bin(gop, vb), CType::Double)),
        (x, CType::Double) if x.is_integer() => {
            Ok((va.un(UnOp::IntToNum).bin(gop, vb), CType::Double))
        }
        (CType::Double, y) if y.is_integer() => {
            Ok((va.bin(gop, vb.un(UnOp::IntToNum)), CType::Double))
        }
        _ => err(format!("operator {op:?} on {ta} and {tb}")),
    }
}

/// Compiles a comparison to a GIL boolean guard.
fn compile_cmp(op: CBinOp, a: &CExpr, b: &CExpr, ctx: &mut Ctx<'_>) -> Result<Expr, CompileError> {
    let (va, ta) = compile_expr(a, ctx)?;
    let (vb, tb) = compile_expr(b, ctx)?;
    let both_ptr = ta.is_pointer() && tb.is_pointer();
    if both_ptr {
        match op {
            // Pointer equality is defined across blocks: structural.
            CBinOp::Eq => return Ok(va.eq(vb)),
            CBinOp::Ne => return Ok(va.ne(vb)),
            // Ordering goes through the cmpPtr action (UB detection).
            _ => {
                let (cmp_op, x, y) = match op {
                    CBinOp::Lt => ("lt", va, vb),
                    CBinOp::Le => ("le", va, vb),
                    CBinOp::Gt => ("lt", vb, va),
                    CBinOp::Ge => ("le", vb, va),
                    _ => unreachable!(),
                };
                let t = ctx.temp();
                ctx.emit(Cmd::action(
                    &t,
                    "cmpPtr",
                    Expr::list([Expr::str(cmp_op), x, y]),
                ));
                return Ok(Expr::pvar(t));
            }
        }
    }
    // Promote mixed int/double comparisons.
    let (va, vb) = match (&ta, &tb) {
        (x, CType::Double) if x.is_integer() => (va.un(UnOp::IntToNum), vb),
        (CType::Double, y) if y.is_integer() => (va, vb.un(UnOp::IntToNum)),
        _ => (va, vb),
    };
    Ok(match op {
        CBinOp::Eq => va.eq(vb),
        CBinOp::Ne => va.ne(vb),
        CBinOp::Lt => va.lt(vb),
        CBinOp::Le => va.le(vb),
        CBinOp::Gt => va.gt(vb),
        CBinOp::Ge => va.ge(vb),
        _ => unreachable!(),
    })
}

/// Compiles an expression in condition position to a GIL boolean guard
/// (C truthiness), short-circuiting `&&`/`||`.
fn compile_cond(e: &CExpr, ctx: &mut Ctx<'_>) -> Result<Expr, CompileError> {
    match e {
        CExpr::Bin(
            op @ (CBinOp::Eq | CBinOp::Ne | CBinOp::Lt | CBinOp::Le | CBinOp::Gt | CBinOp::Ge),
            a,
            b,
        ) => compile_cmp(*op, a, b, ctx),
        CExpr::Bin(CBinOp::And, a, b) => {
            // t := false; if a { t := b-cond }
            let t = ctx.temp();
            ctx.emit(Cmd::assign(&t, Expr::ff()));
            let ga = compile_cond(a, ctx)?;
            let guard_at = ctx.emit_hole();
            let skip = ctx.emit_hole();
            let rhs_at = ctx.here();
            let gb = compile_cond(b, ctx)?;
            ctx.emit(Cmd::assign(&t, gb));
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(ga, rhs_at);
            ctx.patch_goto(skip, end);
            Ok(Expr::pvar(t))
        }
        CExpr::Bin(CBinOp::Or, a, b) => {
            // t := true; if !a { t := b-cond }  (encoded with two gotos)
            let t = ctx.temp();
            ctx.emit(Cmd::assign(&t, Expr::tt()));
            let ga = compile_cond(a, ctx)?;
            let guard_at = ctx.emit_hole(); // if a goto end
            let gb = compile_cond(b, ctx)?;
            ctx.emit(Cmd::assign(&t, gb));
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(ga, end);
            Ok(Expr::pvar(t))
        }
        CExpr::Un(CUnOp::Not, inner) => Ok(compile_cond(inner, ctx)?.not()),
        other => {
            let (v, t) = compile_expr(other, ctx)?;
            if t.is_integer() {
                Ok(v.ne(Expr::int(0)))
            } else if t == CType::Double {
                Ok(v.ne(Expr::num(0.0)))
            } else if t.is_pointer() {
                Ok(v.ne(null_ptr_expr()))
            } else {
                err(format!("condition of type {t}"))
            }
        }
    }
}

fn compile_call(
    name: &str,
    args: &[CExpr],
    ctx: &mut Ctx<'_>,
) -> Result<(Expr, CType), CompileError> {
    match name {
        "malloc" => {
            let [size] = args else {
                return err("malloc takes one argument");
            };
            let (sv, st) = compile_expr(size, ctx)?;
            if !st.is_integer() {
                return err("malloc size must be an integer");
            }
            let b = ctx.temp();
            let site = ctx.here() as u32;
            ctx.emit(Cmd::usym(&b, site));
            ctx.emit(Cmd::action("_", "alloc", Expr::list([Expr::pvar(&b), sv])));
            Ok((make_ptr(Expr::pvar(b), Expr::int(0)), CType::Void.ptr_to()))
        }
        "free" => {
            let [p] = args else {
                return err("free takes one argument");
            };
            let (pv, pt) = compile_expr(p, ctx)?;
            if !pt.is_pointer() {
                return err("free needs a pointer");
            }
            ctx.emit(Cmd::action(
                "_",
                "free",
                Expr::list([ptr_block(pv.clone()), ptr_off(pv)]),
            ));
            Ok((Expr::int(0), CType::Void))
        }
        "memcpy" => {
            let [dst, src, n] = args else {
                return err("memcpy takes three arguments");
            };
            let (dv, dt) = compile_expr(dst, ctx)?;
            let (sv, st) = compile_expr(src, ctx)?;
            let (nv, nt) = compile_expr(n, ctx)?;
            if !dt.is_pointer() || !st.is_pointer() || !nt.is_integer() {
                return err("memcpy(dst*, src*, n)");
            }
            let bytes = ctx.temp();
            ctx.emit(Cmd::action(
                &bytes,
                "loadBytes",
                Expr::list([ptr_block(sv.clone()), ptr_off(sv), nv]),
            ));
            ctx.emit(Cmd::action(
                "_",
                "storeBytes",
                Expr::list([
                    ptr_block(dv.clone()),
                    ptr_off(dv.clone()),
                    Expr::pvar(&bytes),
                ]),
            ));
            Ok((dv, dt))
        }
        "block_size" => {
            // Introspection builtin for tests: the allocated size of the
            // block a pointer points into (the `sizeBlock` action).
            let [p] = args else {
                return err("block_size takes one argument");
            };
            let (pv, pt) = compile_expr(p, ctx)?;
            if !pt.is_pointer() {
                return err("block_size needs a pointer");
            }
            let t = ctx.temp();
            ctx.emit(Cmd::action(&t, "sizeBlock", ptr_block(pv)));
            Ok((Expr::pvar(t), CType::Long))
        }
        "symb_int" | "symb_long" | "symb_char" | "symb_short" | "symb_double" => {
            if !args.is_empty() {
                return err(format!("{name} takes no arguments"));
            }
            let t = ctx.temp();
            let site = ctx.here() as u32;
            ctx.emit(Cmd::isym(&t, site));
            let (tag, ctype, bounds) = match name {
                "symb_double" => (TypeTag::Num, CType::Double, None),
                "symb_char" => (TypeTag::Int, CType::Char, Some((-128i64, 127i64))),
                "symb_short" => (TypeTag::Int, CType::Short, Some((-32768, 32767))),
                "symb_int" => (
                    TypeTag::Int,
                    CType::Int,
                    Some((i32::MIN as i64, i32::MAX as i64)),
                ),
                _ => (TypeTag::Int, CType::Long, None),
            };
            let at = ctx.here();
            ctx.emit(Cmd::IfGoto(Expr::pvar(&t).has_type(tag), at + 2));
            ctx.emit(Cmd::Vanish);
            if let Some((lo, hi)) = bounds {
                let at = ctx.here();
                ctx.emit(Cmd::IfGoto(
                    Expr::int(lo)
                        .le(Expr::pvar(&t))
                        .and(Expr::pvar(&t).le(Expr::int(hi))),
                    at + 2,
                ));
                ctx.emit(Cmd::Vanish);
            }
            Ok((Expr::pvar(t), ctype))
        }
        _ => {
            let Some((ret, param_types)) = ctx.sigs.get(name).cloned() else {
                return err(format!("unknown function {name}"));
            };
            if param_types.len() != args.len() {
                return err(format!(
                    "{name} expects {} arguments, got {}",
                    param_types.len(),
                    args.len()
                ));
            }
            let mut compiled = Vec::with_capacity(args.len());
            for (arg, pt) in args.iter().zip(&param_types) {
                let (v, vt) = compile_expr(arg, ctx)?;
                compiled.push(convert(v, &vt, pt)?);
            }
            let t = ctx.temp();
            ctx.emit(Cmd::call_static(&t, name, compiled));
            Ok((Expr::pvar(t), ret))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn compile(src: &str) -> Result<Prog, CompileError> {
        compile_unit(&parse_unit(src).unwrap())
    }

    #[test]
    fn compiles_malloc_store_load() {
        let p = compile(
            r#"
            long f() {
                long *p = malloc(8);
                *p = 42;
                return *p;
            }
        "#,
        )
        .unwrap();
        let f = p.proc("f").unwrap();
        assert!(f.body.iter().any(|c| matches!(c, Cmd::USym { .. })));
        let actions: Vec<&str> = f
            .body
            .iter()
            .filter_map(|c| match c {
                Cmd::Action { name, .. } => Some(name.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(actions, vec!["alloc", "store", "load"]);
    }

    #[test]
    fn field_offsets_are_computed() {
        let p = compile(
            r#"
            struct Pair { int a; long b; };
            long f(struct Pair *p) {
                p->b = 7;
                return p->b;
            }
        "#,
        )
        .unwrap();
        let f = p.proc("f").unwrap();
        // The store offset must include the padded field offset 8.
        let store = f
            .body
            .iter()
            .find_map(|c| match c {
                Cmd::Action { name, arg, .. } if name.as_ref() == "store" => Some(arg.to_string()),
                _ => None,
            })
            .unwrap();
        assert!(store.contains("+ 8"), "store arg: {store}");
    }

    #[test]
    fn pointer_indexing_scales() {
        let p = compile(
            r#"
            int f(int *xs, long i) {
                return xs[i];
            }
        "#,
        )
        .unwrap();
        let f = p.proc("f").unwrap();
        let load = f
            .body
            .iter()
            .find_map(|c| match c {
                Cmd::Action { name, arg, .. } if name.as_ref() == "load" => Some(arg.to_string()),
                _ => None,
            })
            .unwrap();
        assert!(load.contains("* 4"), "int elements scale by 4: {load}");
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(compile("long f(long x) { return *x; }").is_err());
        assert!(compile("long f() { return y; }").is_err());
        assert!(compile("long f(struct P *p) { return p->q; }").is_err());
        assert!(compile("long f(double d, long *p) { return d + p; }").is_err());
    }

    #[test]
    fn short_circuit_conditions_compile() {
        let p = compile(
            r#"
            long f(long *p) {
                if (p != NULL && *p > 0) { return *p; }
                return 0;
            }
        "#,
        )
        .unwrap();
        let f = p.proc("f").unwrap();
        assert!(!f.body.iter().any(|c| matches!(c, Cmd::Skip)), "{f}");
    }

    #[test]
    fn casts_wrap() {
        let p = compile("long f(long x) { return (char)x; }").unwrap();
        let f = p.proc("f").unwrap();
        let has_wrap = f
            .body
            .iter()
            .any(|c| matches!(c, Cmd::Return(e) if e.to_string().contains("wrap_s8")));
        assert!(has_wrap, "{f}");
    }
}
