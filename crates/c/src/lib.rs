#![warn(missing_docs)]

//! # Gillian-C (MiniC): the CompCert-memory instantiation
//!
//! Reproduces the Gillian-C instantiation of paper §4.2 with **MiniC**, a
//! C-like guest language over a CompCert-style memory (see `DESIGN.md` §2
//! for the substitution rationale):
//!
//! - [`mem`] — the C memory model: separated blocks, block-offset
//!   pointers, byte-granular memory values `[v, k, n]`, permissions,
//!   chunked load/store, and undefined-behaviour detection;
//! - [`chunks`] — memory chunks (size/kind/signedness of accesses);
//! - [`types`] — MiniC types and LP64 struct layout;
//! - [`ast`]/[`parser`]/[`compile`] — the typed MiniC front end
//!   (pointer-arithmetic scaling, field offsets, chunk selection);
//! - [`interp_fn`] — the memory interpretation function and empirical
//!   MA-RS/MA-RC checks;
//! - [`collections`] — the Collections guest library (10 data structures)
//!   and its 161-test symbolic suite reproducing Table 2, plus the buggy
//!   variants reproducing the paper's §4.2 bug findings.
//!
//! ## Example
//!
//! ```
//! use gillian_c::symbolic_test;
//!
//! let outcome = symbolic_test(r#"
//!     long main() {
//!         long x = symb_long();
//!         assume(x > 0);
//!         long *cell = malloc(8);
//!         *cell = x;
//!         assert(*cell > 0);
//!         free(cell);
//!         return 0;
//!     }
//! "#).unwrap();
//! assert!(outcome.verified());
//! ```

pub mod ast;
pub mod chunks;
pub mod collections;
pub mod compile;
pub mod interp_fn;
pub mod mem;
pub mod parser;
pub mod types;
pub mod values;

use gillian_core::explore::ExploreConfig;
use gillian_core::testing::{run_test_with_replay, SymTestOutcome};
use gillian_solver::Solver;
use std::sync::Arc;

pub use compile::compile_unit;
pub use interp_fn::CInterpretation;
pub use mem::{CConcMemory, CSymMemory};
pub use parser::parse_unit;

/// Parses, compiles and symbolically tests a MiniC program's `main`
/// function with the optimized solver, replaying any bugs concretely.
///
/// # Errors
///
/// Returns a parse or compile error description for malformed source.
pub fn symbolic_test(source: &str) -> Result<SymTestOutcome<CSymMemory>, String> {
    symbolic_test_entry(source, "main")
}

/// As [`symbolic_test`], from an arbitrary entry function.
///
/// # Errors
///
/// Returns a parse or compile error description for malformed source.
pub fn symbolic_test_entry(
    source: &str,
    entry: &str,
) -> Result<SymTestOutcome<CSymMemory>, String> {
    symbolic_test_with(source, entry, ExploreConfig::default())
}

/// As [`symbolic_test_entry`], with explicit exploration limits — in
/// particular [`ExploreConfig::workers`], which selects the parallel
/// explorer when greater than one, and the resilience knobs
/// [`ExploreConfig::deadline`] (wall-clock budget: over-budget paths come
/// back truncated, with the overrun counted in the result's diagnostics)
/// and [`ExploreConfig::cancel`] (cooperative cancellation from another
/// thread).
///
/// # Errors
///
/// Returns a parse or compile error description for malformed source.
pub fn symbolic_test_with(
    source: &str,
    entry: &str,
    cfg: ExploreConfig,
) -> Result<SymTestOutcome<CSymMemory>, String> {
    let module = parse_unit(source).map_err(|e| e.to_string())?;
    let prog = compile_unit(&module).map_err(|e| e.to_string())?;
    Ok(run_test_with_replay::<CSymMemory, CConcMemory>(
        &prog,
        entry,
        Arc::new(Solver::optimized()),
        cfg,
    ))
}
