//! MiniC types and data layout.
//!
//! Sizes follow an LP64 model: `char` 1, `short` 2, `int` 4, `long` 8,
//! `double` 8, pointers 8. Struct fields are laid out in declaration order
//! with natural-alignment padding. Integer *arithmetic* is performed at 64
//! bits; truncation to the declared width happens at stores and casts
//! (documented deviation from C's promotion rules — see `DESIGN.md`).

use crate::chunks::Chunk;
use std::collections::BTreeMap;
use std::fmt;

/// A MiniC type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CType {
    /// `void` (function returns and opaque pointees only).
    Void,
    /// `char` — 1 byte, signed.
    Char,
    /// `short` — 2 bytes, signed.
    Short,
    /// `int` — 4 bytes, signed.
    Int,
    /// `long` — 8 bytes, signed.
    Long,
    /// `double` — 8 bytes.
    Double,
    /// A pointer.
    Ptr(Box<CType>),
    /// A struct by name.
    Struct(String),
}

impl CType {
    /// True for the integer types.
    pub fn is_integer(&self) -> bool {
        matches!(self, CType::Char | CType::Short | CType::Int | CType::Long)
    }

    /// True for pointer types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Ptr(_))
    }

    /// The pointee type, for pointers.
    pub fn pointee(&self) -> Option<&CType> {
        match self {
            CType::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// A pointer to this type.
    pub fn ptr_to(self) -> CType {
        CType::Ptr(Box::new(self))
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => write!(f, "void"),
            CType::Char => write!(f, "char"),
            CType::Short => write!(f, "short"),
            CType::Int => write!(f, "int"),
            CType::Long => write!(f, "long"),
            CType::Double => write!(f, "double"),
            CType::Ptr(t) => write!(f, "{t}*"),
            CType::Struct(n) => write!(f, "struct {n}"),
        }
    }
}

/// A struct definition.
#[derive(Clone, Debug, PartialEq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, CType)>,
}

/// The layout oracle: struct definitions plus size/offset computation.
#[derive(Clone, Debug, Default)]
pub struct Layout {
    structs: BTreeMap<String, StructDef>,
}

/// A layout or typing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}
impl std::error::Error for TypeError {}

impl Layout {
    /// Creates a layout oracle from struct definitions.
    ///
    /// # Errors
    ///
    /// Fails on duplicate struct names.
    pub fn new(structs: impl IntoIterator<Item = StructDef>) -> Result<Self, TypeError> {
        let mut out = Layout::default();
        for s in structs {
            if out.structs.insert(s.name.clone(), s.clone()).is_some() {
                return Err(TypeError(format!("duplicate struct {}", s.name)));
            }
        }
        Ok(out)
    }

    /// Looks up a struct definition.
    pub fn struct_def(&self, name: &str) -> Result<&StructDef, TypeError> {
        self.structs
            .get(name)
            .ok_or_else(|| TypeError(format!("unknown struct {name}")))
    }

    /// The alignment of a type, in bytes.
    pub fn align_of(&self, t: &CType) -> Result<i64, TypeError> {
        Ok(match t {
            CType::Void => return Err(TypeError("void has no alignment".into())),
            CType::Char => 1,
            CType::Short => 2,
            CType::Int => 4,
            CType::Long | CType::Double | CType::Ptr(_) => 8,
            CType::Struct(name) => {
                let def = self.struct_def(name)?.clone();
                let mut a = 1;
                for (_, ft) in &def.fields {
                    a = a.max(self.align_of(ft)?);
                }
                a
            }
        })
    }

    /// The size of a type, in bytes.
    pub fn size_of(&self, t: &CType) -> Result<i64, TypeError> {
        Ok(match t {
            CType::Void => return Err(TypeError("void has no size".into())),
            CType::Char => 1,
            CType::Short => 2,
            CType::Int => 4,
            CType::Long | CType::Double | CType::Ptr(_) => 8,
            CType::Struct(name) => {
                let def = self.struct_def(name)?.clone();
                let mut off = 0i64;
                let mut align = 1i64;
                for (_, ft) in &def.fields {
                    let fa = self.align_of(ft)?;
                    align = align.max(fa);
                    off = round_up(off, fa) + self.size_of(ft)?;
                }
                round_up(off, align)
            }
        })
    }

    /// The byte offset and type of a struct field.
    pub fn field(&self, struct_name: &str, field: &str) -> Result<(i64, CType), TypeError> {
        let def = self.struct_def(struct_name)?.clone();
        let mut off = 0i64;
        for (fname, ft) in &def.fields {
            let fa = self.align_of(ft)?;
            off = round_up(off, fa);
            if fname == field {
                return Ok((off, ft.clone()));
            }
            off += self.size_of(ft)?;
        }
        Err(TypeError(format!(
            "struct {struct_name} has no field {field}"
        )))
    }

    /// The memory chunk a scalar type loads/stores through.
    pub fn chunk_of(&self, t: &CType) -> Result<Chunk, TypeError> {
        Ok(match t {
            CType::Char => Chunk::int(1),
            CType::Short => Chunk::int(2),
            CType::Int => Chunk::int(4),
            CType::Long => Chunk::int(8),
            CType::Double => Chunk::double(),
            CType::Ptr(_) => Chunk::ptr(),
            other => return Err(TypeError(format!("{other} is not loadable"))),
        })
    }
}

fn round_up(x: i64, align: i64) -> i64 {
    (x + align - 1) / align * align
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout::new([
            StructDef {
                name: "Node".into(),
                fields: vec![
                    ("value".into(), CType::Long),
                    ("next".into(), CType::Struct("Node".into()).ptr_to()),
                ],
            },
            StructDef {
                name: "Mixed".into(),
                fields: vec![
                    ("tag".into(), CType::Char),
                    ("count".into(), CType::Int),
                    ("payload".into(), CType::Long),
                ],
            },
        ])
        .unwrap()
    }

    #[test]
    fn scalar_sizes() {
        let l = layout();
        assert_eq!(l.size_of(&CType::Char).unwrap(), 1);
        assert_eq!(l.size_of(&CType::Int).unwrap(), 4);
        assert_eq!(l.size_of(&CType::Long).unwrap(), 8);
        assert_eq!(l.size_of(&CType::Long.ptr_to()).unwrap(), 8);
    }

    #[test]
    fn struct_layout_pads_to_alignment() {
        let l = layout();
        assert_eq!(l.size_of(&CType::Struct("Node".into())).unwrap(), 16);
        assert_eq!(l.field("Node", "value").unwrap().0, 0);
        assert_eq!(l.field("Node", "next").unwrap().0, 8);
        // char @0, pad, int @4, long @8 → size 16.
        assert_eq!(l.field("Mixed", "tag").unwrap().0, 0);
        assert_eq!(l.field("Mixed", "count").unwrap().0, 4);
        assert_eq!(l.field("Mixed", "payload").unwrap().0, 8);
        assert_eq!(l.size_of(&CType::Struct("Mixed".into())).unwrap(), 16);
    }

    #[test]
    fn unknown_fields_error() {
        let l = layout();
        assert!(l.field("Node", "nope").is_err());
        assert!(l.struct_def("Missing").is_err());
        assert!(l.size_of(&CType::Void).is_err());
    }
}
