//! Memory chunks: the size/kind/signedness descriptors of loads and stores
//! (paper §4.2: "a memory chunk has to be provided to indicate the size,
//! alignment, and type of the value to be read from/written to memory").
//!
//! MiniC does not check alignment (documented limitation; see
//! `DESIGN.md`), so a chunk is `(size, kind, signedness)`, serialised as
//! the GIL list `[size, kind, signed]` in action arguments.

use gillian_gil::{Expr, Value};

/// The kind of value a chunk carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkKind {
    /// Integers of 1, 2, 4 or 8 bytes.
    Int,
    /// IEEE-754 doubles (8 bytes).
    Float,
    /// Pointers (8 bytes).
    Ptr,
}

impl ChunkKind {
    /// The serialised name.
    pub fn name(self) -> &'static str {
        match self {
            ChunkKind::Int => "int",
            ChunkKind::Float => "float",
            ChunkKind::Ptr => "ptr",
        }
    }

    /// Parses a serialised name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "int" => Some(ChunkKind::Int),
            "float" => Some(ChunkKind::Float),
            "ptr" => Some(ChunkKind::Ptr),
            _ => None,
        }
    }
}

/// A memory chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Size in bytes (1, 2, 4, or 8).
    pub size: u8,
    /// The value kind.
    pub kind: ChunkKind,
    /// For integers: sign-extend on load when true.
    pub signed: bool,
}

impl Chunk {
    /// Signed integer chunk of `size` bytes.
    pub fn int(size: u8) -> Chunk {
        Chunk {
            size,
            kind: ChunkKind::Int,
            signed: true,
        }
    }

    /// Unsigned integer chunk of `size` bytes.
    pub fn uint(size: u8) -> Chunk {
        Chunk {
            size,
            kind: ChunkKind::Int,
            signed: false,
        }
    }

    /// The double chunk.
    pub fn double() -> Chunk {
        Chunk {
            size: 8,
            kind: ChunkKind::Float,
            signed: true,
        }
    }

    /// The pointer chunk.
    pub fn ptr() -> Chunk {
        Chunk {
            size: 8,
            kind: ChunkKind::Ptr,
            signed: false,
        }
    }

    /// Serialises as a GIL value `[size, kind, signed]`.
    pub fn to_value(self) -> Value {
        Value::List(vec![
            Value::Int(self.size as i64),
            Value::str(self.kind.name()),
            Value::Bool(self.signed),
        ])
    }

    /// Serialises as a GIL expression.
    pub fn to_expr(self) -> Expr {
        Expr::Val(self.to_value())
    }

    /// Parses the serialised form.
    pub fn from_value(v: &Value) -> Option<Chunk> {
        let items = v.as_list()?;
        if items.len() != 3 {
            return None;
        }
        let size = items[0].as_int()?;
        let kind = ChunkKind::from_name(items[1].as_str()?)?;
        let signed = items[2].as_bool()?;
        if ![1, 2, 4, 8].contains(&size) {
            return None;
        }
        Some(Chunk {
            size: size as u8,
            kind,
            signed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_round_trips_through_values() {
        for c in [
            Chunk::int(1),
            Chunk::int(4),
            Chunk::uint(2),
            Chunk::double(),
            Chunk::ptr(),
        ] {
            assert_eq!(Chunk::from_value(&c.to_value()), Some(c));
        }
        assert_eq!(Chunk::from_value(&Value::Int(3)), None);
        assert_eq!(
            Chunk::from_value(&Value::List(vec![
                Value::Int(3),
                Value::str("int"),
                Value::Bool(true)
            ])),
            None,
            "size 3 is invalid"
        );
    }
}
