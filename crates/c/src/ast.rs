//! The MiniC abstract syntax.
//!
//! A C-like language sized for the Collections-C reproduction: scalar
//! types, pointers, structs, `malloc`/`free`/`memcpy` builtins, and the
//! symbolic-testing constructs `symb_int()`/`symb_long()`/`symb_char()`/
//! `symb_double()`, `assume(e)` and `assert(e)`. No address-of on locals
//! (out-parameters go through `malloc`ed cells), no function pointers, no
//! variadics, no strings.

use crate::types::{CType, StructDef};

/// A MiniC expression.
#[derive(Clone, Debug, PartialEq)]
pub enum CExpr {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// `NULL`.
    Null,
    /// `sizeof(T)`.
    SizeOf(CType),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Un(CUnOp, Box<CExpr>),
    /// Binary operation (incl. short-circuit `&&`/`||`).
    Bin(CBinOp, Box<CExpr>, Box<CExpr>),
    /// `*e`.
    Deref(Box<CExpr>),
    /// `e[i]` (pointer indexing).
    Index(Box<CExpr>, Box<CExpr>),
    /// `e->f` (field of pointed-to struct).
    Arrow(Box<CExpr>, String),
    /// Function call (user functions and builtins).
    Call(String, Vec<CExpr>),
    /// `(T)e`.
    Cast(CType, Box<CExpr>),
}

/// MiniC unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CUnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`): 1 when the operand is zero/NULL, else 0.
    Not,
    /// Bitwise complement.
    BitNot,
}

/// MiniC binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CBinOp {
    /// `+` — integer, double, or pointer ± integer (scaled).
    Add,
    /// `-` — also pointer − pointer (element count) and pointer − integer.
    Sub,
    /// `*`.
    Mul,
    /// `/` — trapping on integer division by zero (UB).
    Div,
    /// `%`.
    Mod,
    /// `==` — defined across blocks for pointers.
    Eq,
    /// `!=`.
    Ne,
    /// `<` — UB for pointers into different or invalid blocks.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
    /// `&`.
    BitAnd,
    /// `|`.
    BitOr,
    /// `^`.
    BitXor,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
}

/// An assignable location.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// A local variable.
    Var(String),
    /// `*e`.
    Deref(CExpr),
    /// `e[i]`.
    Index(CExpr, CExpr),
    /// `e->f`.
    Arrow(CExpr, String),
}

/// A MiniC statement.
#[derive(Clone, Debug, PartialEq)]
pub enum CStmt {
    /// `T x;` / `T x = e;`
    Decl(CType, String, Option<CExpr>),
    /// `lv = e;`
    Assign(LValue, CExpr),
    /// An expression evaluated for effect.
    ExprStmt(CExpr),
    /// `if (e) { … } else { … }`
    If {
        /// Condition (C truthiness: nonzero / non-NULL).
        cond: CExpr,
        /// Then-branch.
        then: Vec<CStmt>,
        /// Else-branch.
        otherwise: Vec<CStmt>,
    },
    /// `while (e) { … }`
    While {
        /// Condition.
        cond: CExpr,
        /// Body.
        body: Vec<CStmt>,
    },
    /// `for (init; cond; step) { … }`
    For {
        /// Initialiser.
        init: Box<CStmt>,
        /// Condition.
        cond: CExpr,
        /// Step.
        step: Box<CStmt>,
        /// Body.
        body: Vec<CStmt>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;` / `return e;`
    Return(Option<CExpr>),
    /// `assume(e);`
    Assume(CExpr),
    /// `assert(e);`
    Assert(CExpr),
}

/// A MiniC function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct CFunc {
    /// Return type.
    pub ret: CType,
    /// Function name.
    pub name: String,
    /// Typed parameters.
    pub params: Vec<(CType, String)>,
    /// Body.
    pub body: Vec<CStmt>,
}

/// A MiniC translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CModule {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Function definitions.
    pub funcs: Vec<CFunc>,
}

impl CModule {
    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&CFunc> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Merges another module into this one.
    pub fn extend(&mut self, other: CModule) {
        self.structs.extend(other.structs);
        self.funcs.extend(other.funcs);
    }
}
