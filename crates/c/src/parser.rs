//! Parser for the MiniC surface syntax.
//!
//! ```text
//! struct Array { long size; long capacity; long *buffer; };
//!
//! struct Array *array_new(long capacity) {
//!     struct Array *ar = malloc(sizeof(struct Array));
//!     ar->size = 0;
//!     ar->capacity = capacity;
//!     ar->buffer = malloc(capacity * sizeof(long));
//!     return ar;
//! }
//! ```
//!
//! Precedence (loosest first): `||`, `&&`, `|`, `^`, `&`, `== !=`,
//! `< <= > >=`, `<< >>`, `+ -`, `* / %`, unary, postfix.

use crate::ast::{CBinOp, CExpr, CFunc, CModule, CStmt, CUnOp, LValue};
use crate::types::{CType, StructDef};
use std::fmt;

/// A MiniC parse error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "minic parse error at {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}
impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
    Eof,
}

const PUNCTS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "{", "}", "(", ")", "[", "]", ";", ",",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
];

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn line_col(&self, at: usize) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for c in self.src[..at.min(self.src.len())].chars() {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn err_at(&self, at: usize, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.line_col(at);
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = &self.src[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if self.src[self.pos..].starts_with("//") {
                match self.src[self.pos..].find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.src.len(),
                }
            } else if self.src[self.pos..].starts_with("/*") {
                match self.src[self.pos..].find("*/") {
                    Some(i) => self.pos += i + 2,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<(Tok, usize), ParseError> {
        self.skip_trivia();
        let at = self.pos;
        let rest = &self.src[self.pos..];
        let Some(c) = rest.chars().next() else {
            return Ok((Tok::Eof, at));
        };
        if c.is_ascii_digit() {
            let mut len = 0;
            let mut seen_dot = false;
            for (i, d) in rest.char_indices() {
                if d.is_ascii_digit() {
                    len = i + 1;
                } else if d == '.'
                    && !seen_dot
                    && rest[i + 1..].starts_with(|x: char| x.is_ascii_digit())
                {
                    seen_dot = true;
                    len = i + 1;
                } else {
                    break;
                }
            }
            let text = &rest[..len];
            self.pos += len;
            return if seen_dot {
                text.parse()
                    .map(|x| (Tok::Float(x), at))
                    .map_err(|_| self.err_at(at, "malformed float literal"))
            } else {
                text.parse()
                    .map(|n| (Tok::Int(n), at))
                    .map_err(|_| self.err_at(at, "integer literal out of range"))
            };
        }
        if c.is_alphabetic() || c == '_' {
            let len = rest
                .char_indices()
                .take_while(|(_, d)| d.is_alphanumeric() || *d == '_')
                .map(|(i, d)| i + d.len_utf8())
                .last()
                .unwrap_or(0);
            self.pos += len;
            return Ok((Tok::Ident(rest[..len].to_string()), at));
        }
        for p in PUNCTS {
            if rest.starts_with(p) {
                self.pos += p.len();
                return Ok((Tok::Punct(p), at));
            }
        }
        Err(self.err_at(at, format!("unexpected character {c:?}")))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    tok_at: usize,
}

const TYPE_KEYWORDS: &[&str] = &["void", "char", "short", "int", "long", "double", "struct"];

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer { src, pos: 0 };
        let (tok, tok_at) = lexer.next()?;
        Ok(Parser { lexer, tok, tok_at })
    }

    fn bump(&mut self) -> Result<Tok, ParseError> {
        let (next, at) = self.lexer.next()?;
        self.tok_at = at;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(self.lexer.err_at(self.tok_at, msg))
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> Result<bool, ParseError> {
        if self.is_punct(p) {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p)? {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.tok))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> Result<bool, ParseError> {
        if self.is_kw(kw) {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    /// True when the current token starts a type.
    fn at_type(&self) -> bool {
        matches!(&self.tok, Tok::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    /// Parses a type: base keyword plus `*`s.
    fn ctype(&mut self) -> Result<CType, ParseError> {
        let base = match self.bump()? {
            Tok::Ident(s) => match s.as_str() {
                "void" => CType::Void,
                "char" => CType::Char,
                "short" => CType::Short,
                "int" => CType::Int,
                "long" => CType::Long,
                "double" => CType::Double,
                "struct" => CType::Struct(self.ident()?),
                other => return self.err(format!("expected type, found {other}")),
            },
            other => return self.err(format!("expected type, found {other:?}")),
        };
        let mut t = base;
        while self.eat_punct("*")? {
            t = t.ptr_to();
        }
        Ok(t)
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<CExpr, ParseError> {
        self.or_expr()
    }

    fn bin_level(
        &mut self,
        next: impl Fn(&mut Self) -> Result<CExpr, ParseError>,
        table: &[(&str, CBinOp)],
    ) -> Result<CExpr, ParseError> {
        let mut e = next(self)?;
        'outer: loop {
            for (tok, op) in table {
                if self.eat_punct(tok)? {
                    let rhs = next(self)?;
                    e = CExpr::Bin(*op, Box::new(e), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(e);
        }
    }

    fn or_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(Self::and_expr, &[("||", CBinOp::Or)])
    }
    fn and_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(Self::bitor_expr, &[("&&", CBinOp::And)])
    }
    fn bitor_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(Self::bitxor_expr, &[("|", CBinOp::BitOr)])
    }
    fn bitxor_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(Self::bitand_expr, &[("^", CBinOp::BitXor)])
    }
    fn bitand_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(Self::eq_expr, &[("&", CBinOp::BitAnd)])
    }
    fn eq_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(Self::rel_expr, &[("==", CBinOp::Eq), ("!=", CBinOp::Ne)])
    }
    fn rel_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(
            Self::shift_expr,
            &[
                ("<=", CBinOp::Le),
                (">=", CBinOp::Ge),
                ("<", CBinOp::Lt),
                (">", CBinOp::Gt),
            ],
        )
    }
    fn shift_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(Self::add_expr, &[("<<", CBinOp::Shl), (">>", CBinOp::Shr)])
    }
    fn add_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(Self::mul_expr, &[("+", CBinOp::Add), ("-", CBinOp::Sub)])
    }
    fn mul_expr(&mut self) -> Result<CExpr, ParseError> {
        self.bin_level(
            Self::unary_expr,
            &[("*", CBinOp::Mul), ("/", CBinOp::Div), ("%", CBinOp::Mod)],
        )
    }

    fn unary_expr(&mut self) -> Result<CExpr, ParseError> {
        if self.eat_punct("-")? {
            return Ok(CExpr::Un(CUnOp::Neg, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("!")? {
            return Ok(CExpr::Un(CUnOp::Not, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("~")? {
            return Ok(CExpr::Un(CUnOp::BitNot, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("*")? {
            return Ok(CExpr::Deref(Box::new(self.unary_expr()?)));
        }
        // `(T)e` cast vs parenthesised expression: look for a type keyword.
        if self.is_punct("(") {
            let save = (self.lexer.pos, self.tok.clone(), self.tok_at);
            self.bump()?; // (
            if self.at_type() {
                let t = self.ctype()?;
                self.expect_punct(")")?;
                let e = self.unary_expr()?;
                return Ok(CExpr::Cast(t, Box::new(e)));
            }
            // Rewind: plain parenthesised expression handled by postfix.
            self.lexer.pos = save.0;
            self.tok = save.1;
            self.tok_at = save.2;
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<CExpr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("->")? {
                let field = self.ident()?;
                e = CExpr::Arrow(Box::new(e), field);
            } else if self.eat_punct("[")? {
                let i = self.expr()?;
                self.expect_punct("]")?;
                e = CExpr::Index(Box::new(e), Box::new(i));
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<CExpr, ParseError> {
        if self.eat_kw("sizeof")? {
            self.expect_punct("(")?;
            let t = self.ctype()?;
            self.expect_punct(")")?;
            return Ok(CExpr::SizeOf(t));
        }
        match self.bump()? {
            Tok::Int(n) => Ok(CExpr::Int(n)),
            Tok::Float(x) => Ok(CExpr::Float(x)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(id) => match id.as_str() {
                "NULL" => Ok(CExpr::Null),
                _ => {
                    if self.eat_punct("(")? {
                        let mut args = Vec::new();
                        if !self.eat_punct(")")? {
                            loop {
                                args.push(self.expr()?);
                                if self.eat_punct(")")? {
                                    break;
                                }
                                self.expect_punct(",")?;
                            }
                        }
                        Ok(CExpr::Call(id, args))
                    } else {
                        Ok(CExpr::Var(id))
                    }
                }
            },
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self) -> Result<Vec<CStmt>, ParseError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}")? {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn block_or_single(&mut self) -> Result<Vec<CStmt>, ParseError> {
        if self.is_punct("{") {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<CStmt, ParseError> {
        if self.at_type() {
            let t = self.ctype()?;
            let name = self.ident()?;
            let init = if self.eat_punct("=")? {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(CStmt::Decl(t, name, init));
        }
        if self.eat_kw("if")? {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block_or_single()?;
            let otherwise = if self.eat_kw("else")? {
                if self.is_kw("if") {
                    vec![self.stmt()?]
                } else {
                    self.block_or_single()?
                }
            } else {
                Vec::new()
            };
            return Ok(CStmt::If {
                cond,
                then,
                otherwise,
            });
        }
        if self.eat_kw("while")? {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(CStmt::While { cond, body });
        }
        if self.eat_kw("for")? {
            self.expect_punct("(")?;
            let init = self.stmt()?; // consumes `;`
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let step = self.simple_stmt_no_semi()?;
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(CStmt::For {
                init: Box::new(init),
                cond,
                step: Box::new(step),
                body,
            });
        }
        if self.eat_kw("break")? {
            self.expect_punct(";")?;
            return Ok(CStmt::Break);
        }
        if self.eat_kw("continue")? {
            self.expect_punct(";")?;
            return Ok(CStmt::Continue);
        }
        if self.eat_kw("return")? {
            if self.eat_punct(";")? {
                return Ok(CStmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(CStmt::Return(Some(e)));
        }
        if self.eat_kw("assume")? {
            self.expect_punct("(")?;
            let e = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(CStmt::Assume(e));
        }
        if self.eat_kw("assert")? {
            self.expect_punct("(")?;
            let e = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(CStmt::Assert(e));
        }
        let s = self.simple_stmt_no_semi()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    fn simple_stmt_no_semi(&mut self) -> Result<CStmt, ParseError> {
        let target = self.expr()?;
        if self.eat_punct("=")? {
            let value = self.expr()?;
            let lv = match target {
                CExpr::Var(name) => LValue::Var(name),
                CExpr::Deref(e) => LValue::Deref(*e),
                CExpr::Index(e, i) => LValue::Index(*e, *i),
                CExpr::Arrow(e, f) => LValue::Arrow(*e, f),
                other => return self.err(format!("invalid assignment target {other:?}")),
            };
            return Ok(CStmt::Assign(lv, value));
        }
        Ok(CStmt::ExprStmt(target))
    }

    // ---- top level -----------------------------------------------------

    fn top(&mut self, module: &mut CModule) -> Result<(), ParseError> {
        // `struct Name { … };` definition vs a function returning a struct
        // pointer: disambiguate on the token after the name.
        if self.is_kw("struct") {
            let save = (self.lexer.pos, self.tok.clone(), self.tok_at);
            self.bump()?;
            let name = self.ident()?;
            if self.is_punct("{") {
                self.bump()?;
                let mut fields = Vec::new();
                while !self.eat_punct("}")? {
                    let t = self.ctype()?;
                    let fname = self.ident()?;
                    self.expect_punct(";")?;
                    fields.push((fname, t));
                }
                self.expect_punct(";")?;
                module.structs.push(StructDef { name, fields });
                return Ok(());
            }
            self.lexer.pos = save.0;
            self.tok = save.1;
            self.tok_at = save.2;
        }
        let ret = self.ctype()?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")")? {
            if self.is_kw("void") && !self.at_type_ahead_ident() {
                self.bump()?;
                self.expect_punct(")")?;
            } else {
                loop {
                    let t = self.ctype()?;
                    let pname = self.ident()?;
                    params.push((t, pname));
                    if self.eat_punct(")")? {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
        }
        let body = self.block()?;
        module.funcs.push(CFunc {
            ret,
            name,
            params,
            body,
        });
        Ok(())
    }

    /// Distinguishes `f(void)` from `f(void *p)`.
    fn at_type_ahead_ident(&self) -> bool {
        // Peek the raw source after the current token for a `*` or ident.
        let rest = self.lexer.src[self.lexer.pos..].trim_start();
        rest.starts_with('*') || rest.starts_with(|c: char| c.is_alphabetic() || c == '_')
    }
}

/// Parses a MiniC translation unit.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_unit(source: &str) -> Result<CModule, ParseError> {
    let mut p = Parser::new(source)?;
    let mut module = CModule::default();
    while p.tok != Tok::Eof {
        p.top(&mut module)?;
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_structs_and_functions() {
        let m = parse_unit(
            r#"
            struct Array { long size; long capacity; long *buffer; };

            struct Array *array_new(long capacity) {
                struct Array *ar = malloc(sizeof(struct Array));
                ar->size = 0;
                ar->capacity = capacity;
                ar->buffer = malloc(capacity * sizeof(long));
                return ar;
            }

            long array_get(struct Array *ar, long i) {
                return ar->buffer[i];
            }
        "#,
        )
        .unwrap();
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.funcs.len(), 2);
        assert_eq!(m.funcs[0].ret, CType::Struct("Array".into()).ptr_to());
        assert!(matches!(
            m.funcs[1].body[0],
            CStmt::Return(Some(CExpr::Index(_, _)))
        ));
    }

    #[test]
    fn extreme_float_literals_lex_without_panicking() {
        // The float arm of the number lexer used to `unwrap()` the parse;
        // it must return a token (or a ParseError), never abort.
        let huge = format!("double f() {{ return {}.5; }}", "9".repeat(400));
        assert!(parse_unit(&huge).is_ok());
    }

    #[test]
    fn parses_control_flow_and_casts() {
        let m = parse_unit(
            r#"
            long f(long n) {
                long total = 0;
                for (long i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { continue; }
                    if (i > 10) { break; }
                    total = total + i;
                }
                while (total > 100) total = total - 1;
                char c = (char)total;
                return (long)c;
            }
        "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        assert!(matches!(f.body[1], CStmt::For { .. }));
        assert!(matches!(
            f.body[3],
            CStmt::Decl(CType::Char, _, Some(CExpr::Cast(_, _)))
        ));
    }

    #[test]
    fn parses_pointer_expressions() {
        let m = parse_unit(
            r#"
            long f(long *p, struct Node *n) {
                *p = 1;
                p[2] = 3;
                n->next->value = *p + p[2];
                assume(p != NULL);
                assert(n->value >= 0);
                return 0;
            }
        "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        assert!(matches!(f.body[0], CStmt::Assign(LValue::Deref(_), _)));
        assert!(matches!(f.body[1], CStmt::Assign(LValue::Index(_, _), _)));
        assert!(matches!(f.body[2], CStmt::Assign(LValue::Arrow(_, _), _)));
        assert!(matches!(f.body[3], CStmt::Assume(_)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_unit("long f( {").is_err());
        assert!(parse_unit("long f() { 1 + ; }").is_err());
        assert!(parse_unit("long f() { 1 = 2; }").is_err());
    }
}
