//! The structured event journal: per-worker ring buffers of typed events.
//!
//! One [`Journal`] serves one exploration run. Each engine worker obtains
//! a [`WorkerLog`] — an owned, lock-free ring buffer — and emits typed
//! [`Event`]s with monotonic timestamps as it executes; shared components
//! (the solver, which serves every worker at once) emit through the
//! journal's shared buffer. At explore end the engine merges all buffers
//! into one deterministic record ([`Journal::finish_run`]), exports it to
//! any configured sinks, and stashes it for inspection
//! ([`Journal::last_run`]).
//!
//! A disabled journal (the default) is an `Option::None` all the way
//! down: emitting is a branch on a boolean, no event is constructed, no
//! allocation happens. This is what keeps the library silent and fast
//! unless a run is actually being traced.

use crate::export;
use crate::metrics::{registry, Counter};
use crate::names;
use crate::now_micros;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn dropped_counter() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| registry().counter(names::JOURNAL_DROPPED_EVENTS))
}

thread_local! {
    /// The path the calling thread is currently executing, for
    /// attributing shared-emitter events (sat queries, memory actions)
    /// to exploration-tree nodes. Engines set it around each step only
    /// when the journal is enabled, so the disabled-journal hot path
    /// never touches it.
    static PATH_CTX: RefCell<Option<PathId>> = const { RefCell::new(None) };
}

/// Declares `path` as the calling thread's current path: until cleared,
/// shared-emitter events recorded from this thread carry it as their
/// [`EventRecord::path_ctx`]. Engines call this around each step (only
/// when tracing is on — setting it allocates a clone of the trace).
pub fn set_path_context(path: &[u32]) {
    PATH_CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        match ctx.as_mut() {
            Some(buf) => {
                buf.clear();
                buf.extend_from_slice(path);
            }
            None => *ctx = Some(path.to_vec()),
        }
    });
}

/// Clears the calling thread's path context (between paths, and at
/// explore end so a reused thread never leaks a stale attribution).
pub fn clear_path_context() {
    PATH_CTX.with(|c| *c.borrow_mut() = None);
}

fn path_context() -> Option<PathId> {
    PATH_CTX.with(|c| c.borrow().clone())
}

/// A path's identity: the branch trace (successor index chosen at every
/// branching step since the entry). Schedule-independent, unlike worker
/// ids or timestamps. Rendered as `"0.1.0"`; the root path is the empty
/// trace, rendered as `""`.
pub type PathId = Vec<u32>;

/// Renders a path id (`""` for the root).
pub fn path_string(path: &[u32]) -> String {
    path.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// A satisfiability verdict, journal-side (mirror of the solver's enum —
/// this crate sits below the solver and cannot name it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Proven satisfiable.
    Sat,
    /// Proven unsatisfiable.
    Unsat,
    /// Undecided within budget/deadline.
    Unknown,
}

impl Verdict {
    /// The JSONL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Sat => "sat",
            Verdict::Unsat => "unsat",
            Verdict::Unknown => "unknown",
        }
    }
}

/// One typed journal event.
#[derive(Clone, Debug)]
pub enum Event {
    /// The run's root path began executing.
    PathStarted {
        /// The (root) path.
        path: PathId,
    },
    /// A step of `parent` branched into `arms` successor paths
    /// (`parent.0` … `parent.{arms-1}`). These edges, together with the
    /// finished path ids, give the branch tree independently of
    /// scheduling.
    PathForked {
        /// The branching path.
        parent: PathId,
        /// Number of successors.
        arms: u32,
    },
    /// A path was recorded in the exploration result.
    PathFinished {
        /// The finished path.
        path: PathId,
        /// Outcome kind: `normal`, `error`, `vanished`, `truncated`,
        /// `engine_error`.
        outcome: &'static str,
        /// Commands executed along the path.
        cmds: u64,
    },
    /// One satisfiability query, with cache-hit attribution.
    SatQuery {
        /// The canonical cache key's hash (stable within a process).
        key: u64,
        /// Conjunct count of the queried path condition.
        conjuncts: u32,
        /// The verdict.
        verdict: Verdict,
        /// Wall-clock latency in microseconds.
        micros: u64,
        /// Whether the verdict came from the solver's result cache.
        cache_hit: bool,
        /// Rendering of the path condition, captured only for queries
        /// slow enough to matter (see `SLOW_QUERY_RENDER_MICROS`).
        pc: String,
    },
    /// One symbolic memory-model action dispatch.
    ActionExec {
        /// The instantiation's language tag (`while`, `minijs`, `minic`).
        lang: &'static str,
        /// The action name.
        action: String,
        /// Number of branches the action returned.
        branches: u32,
        /// Wall-clock latency in microseconds.
        micros: u64,
    },
    /// Exclusive execution time attributed to one procedure (call-stack
    /// segment) while stepping one path. Emitted by the engines from the
    /// bytecode dispatcher's block profile; the profiler's folded-stacks
    /// export and per-procedure rollups are built from these.
    ProcTime {
        /// The path being stepped.
        path: PathId,
        /// The call stack at the time, rendered bottom-first and joined
        /// with `;` (e.g. `"main;f"`). The last frame is the procedure
        /// the time is attributed to.
        stack: String,
        /// Commands retired during the segment.
        cmds: u64,
        /// Exclusive wall-clock time of the segment in microseconds.
        micros: u64,
    },
    /// The run's wall-clock deadline fired.
    DeadlineHit {
        /// The path being executed when the deadline was observed (empty
        /// when it fired between paths).
        path: PathId,
    },
    /// A panic was isolated to one path.
    PanicIsolated {
        /// The path that died.
        path: PathId,
        /// The captured panic message.
        payload: String,
    },
    /// A checkpoint of the exploration frontier was written to disk.
    CheckpointWritten {
        /// Pending frontier items captured in the checkpoint.
        pending: u32,
        /// Completed-path summaries captured in the checkpoint.
        completed: u32,
        /// Size of the checkpoint file in bytes.
        bytes: u64,
        /// Wall-clock cost of serializing and writing, in microseconds.
        micros: u64,
    },
    /// A run resumed from a checkpoint file.
    Resumed {
        /// Frontier items restored into the worklist.
        pending: u32,
        /// Completed-path summaries carried over from the prior run.
        completed: u32,
    },
    /// The deterministic fault harness injected a fault.
    FaultInjected {
        /// The global scheduling-point index the decision was made at.
        point: u64,
        /// Fault kind: `path_panic`, `solver_unknown`, `sat_latency`,
        /// `kill`.
        fault: &'static str,
    },
}

impl Event {
    /// The JSONL `type` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PathStarted { .. } => "path_started",
            Event::PathForked { .. } => "path_forked",
            Event::PathFinished { .. } => "path_finished",
            Event::SatQuery { .. } => "sat_query",
            Event::ActionExec { .. } => "action_exec",
            Event::ProcTime { .. } => "proc_time",
            Event::DeadlineHit { .. } => "deadline_hit",
            Event::PanicIsolated { .. } => "panic_isolated",
            Event::CheckpointWritten { .. } => "checkpoint_written",
            Event::Resumed { .. } => "resumed",
            Event::FaultInjected { .. } => "fault_injected",
        }
    }

    /// The path this event is about, when it is about one.
    pub fn path(&self) -> Option<&PathId> {
        match self {
            Event::PathStarted { path }
            | Event::PathFinished { path, .. }
            | Event::DeadlineHit { path }
            | Event::PanicIsolated { path, .. }
            | Event::ProcTime { path, .. } => Some(path),
            Event::PathForked { parent, .. } => Some(parent),
            _ => None,
        }
    }

    /// Rank used by the deterministic merge so that, within one path,
    /// lifecycle events order start < fork < finish regardless of which
    /// worker timestamped them.
    fn kind_rank(&self) -> u8 {
        match self {
            Event::PathStarted { .. } => 0,
            Event::PathForked { .. } => 1,
            Event::DeadlineHit { .. } => 2,
            Event::PanicIsolated { .. } => 3,
            Event::PathFinished { .. } => 4,
            Event::SatQuery { .. } => 5,
            Event::ActionExec { .. } => 6,
            Event::ProcTime { .. } => 7,
            Event::CheckpointWritten { .. } => 8,
            Event::Resumed { .. } => 9,
            Event::FaultInjected { .. } => 10,
        }
    }
}

/// One journal entry: an [`Event`] plus its provenance.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Microseconds since the process telemetry epoch.
    pub ts_micros: u64,
    /// The emitting worker (0 = the engine/main thread, 1..=N = explorer
    /// workers, [`SHARED_WORKER`] = shared components such as the
    /// solver).
    pub worker: u32,
    /// Per-worker emission sequence number.
    pub seq: u64,
    /// The path the emitting thread was executing, for events that do
    /// not themselves name one (sat queries and memory actions are
    /// emitted by shared components that cannot see the engine's
    /// worklist). Filled from the thread-local [`set_path_context`] at
    /// emission; `None` when no context was declared.
    pub path_ctx: Option<PathId>,
    /// The event.
    pub event: Event,
}

impl EventRecord {
    /// The path this record attributes to: the event's own path when it
    /// carries one, otherwise the emitting thread's path context.
    pub fn path(&self) -> Option<&[u32]> {
        self.event
            .path()
            .map(|p| p.as_slice())
            .or(self.path_ctx.as_deref())
    }
}

/// The `worker` value used by shared (cross-worker) emitters.
pub const SHARED_WORKER: u32 = u32::MAX;

/// Default per-worker ring capacity (events). Beyond it the oldest
/// events are overwritten and counted in `events_dropped`.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Sat queries at or above this latency get their path condition
/// rendered into the [`Event::SatQuery`] record (rendering every query's
/// condition would dominate a traced run).
pub const SLOW_QUERY_RENDER_MICROS: u64 = 100;

#[derive(Debug)]
struct JournalInner {
    capacity: usize,
    /// Buffers retired by finished workers, awaiting the merge.
    retired: Mutex<Vec<Vec<EventRecord>>>,
    /// Events from shared emitters (the solver), appended under a lock —
    /// only ever touched when tracing is on.
    shared: Mutex<Vec<EventRecord>>,
    shared_seq: AtomicU64,
    /// Ring-buffer overwrites across all workers.
    dropped: AtomicU64,
    /// The merged record of the last finished run (kept for tests and
    /// callers that want the raw events after `explore` returns).
    last: Mutex<Arc<Vec<EventRecord>>>,
    /// JSONL sink path, if any.
    jsonl: Option<String>,
    /// Chrome `trace_event` sink path, if any.
    chrome: Option<String>,
    /// Folded-stacks (flamegraph) sink path, if any.
    folded: Option<String>,
}

/// A handle to one run's event journal. Cloning shares the journal.
///
/// The default journal is **disabled**: every emit is a no-op and no
/// memory is allocated. [`Journal::from_env`] enables it when
/// `GILLIAN_TRACE` (JSONL path) or `GILLIAN_TRACE_CHROME` (Chrome
/// `trace_event` path) is set.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    inner: Option<Arc<JournalInner>>,
}

/// Cached process-level trace configuration from the environment.
#[allow(clippy::type_complexity)]
fn env_config() -> &'static (Option<String>, Option<String>, Option<String>, usize) {
    static CONFIG: OnceLock<(Option<String>, Option<String>, Option<String>, usize)> =
        OnceLock::new();
    CONFIG.get_or_init(|| {
        let var = |name: &str| std::env::var(name).ok().filter(|s| !s.is_empty());
        let jsonl = var("GILLIAN_TRACE");
        let chrome = var("GILLIAN_TRACE_CHROME");
        let folded = var("GILLIAN_FOLDED");
        let cap = std::env::var("GILLIAN_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        (jsonl, chrome, folded, cap)
    })
}

impl Journal {
    /// The disabled journal: emitting is free, merging yields nothing.
    pub fn disabled() -> Journal {
        Journal { inner: None }
    }

    /// An enabled journal with the default capacity and no sinks
    /// (events are merged and reported, not written anywhere).
    pub fn enabled() -> Journal {
        Journal::with_sinks(None, None, DEFAULT_CAPACITY)
    }

    /// An enabled journal writing JSONL to `path` at run end — the same
    /// construction `GILLIAN_TRACE=path` performs.
    pub fn jsonl_sink(path: impl Into<String>) -> Journal {
        Journal::with_sinks(Some(path.into()), None, DEFAULT_CAPACITY)
    }

    /// An enabled journal with explicit sinks and per-worker capacity.
    pub fn with_sinks(jsonl: Option<String>, chrome: Option<String>, capacity: usize) -> Journal {
        Journal {
            inner: Some(Arc::new(JournalInner {
                capacity: capacity.max(16),
                retired: Mutex::new(Vec::new()),
                shared: Mutex::new(Vec::new()),
                shared_seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                last: Mutex::new(Arc::new(Vec::new())),
                jsonl,
                chrome,
                folded: None,
            })),
        }
    }

    /// This journal with a folded-stacks (flamegraph) sink: at run end
    /// the merged journal is profiled into an exploration tree and its
    /// folded stacks appended to `path` — the `GILLIAN_FOLDED`
    /// construction. No-op on a disabled journal.
    pub fn with_folded_sink(mut self, path: impl Into<String>) -> Journal {
        if let Some(inner) = self.inner.take() {
            let mut inner = Arc::try_unwrap(inner).unwrap_or_else(|arc| JournalInner {
                capacity: arc.capacity,
                retired: Mutex::new(Vec::new()),
                shared: Mutex::new(Vec::new()),
                shared_seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                last: Mutex::new(Arc::new(Vec::new())),
                jsonl: arc.jsonl.clone(),
                chrome: arc.chrome.clone(),
                folded: arc.folded.clone(),
            });
            inner.folded = Some(path.into());
            self.inner = Some(Arc::new(inner));
        }
        self
    }

    /// The journal the environment asks for: enabled with the configured
    /// sinks when `GILLIAN_TRACE`/`GILLIAN_TRACE_CHROME`/`GILLIAN_FOLDED`
    /// is set, disabled otherwise. A **fresh** journal per call — each
    /// exploration run merges and appends to the sink files on its own.
    pub fn from_env() -> Journal {
        let (jsonl, chrome, folded, cap) = env_config();
        if jsonl.is_none() && chrome.is_none() && folded.is_none() {
            return Journal::disabled();
        }
        let journal = Journal::with_sinks(jsonl.clone(), chrome.clone(), *cap);
        match folded {
            Some(path) => journal.with_folded_sink(path.clone()),
            None => journal,
        }
    }

    /// True when events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configured JSONL sink path, if any.
    pub fn jsonl_path(&self) -> Option<&str> {
        self.inner.as_ref().and_then(|i| i.jsonl.as_deref())
    }

    /// The configured Chrome-trace sink path, if any.
    pub fn chrome_path(&self) -> Option<&str> {
        self.inner.as_ref().and_then(|i| i.chrome.as_deref())
    }

    /// The configured folded-stacks sink path, if any.
    pub fn folded_path(&self) -> Option<&str> {
        self.inner.as_ref().and_then(|i| i.folded.as_deref())
    }

    /// A log for worker `worker`. Emitting through it is lock-free; the
    /// buffer retires into the journal when the log drops.
    pub fn worker(&self, worker: u32) -> WorkerLog {
        WorkerLog {
            journal: self.clone(),
            worker,
            seq: 0,
            start: 0,
            buf: Vec::new(),
        }
    }

    /// Emits through the shared (locked) buffer — for components that
    /// serve several workers at once, such as the solver. No-op when
    /// disabled; the caller should gate event construction on
    /// [`Journal::is_enabled`].
    pub fn record_shared(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        let seq = inner.shared_seq.fetch_add(1, Ordering::Relaxed);
        let rec = EventRecord {
            ts_micros: now_micros(),
            worker: SHARED_WORKER,
            seq,
            path_ctx: path_context(),
            event,
        };
        let mut shared = lock_unpoisoned(&inner.shared);
        if shared.len() >= inner.capacity * 4 {
            // Bound the shared buffer too; shed the oldest half.
            let keep = shared.len() / 2;
            let cut = shared.len() - keep;
            inner.dropped.fetch_add(cut as u64, Ordering::Relaxed);
            dropped_counter().add(cut as u64);
            shared.drain(..cut);
        }
        shared.push(rec);
    }

    /// Events overwritten by ring-buffer wrap so far.
    pub fn events_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Merges every retired buffer (workers must have retired — i.e.
    /// their `WorkerLog`s dropped — before this is called) plus the
    /// shared buffer into one deterministic record: sorted by path id,
    /// then lifecycle rank, then timestamp/worker/seq as tie-breakers.
    /// Exports to the configured sinks, stashes the result for
    /// [`Journal::last_run`], and returns it.
    pub fn finish_run(&self) -> Arc<Vec<EventRecord>> {
        let Some(inner) = &self.inner else {
            return Arc::new(Vec::new());
        };
        let mut merged: Vec<EventRecord> = Vec::new();
        for buf in lock_unpoisoned(&inner.retired).drain(..) {
            merged.extend(buf);
        }
        merged.extend(lock_unpoisoned(&inner.shared).drain(..));
        merged.sort_by(|a, b| {
            let ka = (a.path().unwrap_or(&[]), a.event.kind_rank());
            let kb = (b.path().unwrap_or(&[]), b.event.kind_rank());
            ka.cmp(&kb)
                .then(a.ts_micros.cmp(&b.ts_micros))
                .then(a.worker.cmp(&b.worker))
                .then(a.seq.cmp(&b.seq))
        });
        let merged = Arc::new(merged);
        if let Some(path) = &inner.jsonl {
            export::append_jsonl(path, &merged, self.events_dropped());
        }
        if let Some(path) = &inner.chrome {
            export::write_chrome_trace(path, &merged);
        }
        if let Some(path) = &inner.folded {
            let tree = crate::tree::ExploreTree::from_records(&merged);
            export::append_folded(path, &tree.folded());
        }
        *lock_unpoisoned(&inner.last) = merged.clone();
        merged
    }

    /// The merged record of the last finished run (empty before any
    /// [`Journal::finish_run`]).
    pub fn last_run(&self) -> Arc<Vec<EventRecord>> {
        self.inner
            .as_ref()
            .map(|i| lock_unpoisoned(&i.last).clone())
            .unwrap_or_default()
    }

    fn retire(&self, buf: Vec<EventRecord>, dropped: u64) {
        let Some(inner) = &self.inner else { return };
        if dropped > 0 {
            inner.dropped.fetch_add(dropped, Ordering::Relaxed);
            dropped_counter().add(dropped);
        }
        if !buf.is_empty() {
            lock_unpoisoned(&inner.retired).push(buf);
        }
    }
}

/// One worker's owned event buffer: a ring of the journal's capacity.
/// Emitting takes no locks; the buffer retires into the journal on drop.
#[derive(Debug)]
pub struct WorkerLog {
    journal: Journal,
    worker: u32,
    seq: u64,
    /// Index of the logically oldest record once the ring has wrapped.
    start: usize,
    buf: Vec<EventRecord>,
}

impl WorkerLog {
    /// True when this log actually collects events.
    pub fn is_enabled(&self) -> bool {
        self.journal.is_enabled()
    }

    /// Emits one event (no-op when the journal is disabled). The closure
    /// form lets call sites skip event construction entirely when off:
    /// `log.emit_with(|| Event::…)`.
    pub fn emit_with(&mut self, make: impl FnOnce() -> Event) {
        let Some(inner) = &self.journal.inner else {
            return;
        };
        let cap = inner.capacity;
        let rec = EventRecord {
            ts_micros: now_micros(),
            worker: self.worker,
            seq: self.seq,
            path_ctx: None,
            event: make(),
        };
        self.seq += 1;
        if self.buf.len() < cap {
            self.buf.push(rec);
        } else {
            // Ring wrap: overwrite the oldest.
            self.buf[self.start] = rec;
            self.start = (self.start + 1) % cap;
        }
    }

    /// Retires the buffer into the journal now (also happens on drop).
    pub fn retire(&mut self) {
        let cap_dropped = self.seq.saturating_sub(self.buf.len() as u64);
        let mut buf = std::mem::take(&mut self.buf);
        buf.rotate_left(self.start);
        self.start = 0;
        self.seq = 0;
        self.journal.retire(buf, cap_dropped);
    }
}

impl Drop for WorkerLog {
    fn drop(&mut self) {
        self.retire();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_is_free_and_empty() {
        let j = Journal::disabled();
        assert!(!j.is_enabled());
        let mut log = j.worker(0);
        log.emit_with(|| unreachable!("emit must not construct when disabled"));
        drop(log);
        assert!(j.finish_run().is_empty());
    }

    #[test]
    fn events_merge_deterministically_by_path() {
        let j = Journal::enabled();
        let mut w1 = j.worker(1);
        let mut w2 = j.worker(2);
        // Worker 2's events are emitted first but belong to a later path.
        w2.emit_with(|| Event::PathFinished {
            path: vec![1],
            outcome: "normal",
            cmds: 3,
        });
        w1.emit_with(|| Event::PathStarted { path: vec![] });
        w1.emit_with(|| Event::PathForked {
            parent: vec![],
            arms: 2,
        });
        w1.emit_with(|| Event::PathFinished {
            path: vec![0],
            outcome: "error",
            cmds: 2,
        });
        drop(w1);
        drop(w2);
        let merged = j.finish_run();
        let kinds: Vec<_> = merged
            .iter()
            .map(|r| (path_string(r.event.path().unwrap()), r.event.kind()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("".into(), "path_started"),
                ("".into(), "path_forked"),
                ("0".to_string(), "path_finished"),
                ("1".to_string(), "path_finished"),
            ]
        );
        assert_eq!(j.events_dropped(), 0);
        assert_eq!(j.last_run().len(), 4);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let j = Journal::with_sinks(None, None, 16);
        let mut log = j.worker(1);
        for i in 0..40u64 {
            log.emit_with(|| Event::PathFinished {
                path: vec![i as u32],
                outcome: "normal",
                cmds: i,
            });
        }
        drop(log);
        let merged = j.finish_run();
        assert_eq!(merged.len(), 16, "capacity bounds the buffer");
        assert_eq!(j.events_dropped(), 24);
        // The survivors are the *newest* 16 events.
        let min_cmds = merged
            .iter()
            .map(|r| match &r.event {
                Event::PathFinished { cmds, .. } => *cmds,
                _ => unreachable!(),
            })
            .min()
            .unwrap();
        assert_eq!(min_cmds, 24);
    }

    #[test]
    fn shared_records_interleave_with_worker_records() {
        let j = Journal::enabled();
        j.record_shared(Event::SatQuery {
            key: 7,
            conjuncts: 1,
            verdict: Verdict::Sat,
            micros: 10,
            cache_hit: false,
            pc: String::new(),
        });
        let mut log = j.worker(1);
        log.emit_with(|| Event::PathStarted { path: vec![] });
        drop(log);
        let merged = j.finish_run();
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().any(|r| r.worker == SHARED_WORKER));
    }

    #[test]
    fn path_strings_render() {
        assert_eq!(path_string(&[]), "");
        assert_eq!(path_string(&[0, 1, 0]), "0.1.0");
    }

    #[test]
    fn shared_events_carry_the_thread_path_context() {
        let j = Journal::enabled();
        let sat = |key| Event::SatQuery {
            key,
            conjuncts: 1,
            verdict: Verdict::Sat,
            micros: 5,
            cache_hit: false,
            pc: String::new(),
        };
        set_path_context(&[0, 1]);
        j.record_shared(sat(1));
        clear_path_context();
        j.record_shared(sat(2));
        let merged = j.finish_run();
        assert_eq!(merged.len(), 2);
        // The context-free record sorts under the root (empty) path; the
        // attributed one under its context path.
        assert_eq!(merged[0].path(), None);
        assert_eq!(merged[1].path(), Some(&[0u32, 1][..]));
        assert!(matches!(merged[1].event, Event::SatQuery { key: 1, .. }));
    }

    #[test]
    fn journal_drops_feed_the_process_counter() {
        let before = dropped_counter().get();
        let j = Journal::with_sinks(None, None, 16);
        let mut log = j.worker(1);
        for i in 0..40u32 {
            log.emit_with(|| Event::PathStarted { path: vec![i] });
        }
        drop(log);
        j.finish_run();
        assert_eq!(j.events_dropped(), 24);
        assert!(dropped_counter().get() >= before + 24);
    }
}
