//! A tiny JSON writer and reader, so exporters and the trace checker
//! need no external dependency. The writer covers exactly what the
//! exporters emit (objects, arrays, strings, u64/f64, bool); the reader
//! is a full (if minimal) recursive-descent parser used to validate
//! emitted traces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64; exporter-emitted u64s up to 2^53
    /// round-trip exactly, which covers every field we emit except raw
    /// hash keys — those are emitted as strings for this reason).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys — good enough for validation).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64 when this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// True when this is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Value::Obj(_))
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An incremental writer for one JSON object: `{"k":v,...}`.
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    /// Starts an object.
    pub fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_str(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (finite; NaN/inf written as 0).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push('0');
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim.
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&mut self) -> String {
        let mut buf = std::mem::take(&mut self.buf);
        buf.push('}');
        buf
    }
}

/// Parses one JSON document; returns the value and demands nothing but
/// whitespace after it.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_parses_back() {
        let line = ObjWriter::new()
            .str("type", "sat_query")
            .u64("micros", 123)
            .bool("cache_hit", true)
            .str("pc", "x > \"0\"\nand y")
            .f64("rate", 1.5)
            .finish();
        let v = parse(&line).expect("round-trip");
        assert_eq!(v.get("type").and_then(Value::as_str), Some("sat_query"));
        assert_eq!(v.get("micros").and_then(Value::as_u64), Some(123));
        assert_eq!(v.get("cache_hit"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("pc").and_then(Value::as_str),
            Some("x > \"0\"\nand y")
        );
        assert_eq!(v.get("rate").and_then(Value::as_f64), Some(1.5));
    }

    #[test]
    fn parser_handles_nesting_and_rejects_garbage() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":false}}"#).unwrap();
        assert!(v.get("c").unwrap().is_obj());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let mut s = String::new();
        write_str(&mut s, "tab\tnl\nquote\"\\ctrl\u{1}");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("tab\tnl\nquote\"\\ctrl\u{1}"));
    }
}
