//! The human exploration profile: what a run did, where the time went.
//!
//! A [`Report`] is assembled at explore end from three independent
//! sources, each optional:
//!
//! - the **metrics delta** (registry snapshot before/after the run) —
//!   latency histograms and counters, present even with the journal off;
//! - the **branch traces** of the finished paths — tree shape stats,
//!   always present;
//! - the **merged journal** — top-k slowest sat queries and the
//!   per-language action table, present only when tracing was enabled.
//!
//! Rendering is pure string building; nothing here prints. Binaries
//! (`examples/stress.rs`, the bench bins) decide whether to show it.

use crate::journal::{Event, EventRecord, Verdict};
use crate::metrics::MetricsSnapshot;
use crate::names;
use crate::tree::{node_label, ExploreTree};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// How many slowest queries a report keeps.
pub const TOP_K_QUERIES: usize = 10;

/// How many rows the hot-subtree / hot-proc / hot-pc sections show.
pub const TOP_K_HOT: usize = 5;

/// Shape statistics of the explored branch tree, computed from the
/// schedule-independent branch traces of the finished paths.
#[derive(Clone, Debug, Default)]
pub struct TreeStats {
    /// Finished paths (leaves of the explored tree).
    pub leaves: u64,
    /// Deepest branch trace.
    pub max_depth: u32,
    /// Mean branch-trace depth.
    pub mean_depth: f64,
    /// Distinct interior branch points.
    pub interior: u64,
    /// Widest fork observed (successor count at one node).
    pub max_arms: u32,
}

impl TreeStats {
    /// Computes tree stats from finished-path branch traces.
    pub fn from_paths<'a>(paths: impl IntoIterator<Item = &'a [u32]>) -> TreeStats {
        let mut leaves = 0u64;
        let mut depth_sum = 0u64;
        let mut max_depth = 0u32;
        // Interior node → widest successor index seen beneath it.
        let mut nodes: BTreeMap<&[u32], u32> = BTreeMap::new();
        let mut stats = TreeStats::default();
        for path in paths {
            leaves += 1;
            depth_sum += path.len() as u64;
            max_depth = max_depth.max(path.len() as u32);
            for cut in 0..path.len() {
                let arms = nodes.entry(&path[..cut]).or_insert(0);
                *arms = (*arms).max(path[cut] + 1);
            }
        }
        stats.leaves = leaves;
        stats.max_depth = max_depth;
        stats.mean_depth = if leaves == 0 {
            0.0
        } else {
            depth_sum as f64 / leaves as f64
        };
        stats.interior = nodes.len() as u64;
        stats.max_arms = nodes.values().copied().max().unwrap_or(0);
        stats
    }
}

/// One of the slowest satisfiability queries of a run.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The canonical cache key's hash.
    pub key: u64,
    /// Conjunct count of the path condition.
    pub conjuncts: u32,
    /// The verdict.
    pub verdict: Verdict,
    /// Latency in microseconds.
    pub micros: u64,
    /// Whether the result cache answered.
    pub cache_hit: bool,
    /// Rendering of the path condition, when the journal captured one.
    pub pc: String,
}

/// One row of the per-language action latency table.
#[derive(Clone, Debug)]
pub struct LangActionRow {
    /// The memory model's language tag.
    pub lang: &'static str,
    /// The action name.
    pub action: String,
    /// Dispatches.
    pub count: u64,
    /// Total latency (µs).
    pub total_micros: u64,
    /// Slowest dispatch (µs).
    pub max_micros: u64,
}

impl LangActionRow {
    /// Mean dispatch latency (µs).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.count as f64
        }
    }
}

/// The exploration profile attached to an `ExploreResult`.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Wall-clock time of the run (µs).
    pub wall_micros: u64,
    /// Workers the run used (1 for the serial explorer).
    pub workers: u32,
    /// This run's metric deltas (histograms are process-wide over the
    /// run's wall-clock window; counters likewise).
    pub metrics: MetricsSnapshot,
    /// Branch-tree shape.
    pub tree: TreeStats,
    /// Top-k slowest sat queries (journal runs only; slowest first).
    pub slow_queries: Vec<SlowQuery>,
    /// Per-language action latency rows (journal runs only; hottest
    /// first by total time).
    pub lang_actions: Vec<LangActionRow>,
    /// Journal events merged for this run.
    pub events: u64,
    /// Journal events lost to ring-buffer wrap.
    pub events_dropped: u64,
    /// Where the JSONL trace went, when a sink was configured.
    pub trace_path: Option<String>,
    /// The exploration-tree profile (journal runs only): cost-attributed
    /// tree model behind the hot-subtrees / hot-procs / hot-pc sections.
    pub profile: Option<ExploreTree>,
}

impl Report {
    /// Extracts the journal-derived sections (slow queries, action
    /// table, event counts) from a merged journal.
    pub fn ingest_events(&mut self, records: &[EventRecord], dropped: u64) {
        self.events = records.len() as u64;
        self.events_dropped = dropped;
        if !records.is_empty() {
            self.profile = Some(ExploreTree::from_records(records));
        }
        let mut queries: Vec<SlowQuery> = Vec::new();
        let mut actions: BTreeMap<(&'static str, String), LangActionRow> = BTreeMap::new();
        for rec in records {
            match &rec.event {
                Event::SatQuery {
                    key,
                    conjuncts,
                    verdict,
                    micros,
                    cache_hit,
                    pc,
                } => {
                    queries.push(SlowQuery {
                        key: *key,
                        conjuncts: *conjuncts,
                        verdict: *verdict,
                        micros: *micros,
                        cache_hit: *cache_hit,
                        pc: pc.clone(),
                    });
                }
                Event::ActionExec {
                    lang,
                    action,
                    branches: _,
                    micros,
                } => {
                    let row =
                        actions
                            .entry((lang, action.clone()))
                            .or_insert_with(|| LangActionRow {
                                lang,
                                action: action.clone(),
                                count: 0,
                                total_micros: 0,
                                max_micros: 0,
                            });
                    row.count += 1;
                    row.total_micros += micros;
                    row.max_micros = row.max_micros.max(*micros);
                }
                _ => {}
            }
        }
        queries.sort_by(|a, b| b.micros.cmp(&a.micros).then(a.key.cmp(&b.key)));
        queries.truncate(TOP_K_QUERIES);
        self.slow_queries = queries;
        let mut rows: Vec<LangActionRow> = actions.into_values().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.total_micros));
        self.lang_actions = rows;
    }

    /// Renders the full multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== exploration report ==");
        let _ = writeln!(
            out,
            "paths: {} leaves · wall: {:.1}ms · workers: {}",
            self.tree.leaves,
            self.wall_micros as f64 / 1000.0,
            self.workers
        );
        let _ = writeln!(
            out,
            "branch tree: depth max {} mean {:.2} · interior nodes {} · widest fork {}",
            self.tree.max_depth, self.tree.mean_depth, self.tree.interior, self.tree.max_arms
        );
        let sat_q = self.metrics.counter(names::SAT_QUERIES);
        if sat_q > 0 {
            let hits = self.metrics.counter(names::SAT_CACHE_HITS);
            let _ = writeln!(
                out,
                "sat queries: {} · cache hits {} ({:.1}%) · unknowns {}",
                sat_q,
                hits,
                100.0 * hits as f64 / sat_q as f64,
                self.metrics.counter(names::SAT_UNKNOWNS)
            );
            let incr = self.metrics.counter(names::SAT_INCREMENTAL_HITS);
            let impl_hits = self.metrics.counter(names::SAT_IMPLICATION_HITS);
            if incr + impl_hits > 0 {
                let _ = writeln!(
                    out,
                    "sat reuse: incremental {} · implication {}",
                    incr, impl_hits
                );
            }
        }
        let recorded = self.metrics.counter(names::SUMMARY_RECORDED);
        let applied = self.metrics.counter(names::SUMMARY_APPLIED);
        let missed = self.metrics.counter(names::SUMMARY_MISSED);
        let escaped = self.metrics.counter(names::SUMMARY_ESCAPED);
        if recorded + applied + missed + escaped > 0 {
            let _ = writeln!(
                out,
                "summary reuse: recorded {recorded} · applied {applied} · missed {missed} · escaped {escaped}"
            );
        }
        let replays = self.metrics.counter(names::DIFFTEST_REPLAYS);
        let divergences = self.metrics.counter(names::DIFFTEST_DIVERGENCES);
        let skipped = self.metrics.counter(names::DIFFTEST_SKIPPED);
        if replays + divergences + skipped > 0 {
            let _ = writeln!(
                out,
                "difftest: {} replays · {} divergences · {} skipped paths · {} fallback models",
                replays,
                divergences,
                skipped,
                self.metrics.counter(names::DIFFTEST_FALLBACK_MODELS)
            );
        }
        let blocks = self.metrics.counter(names::EXEC_BLOCKS);
        if blocks > 0 {
            let cmds = self.metrics.counter(names::EXEC_CMDS);
            let _ = writeln!(
                out,
                "bytecode exec: {} blocks · {} cmds ({:.1} cmds/block) · {} compiles",
                blocks,
                cmds,
                cmds as f64 / blocks as f64,
                self.metrics.counter(names::EXEC_COMPILES)
            );
        }
        let ic_hits = self.metrics.counter(names::EXEC_IC_HITS);
        let ic_misses = self.metrics.counter(names::EXEC_IC_MISSES);
        if ic_hits + ic_misses > 0 {
            let _ = writeln!(
                out,
                "inline caches: {} hits · {} misses ({:.1}% hit)",
                ic_hits,
                ic_misses,
                100.0 * ic_hits as f64 / (ic_hits + ic_misses) as f64
            );
        }
        let mints = self.metrics.counter(names::INTERN_MINTS);
        let ihits = self.metrics.counter(names::INTERN_HITS);
        if mints + ihits > 0 {
            let _ = writeln!(
                out,
                "interner: {} mints · {} hits ({:.1}% shared)",
                mints,
                ihits,
                100.0 * ihits as f64 / (mints + ihits) as f64
            );
        }
        for (name, label, unit) in [
            (names::SAT_MICROS, "sat solve latency (cache misses)", "µs"),
            (
                names::SIMPLIFY_MICROS,
                "simplify latency (memo misses, sampled)",
                "µs",
            ),
            (
                names::ACTION_MICROS,
                "memory action latency (sampled)",
                "µs",
            ),
            (
                names::SAT_PREFIX_DEPTH,
                "reused solve-prefix depth (incremental hits)",
                " conjuncts",
            ),
            (
                names::INTERN_LOOKUP_NANOS,
                "intern lookup latency (sampled)",
                "ns",
            ),
            (
                names::EXEC_BLOCK_CMDS,
                "bytecode dispatch (cmds per block)",
                " cmds",
            ),
        ] {
            let h = self.metrics.histogram(name);
            if h.count > 0 {
                let _ = writeln!(out, "{label}: {}", h.summary(unit));
                out.push_str(&h.render(unit));
            }
        }
        if !self.slow_queries.is_empty() {
            let _ = writeln!(out, "slowest sat queries:");
            for (i, q) in self.slow_queries.iter().enumerate() {
                let _ = write!(
                    out,
                    "  {:>2}. {:>8}µs {:<7} conjuncts={:<4} key={:016x}{}",
                    i + 1,
                    q.micros,
                    q.verdict.as_str(),
                    q.conjuncts,
                    q.key,
                    if q.cache_hit { " [cache]" } else { "" }
                );
                if q.pc.is_empty() {
                    out.push('\n');
                } else {
                    let _ = writeln!(out, "  {}", q.pc);
                }
            }
        }
        if !self.lang_actions.is_empty() {
            let _ = writeln!(out, "memory actions by language:");
            let _ = writeln!(
                out,
                "  {:<8} {:<16} {:>10} {:>10} {:>8} {:>8}",
                "lang", "action", "count", "total µs", "mean µs", "max µs"
            );
            for row in &self.lang_actions {
                let _ = writeln!(
                    out,
                    "  {:<8} {:<16} {:>10} {:>10} {:>8.1} {:>8}",
                    row.lang,
                    row.action,
                    row.count,
                    row.total_micros,
                    row.mean_micros(),
                    row.max_micros
                );
            }
        }
        if let Some(profile) = &self.profile {
            let hot = profile.hot_subtrees(TOP_K_HOT);
            if !hot.is_empty() {
                let _ = writeln!(out, "hot subtrees (inclusive cost under a branch point):");
                for (i, (path, node)) in hot.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  {:>2}. {:<14} busy {:>8}µs · sat {:>7}µs/{:<5} · exec {:>8} cmds · {} leaves · {} arms",
                        i + 1,
                        node_label(path),
                        node.incl.busy_micros(),
                        node.incl.sat_micros,
                        format!("{}q", node.incl.sat_queries),
                        node.incl.step_cmds,
                        node.leaves,
                        node.arms
                    );
                }
            }
            let procs = profile.procs();
            if !procs.is_empty() {
                let _ = writeln!(out, "hot procedures (exclusive dispatcher time):");
                for (name, stat) in procs.iter().take(TOP_K_HOT) {
                    let _ = writeln!(
                        out,
                        "  {:<16} {:>8}µs · {:>8} cmds · {:>6} segments",
                        name, stat.micros, stat.cmds, stat.segments
                    );
                }
            }
            let prefixes = profile.hot_pc_prefixes(TOP_K_HOT);
            if !prefixes.is_empty() {
                let _ = writeln!(out, "hot pc prefixes (inclusive solver cost):");
                for (i, (path, node)) in prefixes.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  {:>2}. {:<14} sat {:>8}µs over {} queries",
                        i + 1,
                        node_label(path),
                        node.incl.sat_micros,
                        node.incl.sat_queries
                    );
                }
            }
        }
        if self.events > 0 || self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "journal: {} events merged · {} dropped{}",
                self.events,
                self.events_dropped,
                match &self.trace_path {
                    Some(p) => format!(" · trace: {p}"),
                    None => String::new(),
                }
            );
        }
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: journal ring buffers dropped {} event(s) — profile attribution is \
                 partial; raise GILLIAN_TRACE_CAP",
                self.events_dropped
            );
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Re-export for the rendering of path ids in reports.
pub use crate::journal::path_string as render_path;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_stats_from_traces() {
        // Tree:        root
        //            /      \
        //           0        1
        //         /   \       \
        //       0.0  0.1      1.0
        let paths: Vec<Vec<u32>> = vec![vec![0, 0], vec![0, 1], vec![1, 0]];
        let t = TreeStats::from_paths(paths.iter().map(|p| p.as_slice()));
        assert_eq!(t.leaves, 3);
        assert_eq!(t.max_depth, 2);
        assert!((t.mean_depth - 2.0).abs() < 1e-9);
        assert_eq!(t.interior, 3, "root, 0, 1");
        assert_eq!(t.max_arms, 2);
        assert_eq!(render_path(&paths[1]), "0.1");
    }

    #[test]
    fn single_root_path_tree() {
        let t = TreeStats::from_paths([&[][..]]);
        assert_eq!(t.leaves, 1);
        assert_eq!(t.max_depth, 0);
        assert_eq!(t.interior, 0);
    }

    #[test]
    fn ingest_ranks_queries_and_groups_actions() {
        let mk = |micros, key| EventRecord {
            ts_micros: 0,
            worker: 0,
            seq: 0,
            path_ctx: None,
            event: Event::SatQuery {
                key,
                conjuncts: 1,
                verdict: Verdict::Sat,
                micros,
                cache_hit: false,
                pc: String::new(),
            },
        };
        let mut records: Vec<EventRecord> = (0..20).map(|i| mk(i * 10, i)).collect();
        records.push(EventRecord {
            ts_micros: 0,
            worker: 0,
            seq: 0,
            path_ctx: None,
            event: Event::ActionExec {
                lang: "while",
                action: "store".into(),
                branches: 1,
                micros: 5,
            },
        });
        records.push(EventRecord {
            ts_micros: 0,
            worker: 0,
            seq: 1,
            path_ctx: None,
            event: Event::ActionExec {
                lang: "while",
                action: "store".into(),
                branches: 1,
                micros: 7,
            },
        });
        let mut report = Report::default();
        report.ingest_events(&records, 3);
        assert_eq!(report.slow_queries.len(), TOP_K_QUERIES);
        assert_eq!(report.slow_queries[0].micros, 190);
        assert_eq!(report.lang_actions.len(), 1);
        assert_eq!(report.lang_actions[0].count, 2);
        assert_eq!(report.lang_actions[0].total_micros, 12);
        assert_eq!(report.events_dropped, 3);
        let text = report.render();
        assert!(text.contains("slowest sat queries"));
        assert!(text.contains("memory actions by language"));
        assert!(text.contains("WARNING: journal ring buffers dropped 3"));
    }

    /// The summary-reuse line is a conditional section: absent from an
    /// untouched-run render (the common case must stay compact) and
    /// rendered verbatim from the four `summary.*` counters otherwise.
    #[test]
    fn render_includes_summary_reuse_only_when_counters_moved() {
        use crate::{names, registry};
        let before = registry().snapshot();
        let mut report = Report {
            metrics: registry().snapshot().since(&before),
            ..Default::default()
        };
        assert!(
            !report.render().contains("summary reuse"),
            "an idle run must not render the summary section"
        );
        registry().counter(names::SUMMARY_RECORDED).add(3);
        registry().counter(names::SUMMARY_APPLIED).add(2);
        report.metrics = registry().snapshot().since(&before);
        let text = report.render();
        assert!(
            text.contains("summary reuse: recorded 3 · applied 2 · missed 0 · escaped 0"),
            "{text}"
        );
    }

    #[test]
    fn render_includes_hot_sections_from_the_profile() {
        let rec = |seq, path_ctx: Option<Vec<u32>>, event| EventRecord {
            ts_micros: seq,
            worker: 0,
            seq,
            path_ctx,
            event,
        };
        let records = vec![
            rec(0, None, Event::PathStarted { path: vec![] }),
            rec(
                1,
                None,
                Event::PathForked {
                    parent: vec![],
                    arms: 2,
                },
            ),
            rec(
                2,
                Some(vec![0]),
                Event::SatQuery {
                    key: 1,
                    conjuncts: 1,
                    verdict: Verdict::Sat,
                    micros: 50,
                    cache_hit: false,
                    pc: String::new(),
                },
            ),
            rec(
                3,
                None,
                Event::ProcTime {
                    path: vec![0],
                    stack: "main".into(),
                    cmds: 8,
                    micros: 120,
                },
            ),
            rec(
                4,
                None,
                Event::PathFinished {
                    path: vec![0],
                    outcome: "normal",
                    cmds: 8,
                },
            ),
            rec(
                5,
                None,
                Event::PathFinished {
                    path: vec![1],
                    outcome: "normal",
                    cmds: 2,
                },
            ),
        ];
        let mut report = Report::default();
        report.ingest_events(&records, 0);
        let profile = report.profile.as_ref().expect("profile built");
        assert_eq!(profile.len(), 3);
        let text = report.render();
        assert!(text.contains("hot subtrees"), "{text}");
        assert!(text.contains("hot procedures"), "{text}");
        assert!(text.contains("hot pc prefixes"), "{text}");
        assert!(text.contains("(root)"), "{text}");
        assert!(text.contains("main"), "{text}");
        assert!(!text.contains("WARNING"), "{text}");
    }
}
