//! The metrics registry: named counters and log2-bucketed histograms.
//!
//! Metrics are **process-global** and always armed: recording is one or
//! two relaxed atomic operations, cheap enough to leave on in production
//! builds (the "histograms compiled, sinks off" zero-overhead mode). A
//! run attributes a slice of them to itself by snapshotting the registry
//! before and after and diffing ([`MetricsSnapshot::since`]).
//!
//! Handles are `&'static`: a recorder fetches its counter or histogram
//! once (at construction, or through a `OnceLock`) and the hot path
//! never touches the registry lock again.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Number of log2 buckets. Bucket `i` holds values whose bit length is
/// `i`, i.e. `v = 0 → 0`, `1 → 1`, `2..=3 → 2`, `4..=7 → 3`, … — enough
/// for the full `u64` range.
pub const BUCKETS: usize = 65;

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotone (well, two-way: gauges may subtract) atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Subtracts `n` (for gauges such as live-object counts).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed latency histogram with count/sum/max sidecars.
///
/// Value units are whatever the recorder chooses (the engine uses
/// microseconds for solver/memory latencies and nanoseconds for sampled
/// interner lookups); the rendering helpers take a unit label.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A zeroed histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index of a value: its bit length.
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (`0` for the zero bucket).
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << (i - 1)).saturating_mul(2).saturating_sub(1).max(1)
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets and sidecars.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`], diffable and renderable.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram::bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Maximum observed value (over the histogram's whole life — maxima
    /// are not diffable, so [`HistogramSnapshot::since`] keeps the later
    /// one).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The observations added since an earlier snapshot.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Merges two deltas bucket-wise.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i] + other.buckets[i];
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket upper bound at or below which fraction `p` (0..=1) of
    /// observations fall — a conservative percentile.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return Histogram::bucket_bound(i);
            }
        }
        self.max
    }

    /// Renders the non-empty bucket range as indented bar-chart lines,
    /// e.g. `  ≤8µs     ███████ 1234`. Empty histograms render nothing.
    pub fn render(&self, unit: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.count == 0 {
            return out;
        }
        let lo = self.buckets.iter().position(|&b| b > 0).unwrap_or(0);
        let hi = self
            .buckets
            .iter()
            .rposition(|&b| b > 0)
            .unwrap_or(BUCKETS - 1);
        let peak = *self.buckets.iter().max().unwrap();
        for i in lo..=hi {
            let b = self.buckets[i];
            let bar_len = if peak == 0 {
                0
            } else {
                ((b as f64 / peak as f64) * 24.0).ceil() as usize
            };
            writeln!(
                out,
                "  ≤{:<9} {:<24} {}",
                format!("{}{unit}", Histogram::bucket_bound(i)),
                "#".repeat(bar_len),
                b
            )
            .unwrap();
        }
        out
    }

    /// One-line summary: `n=…, p50 ≤…, p99 ≤…, max …`.
    pub fn summary(&self, unit: &str) -> String {
        format!(
            "n={} p50<={}{unit} p90<={}{unit} p99<={}{unit} max={}{unit}",
            self.count,
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.max,
        )
    }
}

/// The process-global name → metric registry.
///
/// Registration interns the handle (`Box::leak`) so readers and writers
/// share one `&'static` metric per name for the life of the process.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

impl Registry {
    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        lock_unpoisoned(&self.counters)
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        lock_unpoisoned(&self.histograms)
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// A point-in-time copy of every registered metric.
    ///
    /// Taken twice per exploration (before/after), so the copy is built
    /// into name-sorted vectors: one allocation per plane and a linear
    /// read of the atomics, no tree rebuilding.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock_unpoisoned(&self.counters)
                .iter()
                .map(|(&k, c)| (k, c.get()))
                .collect(),
            histograms: lock_unpoisoned(&self.histograms)
                .iter()
                .map(|(&k, h)| (k, h.snapshot()))
                .collect(),
        }
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// A point-in-time copy of the whole registry, diffable per name.
///
/// Backed by name-sorted vectors (the registry maps iterate in name
/// order): lookups are binary searches and [`MetricsSnapshot::since`]
/// subtracts in place, so attributing a run to a region costs two
/// vector builds and one linear pass.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    counters: Vec<(&'static str, u64)>,
    /// Histogram snapshots, sorted by name.
    histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The deltas since an earlier snapshot, subtracted in place.
    /// Metrics registered only in `self` keep their full value; gauges
    /// (which may shrink) saturate at zero.
    pub fn since(mut self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        // Metrics are only ever added to the registry, so `earlier` is a
        // sorted subsequence of `self` and a two-pointer merge aligns
        // the planes without any per-entry search.
        let mut j = 0;
        for (k, v) in self.counters.iter_mut() {
            while j < earlier.counters.len() && earlier.counters[j].0 < *k {
                j += 1;
            }
            if let Some(&(ek, ev)) = earlier.counters.get(j) {
                if ek == *k {
                    *v = v.saturating_sub(ev);
                }
            }
        }
        let mut j = 0;
        for (k, v) in self.histograms.iter_mut() {
            while j < earlier.histograms.len() && earlier.histograms[j].0 < *k {
                j += 1;
            }
            if let Some((ek, e)) = earlier.histograms.get(j) {
                if ek == k {
                    *v = v.since(e);
                }
            }
        }
        self
    }

    /// Iterates every counter as `(name, value)`, in name order — what
    /// the live-mode exporter walks to emit nonzero deltas.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|&(k, _)| k.cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// The named histogram's snapshot (empty when absent).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms
            .binary_search_by(|&(k, _)| k.cmp(name))
            .map(|i| self.histograms[i].1.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_cover_the_range() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX / 2] {
            assert!(
                v <= Histogram::bucket_bound(Histogram::bucket_of(v)),
                "{v} must fall at or under its bucket bound"
            );
        }
    }

    #[test]
    fn histogram_records_and_diffs() {
        let h = Histogram::new();
        h.record(3);
        h.record(5);
        h.record(1000);
        let a = h.snapshot();
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1008);
        assert_eq!(a.max, 1000);
        h.record(7);
        let d = h.snapshot().since(&a);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 7);
        assert_eq!(d.buckets[Histogram::bucket_of(7)], 1);
    }

    #[test]
    fn percentiles_are_conservative_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(2);
        }
        h.record(1 << 20);
        let s = h.snapshot();
        assert!(s.percentile(0.5) >= 2 && s.percentile(0.5) <= 3);
        assert!(s.percentile(1.0) >= 1 << 20);
    }

    #[test]
    fn registry_interns_handles() {
        let a = registry().counter("test.metric_registry_interning");
        let b = registry().counter("test.metric_registry_interning");
        assert!(std::ptr::eq(a, b));
        a.add(2);
        b.incr();
        assert_eq!(b.get(), 3);
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.metric_registry_interning"), 3);
    }

    #[test]
    fn snapshot_diffs_attribute_a_region() {
        let c = registry().counter("test.metric_region_probe");
        let before = registry().snapshot();
        c.add(5);
        let delta = registry().snapshot().since(&before);
        assert_eq!(delta.counter("test.metric_region_probe"), 5);
    }

    #[test]
    fn render_is_silent_when_empty_and_bounded_when_not() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().render("µs"), "");
        h.record(9);
        let lines = h.snapshot().render("µs");
        assert_eq!(lines.lines().count(), 1);
        assert!(
            lines.contains("≤15µs"),
            "9 lands in the ≤15 bucket: {lines}"
        );
    }
}
