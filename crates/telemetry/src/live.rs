//! Live mode: periodic snapshot-delta frames for a running exploration.
//!
//! When `GILLIAN_LIVE=path.jsonl` is set, both engines emit one JSON
//! frame roughly every `GILLIAN_LIVE_EVERY_MS` (default 250ms) with the
//! run's progress — finished paths, frontier size/depth, commands,
//! paths/sec over the last frame interval — plus the nonzero **counter
//! deltas** of the metrics registry since the previous frame. The
//! `gillian-top` binary tails the file and renders an in-place terminal
//! dashboard; the frame schema ([`LIVE_SCHEMA`]) is the precursor of the
//! future service-mode event stream, so it is versioned and validated.
//!
//! Disabled (the default) costs one `Option` branch per engine loop
//! iteration; no clock is read and nothing is written.
//!
//! Frame schema (`gillian-live-v1`), one JSON object per line:
//!
//! ```json
//! {"type":"live_frame","schema":"gillian-live-v1","seq":3,
//!  "ts_micros":1234,"wall_micros":750123,"paths":128,"pending":17,
//!  "depth":9,"cmds":40960,"paths_per_sec":170.7,"workers":4,
//!  "final":false,"counters":{"solver.sat_queries":512}}
//! ```

use crate::export;
use crate::json::ObjWriter;
use crate::metrics::{registry, MetricsSnapshot};
use crate::names;
use crate::now_micros;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Schema tag stamped into every live frame.
pub const LIVE_SCHEMA: &str = "gillian-live-v1";

/// Default frame interval when `GILLIAN_LIVE_EVERY_MS` is unset.
pub const DEFAULT_EVERY_MS: u64 = 250;

/// A progress sample the engine hands to [`LiveSink::tick`]. All fields
/// are cheap reads the engines already have (loop-local counts or
/// relaxed atomics).
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveStats {
    /// Paths recorded in the result so far.
    pub paths_finished: u64,
    /// Worklist/frontier size (pending paths).
    pub pending: u64,
    /// Depth hint: branch-trace length of the path last stepped (or the
    /// deepest pending item — engines pick what they can see cheaply).
    pub depth: u32,
    /// Commands executed so far.
    pub cmds: u64,
    /// Workers driving the run.
    pub workers: u32,
}

/// Cached `GILLIAN_LIVE` / `GILLIAN_LIVE_EVERY_MS` configuration.
fn env_config() -> &'static (Option<String>, u64) {
    static CONFIG: OnceLock<(Option<String>, u64)> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let path = std::env::var("GILLIAN_LIVE").ok().filter(|s| !s.is_empty());
        let every = std::env::var("GILLIAN_LIVE_EVERY_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&ms: &u64| ms > 0)
            .unwrap_or(DEFAULT_EVERY_MS);
        (path, every)
    })
}

/// The live JSONL sink of one exploration run. Owned by the engine (or
/// by the parallel engine's sampler thread); frames are flushed as they
/// are written so tailing tools see them promptly.
#[derive(Debug)]
pub struct LiveSink {
    file: std::fs::File,
    every: Duration,
    started: Instant,
    last_emit: Option<Instant>,
    prev_metrics: MetricsSnapshot,
    prev_paths: u64,
    seq: u64,
}

impl LiveSink {
    /// The sink `GILLIAN_LIVE` asks for, or `None` (the default).
    pub fn from_env() -> Option<LiveSink> {
        let (path, every_ms) = env_config();
        LiveSink::to_path(path.as_deref()?, *every_ms)
    }

    /// A sink writing frames to `path` every `every_ms` milliseconds.
    /// The process's first open truncates; later runs append.
    pub fn to_path(path: &str, every_ms: u64) -> Option<LiveSink> {
        let (file, _) = export::open_sink(path)?;
        Some(LiveSink {
            file,
            every: Duration::from_millis(every_ms.max(1)),
            started: Instant::now(),
            last_emit: None,
            prev_metrics: registry().snapshot(),
            prev_paths: 0,
            seq: 0,
        })
    }

    /// The configured frame interval.
    pub fn every(&self) -> Duration {
        self.every
    }

    /// Emits a frame when the interval has elapsed since the last one
    /// (the first tick emits immediately). Returns whether a frame was
    /// written.
    pub fn tick(&mut self, stats: &LiveStats) -> bool {
        let due = match self.last_emit {
            None => true,
            Some(at) => at.elapsed() >= self.every,
        };
        if due {
            self.emit(stats, false);
        }
        due
    }

    /// Emits the run's closing frame (`"final":true`) regardless of the
    /// interval, so a dashboard can show terminal state and exit.
    pub fn finish(&mut self, stats: &LiveStats) {
        self.emit(stats, true);
    }

    fn emit(&mut self, stats: &LiveStats, final_frame: bool) {
        let now = Instant::now();
        let dt = self
            .last_emit
            .map(|at| now.duration_since(at))
            .unwrap_or_else(|| self.started.elapsed());
        let snapshot = registry().snapshot();
        let delta = snapshot.clone().since(&self.prev_metrics);
        let paths_per_sec = if dt.as_secs_f64() > 0.0 {
            (stats.paths_finished.saturating_sub(self.prev_paths)) as f64 / dt.as_secs_f64()
        } else {
            0.0
        };
        let mut counters = ObjWriter::new();
        for (name, value) in delta.counters() {
            if value > 0 {
                counters.u64(name, value);
            }
        }
        let line = ObjWriter::new()
            .str("type", "live_frame")
            .str("schema", LIVE_SCHEMA)
            .u64("seq", self.seq)
            .u64("ts_micros", now_micros())
            .u64("wall_micros", self.started.elapsed().as_micros() as u64)
            .u64("paths", stats.paths_finished)
            .u64("pending", stats.pending)
            .u64("depth", stats.depth as u64)
            .u64("cmds", stats.cmds)
            .f64("paths_per_sec", (paths_per_sec * 10.0).round() / 10.0)
            .u64("workers", stats.workers as u64)
            .bool("final", final_frame)
            .raw("counters", &counters.finish())
            .finish();
        let _ = self.file.write_all(line.as_bytes());
        let _ = self.file.write_all(b"\n");
        let _ = self.file.flush();
        registry().counter(names::LIVE_FRAMES).incr();
        self.seq += 1;
        self.last_emit = Some(now);
        self.prev_metrics = snapshot;
        self.prev_paths = stats.paths_finished;
    }
}

/// Validates a live JSONL file: every line is a schema-tagged
/// `live_frame` with the required fields, seq numbers ascend per run
/// (they reset when a new run starts appending). Returns the frame
/// count.
pub fn validate_live(text: &str) -> Result<u64, String> {
    use crate::json::{self, Value};
    let mut frames = 0u64;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ty = v.get("type").and_then(Value::as_str);
        if ty != Some("live_frame") {
            return Err(format!("line {lineno}: not a live_frame ({ty:?})"));
        }
        let schema = v.get("schema").and_then(Value::as_str);
        if schema != Some(LIVE_SCHEMA) {
            return Err(format!("line {lineno}: unknown schema {schema:?}"));
        }
        for field in [
            "seq",
            "ts_micros",
            "wall_micros",
            "paths",
            "pending",
            "depth",
            "cmds",
            "paths_per_sec",
            "workers",
        ] {
            if v.get(field).is_none() {
                return Err(format!("line {lineno}: frame missing \"{field}\""));
            }
        }
        if !v.get("counters").map(Value::is_obj).unwrap_or(false) {
            return Err(format!("line {lineno}: frame missing counters object"));
        }
        frames += 1;
    }
    if frames == 0 {
        return Err("live file contains no frames".into());
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("gillian-live-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn frames_write_validate_and_delta() {
        let path = tmp("frames.jsonl");
        let mut sink = LiveSink::to_path(&path, 1000).expect("sink opens");
        let c = registry().counter("test.live_probe");
        c.add(3);
        assert!(sink.tick(&LiveStats {
            paths_finished: 2,
            pending: 5,
            depth: 3,
            cmds: 40,
            workers: 1,
        }));
        // Second tick inside the interval: suppressed.
        assert!(!sink.tick(&LiveStats::default()));
        c.add(4);
        sink.finish(&LiveStats {
            paths_finished: 6,
            pending: 0,
            depth: 0,
            cmds: 99,
            workers: 1,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_live(&text).unwrap(), 2);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"test.live_probe\":3"));
        assert!(
            lines[1].contains("\"test.live_probe\":4"),
            "second frame carries only the delta: {}",
            lines[1]
        );
        assert!(lines[1].contains("\"final\":true"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validation_rejects_malformed_frames() {
        assert!(validate_live("").is_err());
        assert!(validate_live("{\"type\":\"nope\"}\n").is_err());
        assert!(
            validate_live(&format!(
                "{{\"type\":\"live_frame\",\"schema\":\"{LIVE_SCHEMA}\"}}\n"
            ))
            .is_err(),
            "missing required fields"
        );
    }
}
