//! `gillian-top` — a live terminal dashboard for a running exploration.
//!
//! Tails the `GILLIAN_LIVE` JSONL file (snapshot-delta frames emitted by
//! the engines, schema `gillian-live-v1`) and renders an in-place
//! dashboard: paths/sec, frontier size and depth, command throughput,
//! and the hottest counter deltas of the last frame. Zero dependencies —
//! plain ANSI escapes, the crate's own JSON parser.
//!
//! Usage: `gillian-top [--once] [path.jsonl]`
//!
//! The path defaults to `$GILLIAN_LIVE`. `--once` reads whatever frames
//! exist, renders the latest state once (without escapes), and exits —
//! what CI uses to assert the live sink worked. In follow mode the
//! dashboard exits when it sees a frame with `"final":true` after the
//! file stops growing, or on Ctrl-C.

use gillian_telemetry::json::{self, Value};
use gillian_telemetry::live::LIVE_SCHEMA;
use std::time::Duration;

/// One parsed live frame (only what the dashboard shows).
#[derive(Clone, Debug, Default)]
struct Frame {
    seq: u64,
    wall_micros: u64,
    paths: u64,
    pending: u64,
    depth: u64,
    cmds: u64,
    paths_per_sec: f64,
    workers: u64,
    is_final: bool,
    counters: Vec<(String, u64)>,
}

fn parse_frame(line: &str) -> Option<Frame> {
    let v = json::parse(line).ok()?;
    if v.get("type").and_then(Value::as_str) != Some("live_frame")
        || v.get("schema").and_then(Value::as_str) != Some(LIVE_SCHEMA)
    {
        return None;
    }
    let num = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    let mut counters: Vec<(String, u64)> = match v.get("counters") {
        Some(Value::Obj(m)) => m
            .iter()
            .filter_map(|(k, c)| c.as_u64().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    };
    counters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Some(Frame {
        seq: num("seq"),
        wall_micros: num("wall_micros"),
        paths: num("paths"),
        pending: num("pending"),
        depth: num("depth"),
        cmds: num("cmds"),
        paths_per_sec: v
            .get("paths_per_sec")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        workers: num("workers"),
        is_final: matches!(v.get("final"), Some(Value::Bool(true))),
        counters,
    })
}

/// Renders the dashboard for the latest frame plus a paths/sec history
/// sparkbar over recent frames.
fn render(frame: &Frame, history: &[f64]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gillian-top · frame {} · wall {:.1}s · {} worker(s){}",
        frame.seq,
        frame.wall_micros as f64 / 1e6,
        frame.workers,
        if frame.is_final { " · FINISHED" } else { "" }
    );
    let _ = writeln!(
        out,
        "paths {:>8} done · {:>6} pending · depth {:>3} · {:>10} cmds",
        frame.paths, frame.pending, frame.depth, frame.cmds
    );
    let peak = history.iter().cloned().fold(1.0_f64, f64::max);
    let bars: String = history
        .iter()
        .map(|&r| {
            const LEVELS: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
            let i = ((r / peak) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[i.min(LEVELS.len() - 1)]
        })
        .collect();
    let _ = writeln!(
        out,
        "rate  {:>8.1} paths/s  [{bars:>30}]  peak {peak:.1}",
        frame.paths_per_sec
    );
    if !frame.counters.is_empty() {
        let _ = writeln!(out, "hot counters (delta since last frame):");
        for (name, value) in frame.counters.iter().take(8) {
            let _ = writeln!(out, "  {name:<36} {value:>12}");
        }
    }
    out
}

fn main() {
    let mut once = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--once" => once = true,
            "--help" | "-h" => {
                println!(
                    "usage: gillian-top [--once] [live.jsonl]  (path defaults to $GILLIAN_LIVE)"
                );
                return;
            }
            other => path = Some(other.to_string()),
        }
    }
    let Some(path) = path.or_else(|| std::env::var("GILLIAN_LIVE").ok().filter(|s| !s.is_empty()))
    else {
        eprintln!("gillian-top: no live file (pass a path or set GILLIAN_LIVE)");
        std::process::exit(2);
    };

    let mut offset = 0usize;
    let mut latest: Option<Frame> = None;
    let mut history: Vec<f64> = Vec::new();
    let mut idle_polls = 0u32;
    loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            // A later run truncates the file on its first write: restart.
            if text.len() < offset {
                offset = 0;
                history.clear();
            }
            let fresh = &text[offset..];
            // Only consume complete lines; a frame mid-write stays for
            // the next poll.
            let consumed = fresh.rfind('\n').map(|i| i + 1).unwrap_or(0);
            for line in fresh[..consumed].lines() {
                if let Some(frame) = parse_frame(line) {
                    history.push(frame.paths_per_sec);
                    if history.len() > 30 {
                        history.remove(0);
                    }
                    latest = Some(frame);
                }
            }
            if consumed > 0 {
                idle_polls = 0;
            } else {
                idle_polls += 1;
            }
            offset += consumed;
        }
        if once {
            break;
        }
        if let Some(frame) = &latest {
            // In-place redraw: home the cursor, clear below, repaint.
            print!("\x1b[H\x1b[2J{}", render(frame, &history));
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            if frame.is_final && idle_polls >= 2 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    match &latest {
        Some(frame) => {
            if once {
                print!("{}", render(frame, &history));
            } else {
                println!("gillian-top: run finished after {} frame(s)", frame.seq + 1);
            }
        }
        None => {
            eprintln!("gillian-top: {path}: no live frames found");
            std::process::exit(1);
        }
    }
}
