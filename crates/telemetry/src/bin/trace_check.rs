//! Validates a Gillian JSONL trace file (the `GILLIAN_TRACE` output).
//!
//! Usage: `trace_check <trace.jsonl>`
//!
//! Exits 0 and prints a one-line summary when the trace is schema-valid;
//! exits 1 with the first violation otherwise. CI runs this against the
//! traced smoke job's output.

use gillian_telemetry::trace_check_summary;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check <trace.jsonl>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match trace_check_summary(&text) {
        Ok(summary) => println!("{summary}"),
        Err(e) => {
            eprintln!("trace_check: {path}: INVALID: {e}");
            std::process::exit(1);
        }
    }
}
