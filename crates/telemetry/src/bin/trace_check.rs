//! Validates Gillian trace files.
//!
//! Usage:
//!   `trace_check <trace.jsonl>`          — JSONL trace (`GILLIAN_TRACE`)
//!   `trace_check --chrome <trace.json>`  — Chrome trace (`GILLIAN_TRACE_CHROME`):
//!                                          checks the newline-per-frame
//!                                          invariant appended runs must keep
//!   `trace_check --live <live.jsonl>`    — live frames (`GILLIAN_LIVE`)
//!
//! Exits 0 and prints a one-line summary when the file is schema-valid;
//! exits 1 with the first violation otherwise. CI runs this against the
//! traced jobs' outputs.

use gillian_telemetry::live::validate_live;
use gillian_telemetry::{trace_check_summary, validate_chrome};

fn main() {
    let mut mode = "jsonl";
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--chrome" => mode = "chrome",
            "--live" => mode = "live",
            other => path = Some(other.to_string()),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_check [--chrome|--live] <file>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let result = match mode {
        "chrome" => validate_chrome(&text)
            .map(|frames| format!("chrome trace OK: {frames} frame(s), newline-terminated")),
        "live" => validate_live(&text).map(|frames| format!("live file OK: {frames} frame(s)")),
        _ => trace_check_summary(&text),
    };
    match result {
        Ok(summary) => println!("{summary}"),
        Err(e) => {
            eprintln!("trace_check: {path}: INVALID: {e}");
            std::process::exit(1);
        }
    }
}
