//! Trace sinks and validation.
//!
//! Two on-disk formats, both written at explore end from the merged
//! journal (never from the hot path):
//!
//! - **JSONL** (`GILLIAN_TRACE=path.jsonl`): one JSON object per line.
//!   A run is bracketed by `run_started` / `run_finished` records; the
//!   first run of a process truncates the file, later runs append, so a
//!   binary that explores several programs produces one multi-run trace.
//! - **Chrome `trace_event`** (`GILLIAN_TRACE_CHROME=path.json`): the
//!   JSON-array flavour loadable in `about://tracing` / Perfetto. Timed
//!   events (sat queries, memory actions) become complete (`X`) slices
//!   on their worker's track; lifecycle events become instants.
//!
//! [`validate_jsonl`] re-parses a JSONL trace and checks the schema —
//! the CI `trace_check` binary and the round-trip tests both use it.

use crate::journal::{path_string, Event, EventRecord, SHARED_WORKER};
use crate::json::{self, ObjWriter, Value};
use crate::now_micros;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Schema tag stamped into every `run_started` record.
pub const SCHEMA: &str = "gillian-trace-v1";

/// Paths this process has already opened (first open truncates, the
/// rest append — one trace file accumulates all runs of a process).
fn opened_paths() -> &'static Mutex<BTreeSet<String>> {
    static OPENED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    OPENED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Opens the sink at `path`, returning the file and whether this is the
/// process's first write there (the file was truncated).
fn open_sink(path: &str) -> Option<(std::fs::File, bool)> {
    let fresh = {
        let mut opened = opened_paths()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        opened.insert(path.to_string())
    };
    std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(fresh)
        .append(!fresh)
        .open(path)
        .ok()
        .map(|f| (f, fresh))
}

/// Serializes one journal record as a JSONL line (no trailing newline).
pub fn event_line(rec: &EventRecord) -> String {
    let mut w = ObjWriter::new();
    w.str("type", rec.event.kind())
        .u64("ts_micros", rec.ts_micros)
        .u64("seq", rec.seq);
    if rec.worker == SHARED_WORKER {
        w.str("worker", "shared");
    } else {
        w.u64("worker", rec.worker as u64);
    }
    match &rec.event {
        Event::PathStarted { path } => {
            w.str("path", &path_string(path));
        }
        Event::PathForked { parent, arms } => {
            w.str("path", &path_string(parent))
                .u64("arms", *arms as u64);
        }
        Event::PathFinished {
            path,
            outcome,
            cmds,
        } => {
            w.str("path", &path_string(path))
                .str("outcome", outcome)
                .u64("cmds", *cmds);
        }
        Event::SatQuery {
            key,
            conjuncts,
            verdict,
            micros,
            cache_hit,
            pc,
        } => {
            // Keys are full 64-bit hashes; JSON numbers only hold 2^53
            // exactly, so emit them as hex strings.
            w.str("key", &format!("{key:016x}"))
                .u64("conjuncts", *conjuncts as u64)
                .str("verdict", verdict.as_str())
                .u64("micros", *micros)
                .bool("cache_hit", *cache_hit);
            if !pc.is_empty() {
                w.str("pc", pc);
            }
        }
        Event::ActionExec {
            lang,
            action,
            branches,
            micros,
        } => {
            w.str("lang", lang)
                .str("action", action)
                .u64("branches", *branches as u64)
                .u64("micros", *micros);
        }
        Event::DeadlineHit { path } => {
            w.str("path", &path_string(path));
        }
        Event::PanicIsolated { path, payload } => {
            w.str("path", &path_string(path)).str("payload", payload);
        }
        Event::CheckpointWritten {
            pending,
            completed,
            bytes,
            micros,
        } => {
            w.u64("pending", *pending as u64)
                .u64("completed", *completed as u64)
                .u64("bytes", *bytes)
                .u64("micros", *micros);
        }
        Event::Resumed { pending, completed } => {
            w.u64("pending", *pending as u64)
                .u64("completed", *completed as u64);
        }
        Event::FaultInjected { point, fault } => {
            w.u64("point", *point).str("fault", fault);
        }
    }
    w.finish()
}

/// Appends one run's merged journal to the JSONL sink at `path`
/// (truncating on the process's first write there). IO errors are
/// swallowed: tracing must never fail a run.
pub fn append_jsonl(path: &str, records: &[EventRecord], dropped: u64) {
    let Some((mut f, _)) = open_sink(path) else {
        return;
    };
    let mut buf = String::with_capacity(records.len() * 96 + 256);
    buf.push_str(
        &ObjWriter::new()
            .str("type", "run_started")
            .u64("ts_micros", now_micros())
            .str("schema", SCHEMA)
            .finish(),
    );
    buf.push('\n');
    for rec in records {
        buf.push_str(&event_line(rec));
        buf.push('\n');
    }
    buf.push_str(
        &ObjWriter::new()
            .str("type", "run_finished")
            .u64("ts_micros", now_micros())
            .u64("events", records.len() as u64)
            .u64("dropped", dropped)
            .finish(),
    );
    buf.push('\n');
    let _ = f.write_all(buf.as_bytes());
}

/// Appends one run's merged journal to a Chrome `trace_event` file.
/// Uses the JSON-array flavour without the closing bracket, which the
/// trace viewers accept — that is what makes appending runs possible.
/// The opening bracket is written only on the process's first write:
/// later runs continue the same event array.
pub fn write_chrome_trace(path: &str, records: &[EventRecord]) {
    let Some((mut f, fresh)) = open_sink(path) else {
        return;
    };
    let mut buf = String::with_capacity(records.len() * 128 + 16);
    if fresh {
        buf.push_str("[\n");
    }
    for rec in records {
        let tid = if rec.worker == SHARED_WORKER {
            999
        } else {
            rec.worker as u64
        };
        let mut w = ObjWriter::new();
        match &rec.event {
            Event::SatQuery {
                verdict,
                micros,
                cache_hit,
                conjuncts,
                ..
            } => {
                w.str("name", if *cache_hit { "sat(cache)" } else { "sat" })
                    .str("cat", "solver")
                    .str("ph", "X")
                    .u64("ts", rec.ts_micros.saturating_sub(*micros))
                    .u64("dur", (*micros).max(1))
                    .u64("pid", 1)
                    .u64("tid", tid)
                    .raw(
                        "args",
                        &ObjWriter::new()
                            .str("verdict", verdict.as_str())
                            .u64("conjuncts", *conjuncts as u64)
                            .finish(),
                    );
            }
            Event::ActionExec {
                lang,
                action,
                branches,
                micros,
            } => {
                w.str("name", action)
                    .str("cat", "memory")
                    .str("ph", "X")
                    .u64("ts", rec.ts_micros.saturating_sub(*micros))
                    .u64("dur", (*micros).max(1))
                    .u64("pid", 1)
                    .u64("tid", tid)
                    .raw(
                        "args",
                        &ObjWriter::new()
                            .str("lang", lang)
                            .u64("branches", *branches as u64)
                            .finish(),
                    );
            }
            other => {
                let path_s = other.path().map(|p| path_string(p)).unwrap_or_default();
                w.str("name", other.kind())
                    .str("cat", "path")
                    .str("ph", "i")
                    .str("s", "t")
                    .u64("ts", rec.ts_micros)
                    .u64("pid", 1)
                    .u64("tid", tid)
                    .raw("args", &ObjWriter::new().str("path", &path_s).finish());
            }
        }
        buf.push_str(&w.finish());
        buf.push_str(",\n");
    }
    let _ = f.write_all(buf.as_bytes());
}

/// What a validated JSONL trace contained.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Complete `run_started`…`run_finished` brackets.
    pub runs: u64,
    /// Event records (excluding run brackets).
    pub events: u64,
    /// `path_finished` records.
    pub paths_finished: u64,
    /// `sat_query` records.
    pub sat_queries: u64,
    /// Ring-buffer drops reported by `run_finished` records.
    pub dropped: u64,
    /// Record counts by `type`.
    pub kinds: BTreeMap<String, u64>,
}

const EVENT_KINDS: &[&str] = &[
    "path_started",
    "path_forked",
    "path_finished",
    "sat_query",
    "action_exec",
    "deadline_hit",
    "panic_isolated",
    "checkpoint_written",
    "resumed",
    "fault_injected",
];

/// Validates a JSONL trace: every line parses as a JSON object, carries
/// a known `type`, and has that type's required fields; runs bracket
/// properly. Returns what the trace contained, or the first violation
/// with its line number.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut in_run = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if !v.is_obj() {
            return Err(format!("line {lineno}: not a JSON object"));
        }
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing \"type\""))?
            .to_string();
        *summary.kinds.entry(ty.clone()).or_insert(0) += 1;
        let need = |field: &str| -> Result<(), String> {
            if v.get(field).is_some() {
                Ok(())
            } else {
                Err(format!("line {lineno}: {ty} missing \"{field}\""))
            }
        };
        match ty.as_str() {
            "run_started" => {
                if in_run {
                    return Err(format!("line {lineno}: nested run_started"));
                }
                let schema = v.get("schema").and_then(Value::as_str);
                if schema != Some(SCHEMA) {
                    return Err(format!("line {lineno}: unknown schema {schema:?}"));
                }
                in_run = true;
            }
            "run_finished" => {
                if !in_run {
                    return Err(format!("line {lineno}: run_finished outside a run"));
                }
                need("events")?;
                summary.dropped += v.get("dropped").and_then(Value::as_u64).unwrap_or(0);
                summary.runs += 1;
                in_run = false;
            }
            kind if EVENT_KINDS.contains(&kind) => {
                if !in_run {
                    return Err(format!("line {lineno}: {kind} outside a run"));
                }
                need("ts_micros")?;
                summary.events += 1;
                match kind {
                    "path_finished" => {
                        need("path")?;
                        need("outcome")?;
                        need("cmds")?;
                        summary.paths_finished += 1;
                    }
                    "path_started" | "deadline_hit" => need("path")?,
                    "path_forked" => {
                        need("path")?;
                        need("arms")?;
                    }
                    "sat_query" => {
                        need("key")?;
                        need("micros")?;
                        let verdict = v.get("verdict").and_then(Value::as_str);
                        if !matches!(verdict, Some("sat" | "unsat" | "unknown")) {
                            return Err(format!(
                                "line {lineno}: bad sat_query verdict {verdict:?}"
                            ));
                        }
                        summary.sat_queries += 1;
                    }
                    "action_exec" => {
                        need("lang")?;
                        need("action")?;
                        need("micros")?;
                    }
                    "panic_isolated" => {
                        need("path")?;
                        need("payload")?;
                    }
                    "checkpoint_written" => {
                        need("pending")?;
                        need("completed")?;
                        need("bytes")?;
                        need("micros")?;
                    }
                    "resumed" => {
                        need("pending")?;
                        need("completed")?;
                    }
                    "fault_injected" => {
                        need("point")?;
                        let fault = v.get("fault").and_then(Value::as_str);
                        if !matches!(
                            fault,
                            Some("path_panic" | "solver_unknown" | "sat_latency" | "kill")
                        ) {
                            return Err(format!(
                                "line {lineno}: bad fault_injected kind {fault:?}"
                            ));
                        }
                    }
                    _ => {}
                }
            }
            other => return Err(format!("line {lineno}: unknown type \"{other}\"")),
        }
    }
    if in_run {
        return Err("trace ends inside a run (missing run_finished)".into());
    }
    if summary.runs == 0 {
        return Err("trace contains no complete run".into());
    }
    Ok(summary)
}

/// A one-paragraph human rendering of [`validate_jsonl`]'s result — what
/// the `trace_check` binary prints.
pub fn trace_check_summary(text: &str) -> Result<String, String> {
    let s = validate_jsonl(text)?;
    let mut kinds: Vec<String> = s
        .kinds
        .iter()
        .filter(|(k, _)| EVENT_KINDS.contains(&k.as_str()))
        .map(|(k, n)| format!("{k}={n}"))
        .collect();
    kinds.sort();
    Ok(format!(
        "trace OK: {} run(s), {} event(s), {} path(s) finished, {} sat quer(ies), {} dropped [{}]",
        s.runs,
        s.events,
        s.paths_finished,
        s.sat_queries,
        s.dropped,
        kinds.join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Verdict;

    fn rec(event: Event) -> EventRecord {
        EventRecord {
            ts_micros: 42,
            worker: 1,
            seq: 0,
            event,
        }
    }

    #[test]
    fn jsonl_lines_validate() {
        let records = vec![
            rec(Event::PathStarted { path: vec![] }),
            rec(Event::PathForked {
                parent: vec![],
                arms: 2,
            }),
            rec(Event::SatQuery {
                key: 0xdead_beef,
                conjuncts: 3,
                verdict: Verdict::Unsat,
                micros: 17,
                cache_hit: false,
                pc: "(x > 0)".into(),
            }),
            rec(Event::ActionExec {
                lang: "while",
                action: "store".into(),
                branches: 1,
                micros: 2,
            }),
            rec(Event::PathFinished {
                path: vec![0],
                outcome: "normal",
                cmds: 9,
            }),
        ];
        let mut text = String::new();
        text.push_str(
            &ObjWriter::new()
                .str("type", "run_started")
                .u64("ts_micros", 0)
                .str("schema", SCHEMA)
                .finish(),
        );
        text.push('\n');
        for r in &records {
            text.push_str(&event_line(r));
            text.push('\n');
        }
        text.push_str(
            &ObjWriter::new()
                .str("type", "run_finished")
                .u64("ts_micros", 99)
                .u64("events", records.len() as u64)
                .u64("dropped", 0)
                .finish(),
        );
        text.push('\n');
        let summary = validate_jsonl(&text).expect("valid");
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.events, 5);
        assert_eq!(summary.paths_finished, 1);
        assert_eq!(summary.sat_queries, 1);
        assert!(trace_check_summary(&text).unwrap().contains("trace OK"));
    }

    #[test]
    fn validation_rejects_schema_violations() {
        assert!(validate_jsonl("").is_err(), "no runs");
        assert!(validate_jsonl("not json\n").is_err());
        assert!(
            validate_jsonl("{\"type\":\"path_started\",\"ts_micros\":1,\"path\":\"\"}\n").is_err(),
            "event outside a run"
        );
        let missing_verdict = format!(
            "{}\n{}\n{}\n",
            ObjWriter::new()
                .str("type", "run_started")
                .u64("ts_micros", 0)
                .str("schema", SCHEMA)
                .finish(),
            ObjWriter::new()
                .str("type", "sat_query")
                .u64("ts_micros", 1)
                .str("key", "0")
                .u64("micros", 1)
                .finish(),
            ObjWriter::new()
                .str("type", "run_finished")
                .u64("ts_micros", 2)
                .u64("events", 1)
                .finish(),
        );
        assert!(validate_jsonl(&missing_verdict).is_err());
    }
}
