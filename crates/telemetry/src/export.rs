//! Trace sinks and validation.
//!
//! Two on-disk formats, both written at explore end from the merged
//! journal (never from the hot path):
//!
//! - **JSONL** (`GILLIAN_TRACE=path.jsonl`): one JSON object per line.
//!   A run is bracketed by `run_started` / `run_finished` records; the
//!   first run of a process truncates the file, later runs append, so a
//!   binary that explores several programs produces one multi-run trace.
//! - **Chrome `trace_event`** (`GILLIAN_TRACE_CHROME=path.json`): the
//!   JSON-array flavour loadable in `about://tracing` / Perfetto. Timed
//!   events (sat queries, memory actions) become complete (`X`) slices
//!   on their worker's track; lifecycle events become instants.
//!
//! [`validate_jsonl`] re-parses a JSONL trace and checks the schema —
//! the CI `trace_check` binary and the round-trip tests both use it.

use crate::journal::{path_string, Event, EventRecord, SHARED_WORKER};
use crate::json::{self, ObjWriter, Value};
use crate::now_micros;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Schema tag stamped into every `run_started` record.
pub const SCHEMA: &str = "gillian-trace-v1";

/// Paths this process has already opened (first open truncates, the
/// rest append — one trace file accumulates all runs of a process).
fn opened_paths() -> &'static Mutex<BTreeSet<String>> {
    static OPENED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    OPENED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Opens the sink at `path`, returning the file and whether this is the
/// process's first write there (the file was truncated).
pub(crate) fn open_sink(path: &str) -> Option<(std::fs::File, bool)> {
    let fresh = {
        let mut opened = opened_paths()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        opened.insert(path.to_string())
    };
    std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(fresh)
        .append(!fresh)
        .open(path)
        .ok()
        .map(|f| (f, fresh))
}

/// Serializes one journal record as a JSONL line (no trailing newline).
pub fn event_line(rec: &EventRecord) -> String {
    let mut w = ObjWriter::new();
    w.str("type", rec.event.kind())
        .u64("ts_micros", rec.ts_micros)
        .u64("seq", rec.seq);
    if rec.worker == SHARED_WORKER {
        w.str("worker", "shared");
    } else {
        w.u64("worker", rec.worker as u64);
    }
    match &rec.event {
        Event::PathStarted { path } => {
            w.str("path", &path_string(path));
        }
        Event::PathForked { parent, arms } => {
            w.str("path", &path_string(parent))
                .u64("arms", *arms as u64);
        }
        Event::PathFinished {
            path,
            outcome,
            cmds,
        } => {
            w.str("path", &path_string(path))
                .str("outcome", outcome)
                .u64("cmds", *cmds);
        }
        Event::SatQuery {
            key,
            conjuncts,
            verdict,
            micros,
            cache_hit,
            pc,
        } => {
            // Keys are full 64-bit hashes; JSON numbers only hold 2^53
            // exactly, so emit them as hex strings.
            w.str("key", &format!("{key:016x}"))
                .u64("conjuncts", *conjuncts as u64)
                .str("verdict", verdict.as_str())
                .u64("micros", *micros)
                .bool("cache_hit", *cache_hit);
            if let Some(ctx) = &rec.path_ctx {
                w.str("path", &path_string(ctx));
            }
            if !pc.is_empty() {
                w.str("pc", pc);
            }
        }
        Event::ActionExec {
            lang,
            action,
            branches,
            micros,
        } => {
            w.str("lang", lang)
                .str("action", action)
                .u64("branches", *branches as u64)
                .u64("micros", *micros);
            if let Some(ctx) = &rec.path_ctx {
                w.str("path", &path_string(ctx));
            }
        }
        Event::ProcTime {
            path,
            stack,
            cmds,
            micros,
        } => {
            w.str("path", &path_string(path))
                .str("stack", stack)
                .u64("cmds", *cmds)
                .u64("micros", *micros);
        }
        Event::DeadlineHit { path } => {
            w.str("path", &path_string(path));
        }
        Event::PanicIsolated { path, payload } => {
            w.str("path", &path_string(path)).str("payload", payload);
        }
        Event::CheckpointWritten {
            pending,
            completed,
            bytes,
            micros,
        } => {
            w.u64("pending", *pending as u64)
                .u64("completed", *completed as u64)
                .u64("bytes", *bytes)
                .u64("micros", *micros);
        }
        Event::Resumed { pending, completed } => {
            w.u64("pending", *pending as u64)
                .u64("completed", *completed as u64);
        }
        Event::FaultInjected { point, fault } => {
            w.u64("point", *point).str("fault", fault);
        }
    }
    w.finish()
}

/// Appends one run's merged journal to the JSONL sink at `path`
/// (truncating on the process's first write there). IO errors are
/// swallowed: tracing must never fail a run.
pub fn append_jsonl(path: &str, records: &[EventRecord], dropped: u64) {
    let Some((mut f, _)) = open_sink(path) else {
        return;
    };
    let mut buf = String::with_capacity(records.len() * 96 + 256);
    buf.push_str(
        &ObjWriter::new()
            .str("type", "run_started")
            .u64("ts_micros", now_micros())
            .str("schema", SCHEMA)
            .finish(),
    );
    buf.push('\n');
    for rec in records {
        buf.push_str(&event_line(rec));
        buf.push('\n');
    }
    buf.push_str(
        &ObjWriter::new()
            .str("type", "run_finished")
            .u64("ts_micros", now_micros())
            .u64("events", records.len() as u64)
            .u64("dropped", dropped)
            .finish(),
    );
    buf.push('\n');
    let _ = f.write_all(buf.as_bytes());
}

/// Appends one run's folded flamegraph stacks (already rendered by
/// `tree::ExploreTree::folded`) to the sink at `path` (truncating on the
/// process's first write there). Repeated stacks across runs are fine:
/// the collapsed-stacks format sums duplicate lines.
pub fn append_folded(path: &str, folded: &str) {
    let Some((mut f, _)) = open_sink(path) else {
        return;
    };
    let _ = f.write_all(folded.as_bytes());
    if !folded.is_empty() && !folded.ends_with('\n') {
        let _ = f.write_all(b"\n");
    }
}

/// Appends one run's merged journal to a Chrome `trace_event` file.
/// Uses the JSON-array flavour without the closing bracket, which the
/// trace viewers accept — that is what makes appending runs possible.
/// The opening bracket is written only on the process's first write:
/// later runs continue the same event array.
pub fn write_chrome_trace(path: &str, records: &[EventRecord]) {
    let Some((mut f, fresh)) = open_sink(path) else {
        return;
    };
    let mut buf = String::with_capacity(records.len() * 128 + 16);
    if fresh {
        buf.push_str("[\n");
    }
    for rec in records {
        let tid = if rec.worker == SHARED_WORKER {
            999
        } else {
            rec.worker as u64
        };
        let mut w = ObjWriter::new();
        match &rec.event {
            Event::SatQuery {
                verdict,
                micros,
                cache_hit,
                conjuncts,
                ..
            } => {
                w.str("name", if *cache_hit { "sat(cache)" } else { "sat" })
                    .str("cat", "solver")
                    .str("ph", "X")
                    .u64("ts", rec.ts_micros.saturating_sub(*micros))
                    .u64("dur", (*micros).max(1))
                    .u64("pid", 1)
                    .u64("tid", tid)
                    .raw(
                        "args",
                        &ObjWriter::new()
                            .str("verdict", verdict.as_str())
                            .u64("conjuncts", *conjuncts as u64)
                            .finish(),
                    );
            }
            Event::ActionExec {
                lang,
                action,
                branches,
                micros,
            } => {
                w.str("name", action)
                    .str("cat", "memory")
                    .str("ph", "X")
                    .u64("ts", rec.ts_micros.saturating_sub(*micros))
                    .u64("dur", (*micros).max(1))
                    .u64("pid", 1)
                    .u64("tid", tid)
                    .raw(
                        "args",
                        &ObjWriter::new()
                            .str("lang", lang)
                            .u64("branches", *branches as u64)
                            .finish(),
                    );
            }
            Event::ProcTime {
                path,
                stack,
                cmds,
                micros,
            } => {
                w.str("name", stack.rsplit(';').next().unwrap_or(stack))
                    .str("cat", "exec")
                    .str("ph", "X")
                    .u64("ts", rec.ts_micros.saturating_sub(*micros))
                    .u64("dur", (*micros).max(1))
                    .u64("pid", 1)
                    .u64("tid", tid)
                    .raw(
                        "args",
                        &ObjWriter::new()
                            .str("path", &path_string(path))
                            .str("stack", stack)
                            .u64("cmds", *cmds)
                            .finish(),
                    );
            }
            other => {
                let path_s = other.path().map(|p| path_string(p)).unwrap_or_default();
                w.str("name", other.kind())
                    .str("cat", "path")
                    .str("ph", "i")
                    .str("s", "t")
                    .u64("ts", rec.ts_micros)
                    .u64("pid", 1)
                    .u64("tid", tid)
                    .raw("args", &ObjWriter::new().str("path", &path_s).finish());
            }
        }
        buf.push_str(&w.finish());
        buf.push_str(",\n");
    }
    // Invariant tailing tools rely on: every appended frame (and the
    // whole write) ends at a line boundary, so a reader never sees a
    // torn JSON object at the end of the file.
    if !buf.ends_with('\n') && !buf.is_empty() {
        buf.push('\n');
    }
    let _ = f.write_all(buf.as_bytes());
}

/// Validates a Chrome `trace_event` file as this exporter writes it:
/// an opening `[` line, then one complete `{…},` frame per line — the
/// newline-per-frame invariant appended runs must keep so tailing tools
/// see frame boundaries. Returns the frame count.
pub fn validate_chrome(text: &str) -> Result<u64, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == "[" => {}
        other => {
            return Err(format!(
                "line 1: expected opening '[', got {:?}",
                other.map(|(_, l)| l).unwrap_or("")
            ))
        }
    }
    if !text.ends_with('\n') {
        return Err("file does not end with a newline (torn final frame)".into());
    }
    let mut frames = 0u64;
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line == "]" {
            continue;
        }
        let frame = line.strip_suffix(',').ok_or_else(|| {
            format!("line {lineno}: frame does not end with ',' (torn or joined frames)")
        })?;
        let v = json::parse(frame).map_err(|e| format!("line {lineno}: {e}"))?;
        if !v.is_obj() {
            return Err(format!("line {lineno}: frame is not a JSON object"));
        }
        for field in ["name", "ph", "ts", "pid", "tid"] {
            if v.get(field).is_none() {
                return Err(format!("line {lineno}: frame missing \"{field}\""));
            }
        }
        frames += 1;
    }
    if frames == 0 {
        return Err("chrome trace contains no frames".into());
    }
    Ok(frames)
}

/// What a validated JSONL trace contained.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Complete `run_started`…`run_finished` brackets.
    pub runs: u64,
    /// Event records (excluding run brackets).
    pub events: u64,
    /// `path_finished` records.
    pub paths_finished: u64,
    /// `sat_query` records.
    pub sat_queries: u64,
    /// Ring-buffer drops reported by `run_finished` records.
    pub dropped: u64,
    /// Record counts by `type`.
    pub kinds: BTreeMap<String, u64>,
}

const EVENT_KINDS: &[&str] = &[
    "path_started",
    "path_forked",
    "path_finished",
    "sat_query",
    "action_exec",
    "proc_time",
    "deadline_hit",
    "panic_isolated",
    "checkpoint_written",
    "resumed",
    "fault_injected",
];

/// Validates a JSONL trace: every line parses as a JSON object, carries
/// a known `type`, and has that type's required fields; runs bracket
/// properly. Returns what the trace contained, or the first violation
/// with its line number.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut in_run = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if !v.is_obj() {
            return Err(format!("line {lineno}: not a JSON object"));
        }
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing \"type\""))?
            .to_string();
        *summary.kinds.entry(ty.clone()).or_insert(0) += 1;
        let need = |field: &str| -> Result<(), String> {
            if v.get(field).is_some() {
                Ok(())
            } else {
                Err(format!("line {lineno}: {ty} missing \"{field}\""))
            }
        };
        match ty.as_str() {
            "run_started" => {
                if in_run {
                    return Err(format!("line {lineno}: nested run_started"));
                }
                let schema = v.get("schema").and_then(Value::as_str);
                if schema != Some(SCHEMA) {
                    return Err(format!("line {lineno}: unknown schema {schema:?}"));
                }
                in_run = true;
            }
            "run_finished" => {
                if !in_run {
                    return Err(format!("line {lineno}: run_finished outside a run"));
                }
                need("events")?;
                summary.dropped += v.get("dropped").and_then(Value::as_u64).unwrap_or(0);
                summary.runs += 1;
                in_run = false;
            }
            kind if EVENT_KINDS.contains(&kind) => {
                if !in_run {
                    return Err(format!("line {lineno}: {kind} outside a run"));
                }
                need("ts_micros")?;
                summary.events += 1;
                match kind {
                    "path_finished" => {
                        need("path")?;
                        need("outcome")?;
                        need("cmds")?;
                        summary.paths_finished += 1;
                    }
                    "path_started" | "deadline_hit" => need("path")?,
                    "path_forked" => {
                        need("path")?;
                        need("arms")?;
                    }
                    "sat_query" => {
                        need("key")?;
                        need("micros")?;
                        let verdict = v.get("verdict").and_then(Value::as_str);
                        if !matches!(verdict, Some("sat" | "unsat" | "unknown")) {
                            return Err(format!(
                                "line {lineno}: bad sat_query verdict {verdict:?}"
                            ));
                        }
                        summary.sat_queries += 1;
                    }
                    "action_exec" => {
                        need("lang")?;
                        need("action")?;
                        need("micros")?;
                    }
                    "proc_time" => {
                        need("path")?;
                        need("stack")?;
                        need("cmds")?;
                        need("micros")?;
                    }
                    "panic_isolated" => {
                        need("path")?;
                        need("payload")?;
                    }
                    "checkpoint_written" => {
                        need("pending")?;
                        need("completed")?;
                        need("bytes")?;
                        need("micros")?;
                    }
                    "resumed" => {
                        need("pending")?;
                        need("completed")?;
                    }
                    "fault_injected" => {
                        need("point")?;
                        let fault = v.get("fault").and_then(Value::as_str);
                        if !matches!(
                            fault,
                            Some("path_panic" | "solver_unknown" | "sat_latency" | "kill")
                        ) {
                            return Err(format!(
                                "line {lineno}: bad fault_injected kind {fault:?}"
                            ));
                        }
                    }
                    _ => {}
                }
            }
            other => return Err(format!("line {lineno}: unknown type \"{other}\"")),
        }
    }
    if in_run {
        return Err("trace ends inside a run (missing run_finished)".into());
    }
    if summary.runs == 0 {
        return Err("trace contains no complete run".into());
    }
    Ok(summary)
}

/// A one-paragraph human rendering of [`validate_jsonl`]'s result — what
/// the `trace_check` binary prints.
pub fn trace_check_summary(text: &str) -> Result<String, String> {
    let s = validate_jsonl(text)?;
    let mut kinds: Vec<String> = s
        .kinds
        .iter()
        .filter(|(k, _)| EVENT_KINDS.contains(&k.as_str()))
        .map(|(k, n)| format!("{k}={n}"))
        .collect();
    kinds.sort();
    Ok(format!(
        "trace OK: {} run(s), {} event(s), {} path(s) finished, {} sat quer(ies), {} dropped [{}]",
        s.runs,
        s.events,
        s.paths_finished,
        s.sat_queries,
        s.dropped,
        kinds.join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Verdict;

    fn rec(event: Event) -> EventRecord {
        EventRecord {
            ts_micros: 42,
            worker: 1,
            seq: 0,
            path_ctx: None,
            event,
        }
    }

    #[test]
    fn jsonl_lines_validate() {
        let records = vec![
            rec(Event::PathStarted { path: vec![] }),
            rec(Event::PathForked {
                parent: vec![],
                arms: 2,
            }),
            rec(Event::SatQuery {
                key: 0xdead_beef,
                conjuncts: 3,
                verdict: Verdict::Unsat,
                micros: 17,
                cache_hit: false,
                pc: "(x > 0)".into(),
            }),
            rec(Event::ActionExec {
                lang: "while",
                action: "store".into(),
                branches: 1,
                micros: 2,
            }),
            rec(Event::ProcTime {
                path: vec![0],
                stack: "main;f".into(),
                cmds: 12,
                micros: 34,
            }),
            rec(Event::PathFinished {
                path: vec![0],
                outcome: "normal",
                cmds: 9,
            }),
        ];
        let mut text = String::new();
        text.push_str(
            &ObjWriter::new()
                .str("type", "run_started")
                .u64("ts_micros", 0)
                .str("schema", SCHEMA)
                .finish(),
        );
        text.push('\n');
        for r in &records {
            text.push_str(&event_line(r));
            text.push('\n');
        }
        text.push_str(
            &ObjWriter::new()
                .str("type", "run_finished")
                .u64("ts_micros", 99)
                .u64("events", records.len() as u64)
                .u64("dropped", 0)
                .finish(),
        );
        text.push('\n');
        let summary = validate_jsonl(&text).expect("valid");
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.events, 6);
        assert_eq!(summary.paths_finished, 1);
        assert_eq!(summary.sat_queries, 1);
        assert_eq!(summary.kinds.get("proc_time"), Some(&1));
        assert!(trace_check_summary(&text).unwrap().contains("trace OK"));
    }

    #[test]
    fn path_context_serializes_on_shared_events() {
        let mut attributed = rec(Event::SatQuery {
            key: 9,
            conjuncts: 1,
            verdict: Verdict::Sat,
            micros: 3,
            cache_hit: true,
            pc: String::new(),
        });
        attributed.path_ctx = Some(vec![0, 1]);
        let line = event_line(&attributed);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("path").and_then(Value::as_str), Some("0.1"));
    }

    #[test]
    fn chrome_trace_keeps_newline_per_frame_across_appends() {
        let dir = std::env::temp_dir().join(format!("gillian-chrome-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("trace.json");
        let path_s = path.to_str().unwrap();
        let records = vec![
            rec(Event::PathStarted { path: vec![] }),
            rec(Event::SatQuery {
                key: 1,
                conjuncts: 1,
                verdict: Verdict::Sat,
                micros: 7,
                cache_hit: false,
                pc: String::new(),
            }),
            rec(Event::ProcTime {
                path: vec![0],
                stack: "main".into(),
                cmds: 3,
                micros: 11,
            }),
        ];
        write_chrome_trace(path_s, &records);
        write_chrome_trace(path_s, &records); // appended second run
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.ends_with('\n'),
            "appended output ends at a frame boundary"
        );
        let frames = validate_chrome(&text).expect("valid chrome trace");
        assert_eq!(frames, 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chrome_validation_rejects_torn_frames() {
        assert!(validate_chrome("").is_err());
        assert!(validate_chrome("[\n").is_err(), "no frames");
        assert!(
            validate_chrome("[\n{\"name\":\"x\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0},")
                .is_err(),
            "missing trailing newline"
        );
        assert!(
            validate_chrome("[\n{\"name\":\"x\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0}\n")
                .is_err(),
            "missing frame comma"
        );
        assert!(validate_chrome(
            "[\n{\"name\":\"x\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0},\n"
        )
        .is_ok());
    }

    #[test]
    fn validation_rejects_schema_violations() {
        assert!(validate_jsonl("").is_err(), "no runs");
        assert!(validate_jsonl("not json\n").is_err());
        assert!(
            validate_jsonl("{\"type\":\"path_started\",\"ts_micros\":1,\"path\":\"\"}\n").is_err(),
            "event outside a run"
        );
        let missing_verdict = format!(
            "{}\n{}\n{}\n",
            ObjWriter::new()
                .str("type", "run_started")
                .u64("ts_micros", 0)
                .str("schema", SCHEMA)
                .finish(),
            ObjWriter::new()
                .str("type", "sat_query")
                .u64("ts_micros", 1)
                .str("key", "0")
                .u64("micros", 1)
                .finish(),
            ObjWriter::new()
                .str("type", "run_finished")
                .u64("ts_micros", 2)
                .u64("events", 1)
                .finish(),
        );
        assert!(validate_jsonl(&missing_verdict).is_err());
    }
}
