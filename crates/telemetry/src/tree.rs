//! The exploration-tree profiler: a queryable model of one run's branch
//! tree with time and solver cost attributed to its nodes.
//!
//! Reconstructed purely from the merged journal (see `DESIGN.md` §16):
//! `PathStarted`/`PathForked`/`PathFinished` events give the shape,
//! keyed by the deterministic branch-trace path ids; `SatQuery` and
//! `ActionExec` events land on the node their emitting thread was
//! executing (the [`crate::journal::set_path_context`] attribution);
//! `ProcTime` events carry the bytecode dispatcher's per-call-stack
//! exclusive time. Costs roll up **inclusively** over subtrees, so "hot
//! subtree" queries answer *where in the tree* a run burned its budget,
//! and per-procedure aggregation answers *in whose code*.
//!
//! Because path ids are schedule-independent, the tree a 4-worker run
//! reconstructs is the same tree the serial engine produces — node
//! stats differ only in wall-clock timings.

use crate::journal::{path_string, Event, EventRecord, PathId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Cost attributed to one tree node (exclusively or inclusively).
///
/// `step_micros` is dispatcher wall time and already *contains* the
/// solver/memory time spent inside those blocks, so the three planes
/// overlap; [`NodeCost::busy_micros`] picks the best single wall
/// estimate instead of summing them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCost {
    /// Sat queries attributed here.
    pub sat_queries: u64,
    /// Sat-query wall time (µs).
    pub sat_micros: u64,
    /// Memory-model action dispatches attributed here.
    pub actions: u64,
    /// Action wall time (µs).
    pub action_micros: u64,
    /// Commands retired by the dispatcher here.
    pub step_cmds: u64,
    /// Dispatcher wall time (µs), from `ProcTime` segments.
    pub step_micros: u64,
}

impl NodeCost {
    fn add(&mut self, other: &NodeCost) {
        self.sat_queries += other.sat_queries;
        self.sat_micros += other.sat_micros;
        self.actions += other.actions;
        self.action_micros += other.action_micros;
        self.step_cmds += other.step_cmds;
        self.step_micros += other.step_micros;
    }

    /// The node's wall-time estimate: dispatcher time when profiled,
    /// otherwise the solver+memory attribution (the dispatcher segment
    /// already includes sat/action time spent inside it, so the two
    /// planes must not be summed).
    pub fn busy_micros(&self) -> u64 {
        self.step_micros.max(self.sat_micros + self.action_micros)
    }
}

/// One node of the exploration tree (a branch point or a leaf).
#[derive(Clone, Debug)]
pub struct TreeNode {
    /// Successor count (`0` for a leaf or an unexpanded node).
    pub arms: u32,
    /// The finish outcome, when a `PathFinished` landed here.
    pub outcome: Option<&'static str>,
    /// Cumulative commands along the path at finish (leaves only).
    pub cmds: u64,
    /// Finished leaves in this subtree (inclusive, self included).
    pub leaves: u64,
    /// Cost attributed to this node alone.
    pub excl: NodeCost,
    /// Cost of the whole subtree rooted here.
    pub incl: NodeCost,
    /// Earliest event timestamp attributed to the subtree (µs since the
    /// telemetry epoch); `u64::MAX` when nothing carried a timestamp.
    pub first_ts: u64,
    /// Latest such timestamp.
    pub last_ts: u64,
}

impl Default for TreeNode {
    fn default() -> TreeNode {
        TreeNode {
            arms: 0,
            outcome: None,
            cmds: 0,
            leaves: 0,
            excl: NodeCost::default(),
            incl: NodeCost::default(),
            first_ts: u64::MAX,
            last_ts: 0,
        }
    }
}

impl TreeNode {
    /// The subtree's observed wall-clock span (µs): last attributed
    /// event minus first. Spans of sibling subtrees overlap under the
    /// parallel engine — they are windows, not a partition.
    pub fn span_micros(&self) -> u64 {
        if self.first_ts == u64::MAX {
            0
        } else {
            self.last_ts.saturating_sub(self.first_ts)
        }
    }
}

/// Per-procedure cost aggregated over the whole run, from `ProcTime`
/// segments (the *leaf* frame of each segment's call stack owns the
/// exclusive time).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcStat {
    /// Dispatcher segments attributed to the procedure.
    pub segments: u64,
    /// Commands retired in the procedure's own code.
    pub cmds: u64,
    /// Exclusive wall time (µs).
    pub micros: u64,
}

/// The reconstructed exploration tree of one run.
#[derive(Clone, Debug, Default)]
pub struct ExploreTree {
    nodes: BTreeMap<PathId, TreeNode>,
    procs: BTreeMap<String, ProcStat>,
    /// Folded flamegraph stacks: `"<branch frames>;<call frames>"` →
    /// exclusive µs.
    folded: BTreeMap<String, u64>,
    /// Events that carried no path attribution at all (checkpoint
    /// writes, faults, context-free sat queries).
    pub unattributed: u64,
}

impl ExploreTree {
    /// Reconstructs the tree from a merged journal.
    pub fn from_records(records: &[EventRecord]) -> ExploreTree {
        let mut tree = ExploreTree::default();
        for rec in records {
            let Some(path) = rec.path() else {
                if !matches!(rec.event, Event::Resumed { .. }) {
                    tree.unattributed += 1;
                }
                continue;
            };
            let path = path.to_vec();
            match &rec.event {
                Event::PathStarted { .. } => {
                    tree.touch(&path, rec.ts_micros);
                }
                Event::PathForked { arms, .. } => {
                    let node = tree.touch(&path, rec.ts_micros);
                    node.arms = node.arms.max(*arms);
                }
                Event::PathFinished { outcome, cmds, .. } => {
                    let node = tree.touch(&path, rec.ts_micros);
                    node.outcome = Some(outcome);
                    node.cmds = *cmds;
                }
                Event::SatQuery { micros, .. } => {
                    let node = tree.touch(&path, rec.ts_micros);
                    node.excl.sat_queries += 1;
                    node.excl.sat_micros += micros;
                }
                Event::ActionExec { micros, .. } => {
                    let node = tree.touch(&path, rec.ts_micros);
                    node.excl.actions += 1;
                    node.excl.action_micros += micros;
                }
                Event::ProcTime {
                    stack,
                    cmds,
                    micros,
                    ..
                } => {
                    let node = tree.touch(&path, rec.ts_micros);
                    node.excl.step_cmds += cmds;
                    node.excl.step_micros += micros;
                    let leaf = stack.rsplit(';').next().unwrap_or(stack).to_string();
                    let proc = tree.procs.entry(leaf).or_default();
                    proc.segments += 1;
                    proc.cmds += cmds;
                    proc.micros += micros;
                    *tree.folded.entry(folded_key(&path, stack)).or_insert(0) += micros;
                }
                Event::DeadlineHit { .. } | Event::PanicIsolated { .. } => {
                    tree.touch(&path, rec.ts_micros);
                }
                _ => {}
            }
        }
        tree.roll_up();
        tree
    }

    /// The node for `path` (with exclusive stats; ancestors are
    /// materialized so every node's parent chain exists).
    fn touch(&mut self, path: &[u32], ts: u64) -> &mut TreeNode {
        if !self.nodes.contains_key(path) {
            for cut in 0..path.len() {
                self.nodes.entry(path[..cut].to_vec()).or_default();
            }
            self.nodes.insert(path.to_vec(), TreeNode::default());
        }
        let node = self.nodes.get_mut(path).expect("just inserted");
        node.first_ts = node.first_ts.min(ts);
        node.last_ts = node.last_ts.max(ts);
        node
    }

    /// Propagates exclusive costs, leaf counts, and timestamp windows up
    /// the tree. Children sort strictly after their parent under the
    /// `Vec<u32>` ordering, so one reverse pass visits every child
    /// before its parent.
    fn roll_up(&mut self) {
        let keys: Vec<PathId> = self.nodes.keys().cloned().collect();
        for key in keys.iter() {
            let node = self.nodes.get_mut(key).expect("key from map");
            node.incl = node.excl;
            node.leaves = u64::from(node.outcome.is_some());
        }
        for key in keys.iter().rev() {
            if key.is_empty() {
                continue;
            }
            let child = self.nodes.get(key).expect("key from map");
            let (incl, leaves, first, last) =
                (child.incl, child.leaves, child.first_ts, child.last_ts);
            let parent = self
                .nodes
                .get_mut(&key[..key.len() - 1])
                .expect("ancestors materialized");
            parent.incl.add(&incl);
            parent.leaves += leaves;
            parent.first_ts = parent.first_ts.min(first);
            parent.last_ts = parent.last_ts.max(last);
        }
    }

    /// Total nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no events reconstructed any node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `path`, when the run visited it.
    pub fn node(&self, path: &[u32]) -> Option<&TreeNode> {
        self.nodes.get(path)
    }

    /// All nodes, in path order (parents before children).
    pub fn nodes(&self) -> impl Iterator<Item = (&[u32], &TreeNode)> {
        self.nodes.iter().map(|(k, v)| (k.as_slice(), v))
    }

    /// Per-procedure exclusive cost, hottest first.
    pub fn procs(&self) -> Vec<(&str, &ProcStat)> {
        let mut rows: Vec<(&str, &ProcStat)> =
            self.procs.iter().map(|(k, v)| (k.as_str(), v)).collect();
        rows.sort_by(|a, b| b.1.micros.cmp(&a.1.micros).then(a.0.cmp(b.0)));
        rows
    }

    /// Top-`k` **branch points** (interior nodes) by inclusive busy
    /// time: the subtrees a run spent its budget under.
    pub fn hot_subtrees(&self, k: usize) -> Vec<(&[u32], &TreeNode)> {
        let mut rows: Vec<(&[u32], &TreeNode)> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.arms > 0)
            .map(|(p, n)| (p.as_slice(), n))
            .collect();
        rows.sort_by(|a, b| {
            b.1.incl
                .busy_micros()
                .cmp(&a.1.incl.busy_micros())
                .then(a.0.cmp(b.0))
        });
        rows.truncate(k);
        rows
    }

    /// Top-`k` branch-trace prefixes by inclusive **sat** cost. Every
    /// branch step extends the path condition by one conjunct, so a
    /// branch-trace prefix names a pc prefix: this ranks which partial
    /// path conditions cost the solver the most.
    pub fn hot_pc_prefixes(&self, k: usize) -> Vec<(&[u32], &TreeNode)> {
        let mut rows: Vec<(&[u32], &TreeNode)> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.arms > 0 && n.incl.sat_micros > 0)
            .map(|(p, n)| (p.as_slice(), n))
            .collect();
        rows.sort_by(|a, b| {
            b.1.incl
                .sat_micros
                .cmp(&a.1.incl.sat_micros)
                .then(a.0.cmp(b.0))
        });
        rows.truncate(k);
        rows
    }

    /// The folded stack lines (`stack;frames value\n`…), sorted by
    /// stack — the `inferno` / speedscope "collapsed stacks" format.
    /// Values are exclusive microseconds.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, micros) in &self.folded {
            let _ = writeln!(out, "{stack} {micros}");
        }
        out
    }

    /// The distinct folded stack keys (for golden tests, which cannot
    /// assert on timing values).
    pub fn folded_keys(&self) -> Vec<&str> {
        self.folded.keys().map(|k| k.as_str()).collect()
    }
}

/// The folded-stack key of one dispatcher segment: the branch trace
/// (one frame per branch decision, rooted at `(root)`) followed by the
/// call frames. Sibling subtrees share their prefix frames, so a
/// flamegraph of these keys *is* the exploration tree, with procedure
/// frames nested inside each branch.
pub fn folded_key(path: &[u32], stack: &str) -> String {
    let mut key = String::from("(root)");
    for step in path {
        let _ = write!(key, ";{step}");
    }
    if !stack.is_empty() {
        let _ = write!(key, ";{stack}");
    }
    key
}

/// Renders a tree node's path for reports (`(root)` for the empty
/// trace, `"0.1"` otherwise).
pub fn node_label(path: &[u32]) -> String {
    if path.is_empty() {
        "(root)".to_string()
    } else {
        path_string(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Verdict;

    fn rec(seq: u64, ts: u64, path_ctx: Option<PathId>, event: Event) -> EventRecord {
        EventRecord {
            ts_micros: ts,
            worker: 0,
            seq,
            path_ctx,
            event,
        }
    }

    fn sample_records() -> Vec<EventRecord> {
        vec![
            rec(0, 10, None, Event::PathStarted { path: vec![] }),
            rec(
                1,
                11,
                None,
                Event::ProcTime {
                    path: vec![],
                    stack: "main".into(),
                    cmds: 4,
                    micros: 40,
                },
            ),
            rec(
                2,
                12,
                Some(vec![]),
                Event::SatQuery {
                    key: 1,
                    conjuncts: 1,
                    verdict: Verdict::Sat,
                    micros: 100,
                    cache_hit: false,
                    pc: String::new(),
                },
            ),
            rec(
                3,
                13,
                None,
                Event::PathForked {
                    parent: vec![],
                    arms: 2,
                },
            ),
            rec(
                4,
                20,
                None,
                Event::ProcTime {
                    path: vec![0],
                    stack: "main;f".into(),
                    cmds: 6,
                    micros: 60,
                },
            ),
            rec(
                5,
                21,
                Some(vec![0]),
                Event::SatQuery {
                    key: 2,
                    conjuncts: 2,
                    verdict: Verdict::Unsat,
                    micros: 30,
                    cache_hit: false,
                    pc: String::new(),
                },
            ),
            rec(
                6,
                22,
                Some(vec![0]),
                Event::ActionExec {
                    lang: "while",
                    action: "store".into(),
                    branches: 1,
                    micros: 7,
                },
            ),
            rec(
                7,
                25,
                None,
                Event::PathFinished {
                    path: vec![0],
                    outcome: "normal",
                    cmds: 10,
                },
            ),
            rec(
                8,
                30,
                None,
                Event::ProcTime {
                    path: vec![1],
                    stack: "main".into(),
                    cmds: 5,
                    micros: 20,
                },
            ),
            rec(
                9,
                33,
                None,
                Event::PathFinished {
                    path: vec![1],
                    outcome: "error",
                    cmds: 9,
                },
            ),
        ]
    }

    #[test]
    fn reconstructs_shape_and_attributes_cost() {
        let tree = ExploreTree::from_records(&sample_records());
        assert_eq!(tree.len(), 3, "root + two leaves");
        let root = tree.node(&[]).unwrap();
        assert_eq!(root.arms, 2);
        assert_eq!(root.leaves, 2);
        assert_eq!(root.excl.sat_micros, 100);
        assert_eq!(root.excl.step_micros, 40);
        assert_eq!(root.incl.step_micros, 120, "40 + 60 + 20");
        assert_eq!(root.incl.sat_micros, 130);
        assert_eq!(root.incl.actions, 1);
        assert_eq!(root.incl.step_cmds, 15);
        assert_eq!(root.span_micros(), 33 - 10);
        let left = tree.node(&[0]).unwrap();
        assert_eq!(left.outcome, Some("normal"));
        assert_eq!(left.arms, 0);
        assert_eq!(left.leaves, 1);
        assert_eq!(left.excl.sat_micros, 30);
        assert_eq!(left.incl.busy_micros(), 60, "step time covers sat+action");
        assert_eq!(tree.unattributed, 0);
    }

    #[test]
    fn hot_queries_rank_by_inclusive_cost() {
        let tree = ExploreTree::from_records(&sample_records());
        let hot = tree.hot_subtrees(5);
        assert_eq!(hot.len(), 1, "only the root is a branch point");
        assert_eq!(hot[0].0, &[] as &[u32]);
        let pcs = tree.hot_pc_prefixes(5);
        assert_eq!(pcs.len(), 1);
        assert_eq!(pcs[0].1.incl.sat_micros, 130);
        let procs = tree.procs();
        assert_eq!(procs[0].0, "f", "f owns the 60µs segment");
        assert_eq!(procs[0].1.micros, 60);
        assert_eq!(procs[1].0, "main");
        assert_eq!(procs[1].1.micros, 60, "40 at root + 20 on path 1");
        assert_eq!(procs[1].1.cmds, 9);
    }

    #[test]
    fn folded_stacks_nest_branches_then_frames() {
        let tree = ExploreTree::from_records(&sample_records());
        let folded = tree.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec!["(root);0;main;f 60", "(root);1;main 20", "(root);main 40"],
            "sorted, parseable `stack value` lines"
        );
        for line in lines {
            let (stack, value) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            value.parse::<u64>().expect("numeric value");
        }
    }

    #[test]
    fn merging_duplicate_segments_sums_values() {
        let mut records = sample_records();
        records.push(rec(
            10,
            40,
            None,
            Event::ProcTime {
                path: vec![],
                stack: "main".into(),
                cmds: 1,
                micros: 5,
            },
        ));
        let tree = ExploreTree::from_records(&records);
        assert!(tree.folded().contains("(root);main 45"));
    }

    #[test]
    fn empty_journal_gives_empty_tree() {
        let tree = ExploreTree::from_records(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.folded(), "");
        assert!(tree.hot_subtrees(3).is_empty());
    }
}
