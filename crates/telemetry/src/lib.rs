#![warn(missing_docs)]

//! # Gillian telemetry: structured tracing and metrics
//!
//! The observability substrate for the whole platform (see `DESIGN.md`
//! §11). Dependency-free, like the rest of the workspace's shims; every
//! layer of the engine records into it and nothing outside this crate
//! writes to stdout/stderr or the filesystem unless a sink is explicitly
//! configured.
//!
//! Three pieces:
//!
//! - [`metrics`] — a process-global registry of named [`Counter`]s and
//!   log2-bucketed latency [`Histogram`]s. Always compiled, always
//!   recorded; the cost of an armed-but-unexported metric is one or two
//!   relaxed atomic operations, which is why runs can report latency
//!   distributions without a "tracing build".
//! - [`journal`] — a structured **event journal** for one exploration
//!   run: typed [`Event`]s (path lifecycle, sat queries, memory actions,
//!   interruptions) written to per-worker buffers with monotonic
//!   timestamps, merged deterministically at explore end. Disabled by
//!   default ([`Journal::disabled`] is a `None` — emitting is a no-op);
//!   enabled explicitly or via `GILLIAN_TRACE`.
//! - [`export`]/[`report`] — sinks. A JSONL trace file
//!   (`GILLIAN_TRACE=path.jsonl`), a Chrome `trace_event` file for
//!   `about://tracing` (`GILLIAN_TRACE_CHROME=path.json`), and a human
//!   [`Report`] (latency histograms, top-k slowest sat queries,
//!   branch-tree shape, per-language action table) attached to every
//!   exploration result.
//!
//! Path identity is the **branch trace** — the successor index chosen at
//! every branching step from the entry — rendered as `"0.1.0"` (empty
//! string for the root). Branch traces are schedule-independent, so the
//! merged journal names the same paths whether a run used one worker or
//! eight.

pub mod export;
pub mod journal;
pub mod json;
pub mod live;
pub mod metrics;
pub mod report;
pub mod tree;

pub use export::{trace_check_summary, validate_chrome, validate_jsonl};
pub use journal::{Event, EventRecord, Journal, PathId, Verdict, WorkerLog};
pub use live::{LiveSink, LiveStats};
pub use metrics::{registry, Counter, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use report::{LangActionRow, Report, SlowQuery, TreeStats};
pub use tree::{ExploreTree, NodeCost, ProcStat, TreeNode};

/// Well-known metric names, so recorders and the report agree on
/// spelling. The registry accepts any `&'static str`; these are the ones
/// the engine itself records.
pub mod names {
    /// Latency histogram (µs) of full satisfiability checks (cache hits
    /// included — they are the fast mode of the same distribution).
    pub const SAT_MICROS: &str = "solver.sat_micros";
    /// Latency histogram (µs) of full-tier simplifier runs (memo misses
    /// only: hits are counted, not timed — timing them would cost more
    /// than the probe they measure).
    pub const SIMPLIFY_MICROS: &str = "solver.simplify_micros";
    /// Latency histogram (µs) of symbolic memory-model action dispatch.
    pub const ACTION_MICROS: &str = "memory.action_micros";
    /// Sampled latency histogram (ns) of interner lookups (1 in 1024).
    pub const INTERN_LOOKUP_NANOS: &str = "intern.lookup_nanos";
    /// Satisfiability queries issued (all solvers in the process).
    pub const SAT_QUERIES: &str = "solver.sat_queries";
    /// Satisfiability queries answered from a solver's cache.
    pub const SAT_CACHE_HITS: &str = "solver.sat_cache_hits";
    /// `Unknown` satisfiability verdicts.
    pub const SAT_UNKNOWNS: &str = "solver.sat_unknowns";
    /// Satisfiability queries answered by extending a frozen per-prefix
    /// solve context instead of re-solving the whole conjunction.
    pub const SAT_INCREMENTAL_HITS: &str = "solver.sat_incremental_hits";
    /// Satisfiability queries answered by the implication-aware verdict
    /// index (UNSAT-subset / SAT-superset / witness-model reuse).
    pub const SAT_IMPLICATION_HITS: &str = "solver.sat_implication_hits";
    /// Histogram of reused-prefix depth (conjuncts inherited from the
    /// deepest already-solved ancestor) on incremental answers.
    pub const SAT_PREFIX_DEPTH: &str = "solver.sat_reused_prefix_depth";
    /// Symbolic paths replayed concretely by the differential oracle.
    pub const DIFFTEST_REPLAYS: &str = "difftest.replays";
    /// Symbolic-vs-concrete divergences found by the differential oracle.
    pub const DIFFTEST_DIVERGENCES: &str = "difftest.divergences";
    /// Paths the differential oracle could not check (truncated, engine
    /// error, or no witness model even after budget escalation).
    pub const DIFFTEST_SKIPPED: &str = "difftest.skipped_paths";
    /// Witness models the oracle obtained only through the escalated
    /// fallback search (`Solver::model_for_replay`).
    pub const DIFFTEST_FALLBACK_MODELS: &str = "difftest.fallback_models";
    /// Interner nodes minted (allocations performed).
    pub const INTERN_MINTS: &str = "intern.mints";
    /// Interner hits (allocations avoided by sharing).
    pub const INTERN_HITS: &str = "intern.hits";
    /// Interner nodes currently live (a gauge, not a flow).
    pub const INTERN_LIVE: &str = "intern.live";
    /// Checkpoints of the exploration frontier written to disk.
    pub const CHECKPOINT_WRITES: &str = "checkpoint.writes";
    /// Total bytes of checkpoint files written.
    pub const CHECKPOINT_BYTES: &str = "checkpoint.bytes";
    /// Latency histogram (µs) of checkpoint serialization + atomic write.
    pub const CHECKPOINT_WRITE_MICROS: &str = "checkpoint.write_micros";
    /// Runs resumed from a checkpoint file.
    pub const CHECKPOINT_RESUMES: &str = "checkpoint.resumes";
    /// Checkpoint writes that failed (I/O or serialization); exploration
    /// continues regardless — checkpointing is best-effort durability.
    pub const CHECKPOINT_FAILED_WRITES: &str = "checkpoint.failed_writes";
    /// Faults injected by the deterministic fault harness (all kinds).
    pub const FAULT_INJECTED: &str = "fault.injected";
    /// Simulated process kills injected by the fault harness.
    pub const FAULT_KILLS: &str = "fault.kills";
    /// Basic-block dispatches executed by the bytecode backend (each one
    /// is a `step_block` call retiring up to a block's worth of
    /// commands).
    pub const EXEC_BLOCKS: &str = "exec.blocks";
    /// Commands retired by the bytecode backend across all blocks.
    pub const EXEC_CMDS: &str = "exec.cmds";
    /// GIL programs compiled to register bytecode (one-shot, at
    /// exploration start).
    pub const EXEC_COMPILES: &str = "exec.compiles";
    /// Dispatch histogram: commands retired per basic-block dispatch.
    /// A tall low bucket means branch-heavy code (blocks cut short by
    /// forks); mass in the high buckets means straight-line fusion is
    /// paying off.
    pub const EXEC_BLOCK_CMDS: &str = "exec.block_cmds";
    /// Inline-cache hits in the bytecode dispatcher: an `Action`
    /// instruction whose per-site cache already held the resolved
    /// action code.
    pub const EXEC_IC_HITS: &str = "exec.ic_hits";
    /// Inline-cache misses: an `Action` site resolved by name (the
    /// one-time fill of each site's cache, so misses ≈ distinct
    /// compiled action sites executed).
    pub const EXEC_IC_MISSES: &str = "exec.ic_misses";
    /// Procedure summaries harvested from clean call returns (no fork,
    /// no memory action, no fresh symbol inside the callee window).
    pub const SUMMARY_RECORDED: &str = "summary.recorded";
    /// Call sites answered by splicing a recorded summary post-state
    /// instead of re-executing the callee.
    pub const SUMMARY_APPLIED: &str = "summary.applied";
    /// Call sites that had candidate summaries but failed the
    /// applicability check (arguments, subsumption, typing environment,
    /// or a delta verdict deviation) and fell through to execution.
    pub const SUMMARY_MISSED: &str = "summary.missed";
    /// Open call windows invalidated by a footprint escape (fork, memory
    /// action, fresh symbol) before the frame returned.
    pub const SUMMARY_ESCAPED: &str = "summary.escaped";
    /// Journal events lost to ring-buffer wrap or shared-buffer
    /// shedding, process-wide (per-run counts live on the journal; this
    /// counter is what the report and the live console surface).
    pub const JOURNAL_DROPPED_EVENTS: &str = "journal.dropped_events";
    /// Live-mode snapshot frames written to the `GILLIAN_LIVE` sink.
    pub const LIVE_FRAMES: &str = "live.frames";
}

use std::sync::OnceLock;
use std::time::Instant;

/// The process telemetry epoch: all event timestamps are microseconds
/// since the first call. Monotonic (backed by [`Instant`]), so merged
/// journals order consistently within a process.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process telemetry [`epoch`].
pub fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}
