// Symbolic tests for the array utilities (Table 1 row `array`, #T = 9).

function test_array_1() {
    var a = symb_number();
    var b = symb_number();
    var arr = [a, b];
    assert(arr.length === 2);
    assert(arr[0] === a);
    assert(arr[1] === b);
}

function test_array_2() {
    var a = symb_number();
    var b = symb_number();
    assume(a !== b);
    var arr = [a, b, a];
    assert(arrIndexOf(arr, a) === 0);
    assert(arrIndexOf(arr, b) === 1);
    assert(arrLastIndexOf(arr, a) === 2);
}

function test_array_3() {
    var a = symb_number();
    var arr = [a];
    assert(arrContains(arr, a));
    var b = symb_number();
    if (arrContains(arr, b)) {
        assert(a === b);
    } else {
        assert(a !== b);
    }
}

function test_array_4() {
    var a = symb_number();
    var b = symb_number();
    var arr = [a, b, a];
    assume(a !== b);
    assert(arrFrequency(arr, a) === 2);
    assert(arrFrequency(arr, b) === 1);
    assert(arrFrequency(arr, a + b + 1000000) >= 0);
}

function test_array_5() {
    var a = symb_number();
    var b = symb_number();
    var x = [a, b];
    var y = arrCopy(x);
    assert(arrEquals(x, y));
    assert(x !== y);
}

function test_array_6() {
    var a = symb_number();
    var b = symb_number();
    assume(a !== b);
    var arr = [a, b];
    var removed = arrRemove(arr, a);
    assert(removed);
    assert(arr.length === 1);
    assert(arr[0] === b);
    assert(!arrContains(arr, a));
}

function test_array_7() {
    var a = symb_number();
    var b = symb_number();
    var arr = [a, b];
    arrSwap(arr, 0, 1);
    assert(arr[0] === b);
    assert(arr[1] === a);
    assert(!arrSwap(arr, 0, 5));
}

function test_array_8() {
    var arr = [];
    assert(arr.length === 0);
    assert(arrIndexOf(arr, 1) === -1);
    assert(!arrRemove(arr, 1));
    var a = symb_number();
    arrPush(arr, a);
    assert(arr.length === 1);
    assert(arr[0] === a);
}

function test_array_9() {
    var a = symb_number();
    var b = symb_number();
    var x = [a];
    var y = [a, b];
    assert(!arrEquals(x, y));
    arrPush(x, b);
    assert(arrEquals(x, y));
    arrRemoveAt(x, 0);
    assert(x.length === 1);
    assert(x[0] === b);
}
