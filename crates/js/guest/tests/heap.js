// Symbolic tests for the binary heap (Table 1 row `heap`, #T = 4).

function test_heap_1() {
    var a = symb_number();
    var b = symb_number();
    var heap = heapNew();
    heap.push(a);
    heap.push(b);
    assert(heap.size() === 2);
    var top = heap.peek();
    assert(top <= a);
    assert(top <= b);
}

function test_heap_2() {
    var a = symb_number();
    var b = symb_number();
    var c = symb_number();
    var heap = heapNew();
    heap.push(a);
    heap.push(b);
    heap.push(c);
    // Pops come out in non-decreasing order.
    var x = heap.pop();
    var y = heap.pop();
    var z = heap.pop();
    assert(x <= y);
    assert(y <= z);
    assert(heap.isEmpty());
}

function test_heap_3() {
    var heap = heapNew();
    assert(heap.pop() === undefined);
    assert(heap.peek() === undefined);
    var a = symb_number();
    heap.push(a);
    assert(heap.pop() === a);
    assert(heap.isEmpty());
}

function test_heap_4() {
    var a = symb_number();
    assume(0 < a && a < 100);
    var heap = heapNew();
    heap.push(a);
    heap.push(a - 1);
    heap.push(a + 1);
    assert(heap.pop() === a - 1);
    assert(heap.pop() === a);
    assert(heap.pop() === a + 1);
}
