// Symbolic tests for the linked list (Table 1 row `llist`, #T = 9).

function test_llist_1() {
    var a = symb_number();
    var b = symb_number();
    var list = llNew();
    list.add(a);
    list.add(b);
    assert(list.size() === 2);
    assert(list.get(0) === a);
    assert(list.get(1) === b);
}

function test_llist_2() {
    var a = symb_number();
    var b = symb_number();
    assume(a !== b);
    var list = llNew();
    list.add(a);
    list.add(b);
    assert(list.indexOf(a) === 0);
    assert(list.indexOf(b) === 1);
    assert(list.indexOf(a + b + 123456) === -1);
}

function test_llist_3() {
    var a = symb_number();
    var b = symb_number();
    var list = llNew();
    list.add(a);
    list.add(b);
    var removed = list.remove(a);
    assert(removed);
    assert(list.size() === 1);
    assert(list.get(0) === b);
}

function test_llist_4() {
    var a = symb_number();
    var b = symb_number();
    var list = llNew();
    assert(list.first() === undefined);
    assert(list.last() === undefined);
    list.add(a);
    assert(list.first() === a);
    assert(list.last() === a);
    list.add(b);
    assert(list.first() === a);
    assert(list.last() === b);
}

function test_llist_5() {
    var a = symb_number();
    var b = symb_number();
    var c = symb_number();
    var list = llNew();
    list.add(a);
    list.add(b);
    list.add(c);
    list.reverse();
    assert(list.get(0) === c);
    assert(list.get(1) === b);
    assert(list.get(2) === a);
    assert(list.first() === c);
    assert(list.last() === a);
}

function test_llist_6() {
    var a = symb_number();
    var b = symb_number();
    var list = llNew();
    list.add(a);
    list.add(b);
    var arr = list.toArray();
    assert(arr.length === 2);
    assert(arr[0] === a);
    assert(arr[1] === b);
}

function test_llist_7() {
    var a = symb_number();
    var b = symb_number();
    assume(a !== b);
    var list = llNew();
    list.add(a);
    assert(!list.remove(b));
    assert(list.size() === 1);
}

function test_llist_8() {
    var a = symb_number();
    var list = llNew();
    assert(list.isEmpty());
    list.add(a);
    assert(!list.isEmpty());
    list.clear();
    assert(list.isEmpty());
    assert(list.size() === 0);
    assert(list.get(0) === undefined);
}

function test_llist_9() {
    var a = symb_number();
    var list = llNew();
    list.add(a);
    assert(list.get(-1) === undefined);
    assert(list.get(1) === undefined);
    assert(list.get(0) === a);
    // Removing the only element clears first and last.
    list.remove(a);
    assert(list.first() === undefined);
    assert(list.last() === undefined);
}
