// Symbolic tests for the set (Table 1 row `set`, #T = 6).

function test_set_1() {
    var a = symb_number();
    var set = setNew();
    assert(set.add(a));
    assert(set.contains(a));
    assert(!set.add(a));
    assert(set.size() === 1);
}

function test_set_2() {
    var a = symb_number();
    var b = symb_number();
    var set = setNew();
    set.add(a);
    set.add(b);
    if (a === b) {
        assert(set.size() === 1);
    } else {
        assert(set.size() === 2);
    }
}

function test_set_3() {
    var a = symb_number();
    var set = setNew();
    set.add(a);
    assert(set.remove(a));
    assert(!set.contains(a));
    assert(set.isEmpty());
    assert(!set.remove(a));
}

function test_set_4() {
    var a = symb_number();
    var b = symb_number();
    assume(a !== b);
    var s1 = setNew();
    var s2 = setNew();
    s1.add(a);
    s2.add(b);
    s1.union(s2);
    assert(s1.size() === 2);
    assert(s1.contains(a));
    assert(s1.contains(b));
    assert(s2.size() === 1);
}

function test_set_5() {
    var a = symb_number();
    var b = symb_number();
    assume(a !== b);
    var s1 = setNew();
    var s2 = setNew();
    s1.add(a);
    s1.add(b);
    s2.add(b);
    s1.intersection(s2);
    assert(s1.size() === 1);
    assert(s1.contains(b));
    assert(!s1.contains(a));
}

function test_set_6() {
    var a = symb_string();
    var set = setNew();
    assert(!set.add(undefined));
    set.add(a);
    var arr = set.toArray();
    assert(arr.length === 1);
    assert(arr[0] === a);
}
