// Symbolic tests for the binary search tree (Table 1 row `bst`, #T = 11).

function test_bst_1() {
    var a = symb_number();
    var tree = bstNew();
    assert(tree.isEmpty());
    assert(tree.insert(a));
    assert(tree.contains(a));
    assert(tree.size() === 1);
    assert(!tree.insert(a));
    assert(tree.size() === 1);
}

function test_bst_2() {
    var a = symb_number();
    var b = symb_number();
    assume(a !== b);
    var tree = bstNew();
    tree.insert(a);
    tree.insert(b);
    assert(tree.size() === 2);
    assert(tree.contains(a));
    assert(tree.contains(b));
}

function test_bst_3() {
    var a = symb_number();
    var b = symb_number();
    assume(a < b);
    var tree = bstNew();
    tree.insert(b);
    tree.insert(a);
    assert(tree.min() === a);
    assert(tree.max() === b);
}

function test_bst_4() {
    var a = symb_number();
    var b = symb_number();
    var c = symb_number();
    assume(a < b && b < c);
    var tree = bstNew();
    tree.insert(b);
    tree.insert(a);
    tree.insert(c);
    var sorted = tree.inorder();
    assert(sorted.length === 3);
    assert(sorted[0] === a);
    assert(sorted[1] === b);
    assert(sorted[2] === c);
}

function test_bst_5() {
    var a = symb_number();
    var tree = bstNew();
    assert(tree.height() === -1);
    tree.insert(a);
    assert(tree.height() === 0);
    tree.insert(a + 1);
    tree.insert(a + 2);
    assert(tree.height() === 2);
}

function test_bst_6() {
    var a = symb_number();
    var tree = bstNew();
    tree.insert(a);
    assert(tree.remove(a));
    assert(!tree.contains(a));
    assert(tree.size() === 0);
    assert(!tree.remove(a));
}

function test_bst_7() {
    // Remove a node with two children.
    var a = symb_number();
    assume(0 < a && a < 10);
    var tree = bstNew();
    tree.insert(a);
    tree.insert(a - 5);
    tree.insert(a + 5);
    assert(tree.remove(a));
    assert(tree.size() === 2);
    assert(tree.contains(a - 5));
    assert(tree.contains(a + 5));
    assert(!tree.contains(a));
}

function test_bst_8() {
    // Remove the root with one child.
    var a = symb_number();
    var tree = bstNew();
    tree.insert(a);
    tree.insert(a + 3);
    assert(tree.remove(a));
    assert(tree.contains(a + 3));
    assert(tree.min() === a + 3);
}

function test_bst_9() {
    var a = symb_number();
    var b = symb_number();
    var tree = bstNew();
    tree.insert(a);
    if (tree.contains(b)) {
        assert(a === b);
    } else {
        assert(a !== b);
    }
}

function test_bst_10() {
    var a = symb_number();
    var b = symb_number();
    assume(a < b);
    var tree = bstNew();
    tree.insert(a);
    tree.insert(b);
    // In-order is sorted regardless of insertion order.
    var s1 = tree.inorder();
    var tree2 = bstNew();
    tree2.insert(b);
    tree2.insert(a);
    var s2 = tree2.inorder();
    assert(arrEquals(s1, s2));
}

function test_bst_11() {
    var a = symb_number();
    assume(a === 0 || a === 1 || a === 2);
    var tree = bstNew();
    tree.insert(0);
    tree.insert(1);
    tree.insert(2);
    // `a` collides with exactly one of the three inserted keys.
    assert(!tree.insert(a));
    assert(tree.size() === 3);
    assert(tree.remove(a));
    assert(tree.size() === 2);
    assert(!tree.contains(a));
}
