// Symbolic tests for the bag (Table 1 row `bag`, #T = 7).

function test_bag_1() {
    var a = symb_number();
    var bag = bagNew();
    assert(bag.count(a) === 0);
    bag.add(a);
    bag.add(a);
    assert(bag.count(a) === 2);
    assert(bag.size() === 2);
}

function test_bag_2() {
    var a = symb_number();
    var b = symb_number();
    assume(a !== b);
    var bag = bagNew();
    bag.add(a);
    bag.add(b);
    bag.add(a);
    assert(bag.count(a) === 2);
    assert(bag.count(b) === 1);
    assert(bag.size() === 3);
}

function test_bag_3() {
    var a = symb_number();
    var bag = bagNew();
    bag.add(a);
    assert(bag.contains(a));
    var removed = bag.remove(a);
    assert(removed);
    assert(!bag.contains(a));
    assert(bag.size() === 0);
    assert(!bag.remove(a));
}

function test_bag_4() {
    var a = symb_number();
    var bag = bagNew();
    bag.add(a);
    bag.add(a);
    bag.remove(a);
    assert(bag.contains(a));
    assert(bag.count(a) === 1);
}

function test_bag_5() {
    // Aliasing: counts merge when the two inputs coincide.
    var a = symb_number();
    var b = symb_number();
    var bag = bagNew();
    bag.add(a);
    bag.add(b);
    if (a === b) {
        assert(bag.count(a) === 2);
    } else {
        assert(bag.count(a) === 1);
        assert(bag.count(b) === 1);
    }
    assert(bag.size() === 2);
}

function test_bag_6() {
    var a = symb_number();
    var bag = bagNew();
    assert(bag.isEmpty());
    bag.add(a);
    assert(!bag.isEmpty());
    bag.clear();
    assert(bag.isEmpty());
    assert(bag.count(a) === 0);
}

function test_bag_7() {
    var bag = bagNew();
    assert(!bag.add(undefined));
    assert(bag.size() === 0);
    var s = symb_string();
    bag.add(s);
    assert(bag.contains(s));
}
