// Symbolic tests for the stack (Table 1 row `stack`, #T = 4).

function test_stack_1() {
    var a = symb_number();
    var b = symb_number();
    var s = stackNew();
    s.push(a);
    s.push(b);
    assert(s.size() === 2);
    assert(s.peek() === b);
}

function test_stack_2() {
    var a = symb_number();
    var b = symb_number();
    var s = stackNew();
    s.push(a);
    s.push(b);
    assert(s.pop() === b);
    assert(s.pop() === a);
    assert(s.isEmpty());
}

function test_stack_3() {
    var s = stackNew();
    assert(s.pop() === undefined);
    assert(s.peek() === undefined);
    assert(s.isEmpty());
}

function test_stack_4() {
    var a = symb_number();
    var s = stackNew();
    s.push(a);
    s.push(a + 1);
    s.pop();
    s.push(a + 2);
    assert(s.peek() === a + 2);
    assert(s.size() === 2);
    assert(s.pop() === a + 2);
    assert(s.pop() === a);
}
