// Symbolic tests for the priority queue (Table 1 row `pqueue`, #T = 5).

function test_pqueue_1() {
    var p1 = symb_number();
    var p2 = symb_number();
    assume(p1 < p2);
    var pq = pqNew();
    pq.enqueue("second", p2);
    pq.enqueue("first", p1);
    assert(pq.size() === 2);
    assert(pq.peek() === "first");
}

function test_pqueue_2() {
    var p1 = symb_number();
    var p2 = symb_number();
    assume(p1 < p2);
    var pq = pqNew();
    pq.enqueue("b", p2);
    pq.enqueue("a", p1);
    assert(pq.dequeue() === "a");
    assert(pq.dequeue() === "b");
    assert(pq.isEmpty());
}

function test_pqueue_3() {
    var pq = pqNew();
    assert(pq.dequeue() === undefined);
    assert(pq.peek() === undefined);
    var v = symb_string();
    var p = symb_number();
    pq.enqueue(v, p);
    assert(pq.dequeue() === v);
    assert(pq.isEmpty());
}

function test_pqueue_4() {
    var p1 = symb_number();
    var p2 = symb_number();
    var p3 = symb_number();
    assume(p1 < p2 && p2 < p3);
    var pq = pqNew();
    pq.enqueue("mid", p2);
    pq.enqueue("high", p3);
    pq.enqueue("low", p1);
    assert(pq.dequeue() === "low");
    assert(pq.dequeue() === "mid");
    assert(pq.dequeue() === "high");
}

function test_pqueue_5() {
    // With unconstrained priorities, the dequeued item carries the
    // smallest priority.
    var p1 = symb_number();
    var p2 = symb_number();
    var pq = pqNew();
    pq.enqueue(p1, p1);
    pq.enqueue(p2, p2);
    var first = pq.dequeue();
    assert(first <= p1);
    assert(first <= p2);
}
