// Symbolic tests for the multi-dictionary (Table 1 row `mdict`, #T = 6).

function test_mdict_1() {
    var k = symb_string();
    var v = symb_number();
    var md = mdictNew();
    assert(md.get(k) === undefined);
    assert(md.set(k, v));
    var arr = md.get(k);
    assert(arr.length === 1);
    assert(arr[0] === v);
}

function test_mdict_2() {
    var k = symb_string();
    var md = mdictNew();
    md.set(k, 1);
    md.set(k, 2);
    assert(md.get(k).length === 2);
    // Duplicate values under one key are rejected.
    assert(!md.set(k, 1));
    assert(md.get(k).length === 2);
}

function test_mdict_3() {
    var k1 = symb_string();
    var k2 = symb_string();
    assume(k1 !== k2);
    var md = mdictNew();
    md.set(k1, 1);
    md.set(k2, 2);
    assert(md.size() === 2);
    assert(md.containsKey(k1));
    assert(md.containsKey(k2));
}

function test_mdict_4() {
    var k = symb_string();
    var v = symb_number();
    var md = mdictNew();
    md.set(k, v);
    assert(md.remove(k, v));
    // Removing the last value removes the key entirely.
    assert(!md.containsKey(k));
    assert(!md.remove(k, v));
}

function test_mdict_5() {
    var k = symb_string();
    var a = symb_number();
    var b = symb_number();
    assume(a !== b);
    var md = mdictNew();
    md.set(k, a);
    md.set(k, b);
    assert(md.remove(k, a));
    assert(md.containsKey(k));
    var arr = md.get(k);
    assert(arr.length === 1);
    assert(arr[0] === b);
}

function test_mdict_6() {
    var k = symb_string();
    var md = mdictNew();
    md.set(k, 1);
    md.set(k, 2);
    assert(md.removeAll(k));
    assert(!md.containsKey(k));
    assert(md.size() === 0);
    assert(!md.removeAll(k));
}
