// Symbolic tests for the queue (Table 1 row `queue`, #T = 6).

function test_queue_1() {
    var a = symb_number();
    var b = symb_number();
    var q = queueNew();
    q.enqueue(a);
    q.enqueue(b);
    assert(q.size() === 2);
    assert(q.peek() === a);
}

function test_queue_2() {
    var a = symb_number();
    var b = symb_number();
    var q = queueNew();
    q.enqueue(a);
    q.enqueue(b);
    assert(q.dequeue() === a);
    assert(q.dequeue() === b);
    assert(q.isEmpty());
}

function test_queue_3() {
    var q = queueNew();
    assert(q.dequeue() === undefined);
    assert(q.peek() === undefined);
    assert(q.isEmpty());
}

function test_queue_4() {
    // FIFO holds even when elements collide.
    var a = symb_number();
    var b = symb_number();
    var q = queueNew();
    q.enqueue(a);
    q.enqueue(b);
    q.enqueue(a);
    assert(q.dequeue() === a);
    assert(q.size() === 2);
    assert(q.peek() === b);
}

function test_queue_5() {
    var a = symb_number();
    var q = queueNew();
    q.enqueue(a);
    q.clear();
    assert(q.isEmpty());
    assert(q.size() === 0);
    q.enqueue(a + 1);
    assert(q.peek() === a + 1);
}

function test_queue_6() {
    var a = symb_number();
    var b = symb_number();
    var q = queueNew();
    q.enqueue(a);
    var x = q.dequeue();
    q.enqueue(b);
    var y = q.dequeue();
    assert(x === a);
    assert(y === b);
    assert(q.isEmpty());
}
