// Symbolic tests for the dictionary (Table 1 row `dict`, #T = 7).
// Symbolic *keys* exercise the branching symbolic getProp (SGetProp).

function test_dict_1() {
    var k = symb_string();
    var v = symb_number();
    var dict = dictNew();
    assert(dict.get(k) === undefined);
    dict.set(k, v);
    assert(dict.get(k) === v);
    assert(dict.size() === 1);
}

function test_dict_2() {
    var k1 = symb_string();
    var k2 = symb_string();
    assume(k1 !== k2);
    var dict = dictNew();
    dict.set(k1, 1);
    dict.set(k2, 2);
    assert(dict.size() === 2);
    assert(dict.get(k1) === 1);
    assert(dict.get(k2) === 2);
}

function test_dict_3() {
    // Overwriting a key keeps the size and returns the previous value.
    var k = symb_string();
    var dict = dictNew();
    dict.set(k, 1);
    var previous = dict.set(k, 2);
    assert(previous === 1);
    assert(dict.size() === 1);
    assert(dict.get(k) === 2);
}

function test_dict_4() {
    var k = symb_string();
    var v = symb_number();
    var dict = dictNew();
    dict.set(k, v);
    var removed = dict.remove(k);
    assert(removed === v);
    assert(dict.size() === 0);
    assert(!dict.containsKey(k));
    assert(dict.remove(k) === undefined);
}

function test_dict_5() {
    // Aliasing question: two symbolic keys may or may not collide.
    var k1 = symb_string();
    var k2 = symb_string();
    var dict = dictNew();
    dict.set(k1, 1);
    dict.set(k2, 2);
    if (k1 === k2) {
        assert(dict.size() === 1);
        assert(dict.get(k1) === 2);
    } else {
        assert(dict.size() === 2);
        assert(dict.get(k1) === 1);
    }
}

function test_dict_6() {
    var k = symb_string();
    var dict = dictNew();
    // undefined values are rejected.
    assert(dict.set(k, undefined) === undefined);
    assert(dict.size() === 0);
    dict.set(k, null);
    assert(dict.containsKey(k));
}

function test_dict_7() {
    var k1 = symb_string();
    var k2 = symb_string();
    assume(k1 !== k2);
    var dict = dictNew();
    dict.set(k1, "x");
    dict.set(k2, "y");
    var ks = dict.keys();
    assert(ks.length === 2);
    assert(arrContains(ks, k1));
    assert(arrContains(ks, k2));
    dict.clear();
    assert(dict.isEmpty());
    assert(dict.keys().length === 0);
}
