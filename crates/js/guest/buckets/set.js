// Set over a dictionary (the `Set` of Buckets.js).

function setNew() {
    var set = { dict: dictNew() };
    set.add = setAdd;
    set.contains = setContains;
    set.remove = setRemove;
    set.size = setSize;
    set.isEmpty = setIsEmpty;
    set.toArray = setToArray;
    set.union = setUnion;
    set.intersection = setIntersection;
    return set;
}

function setContains(set, item) {
    return dictContainsKey(set.dict, item);
}

function setAdd(set, item) {
    if (setContains(set, item) || item === undefined) { return false; }
    dictSet(set.dict, item, item);
    return true;
}

function setRemove(set, item) {
    if (!setContains(set, item)) { return false; }
    dictRemove(set.dict, item);
    return true;
}

function setSize(set) {
    return dictSize(set.dict);
}

function setIsEmpty(set) {
    return setSize(set) === 0;
}

function setToArray(set) {
    return dictKeys(set.dict);
}

function setUnion(set, other) {
    var arr = setToArray(other);
    for (var i = 0; i < arr.length; i = i + 1) {
        setAdd(set, arr[i]);
    }
    return undefined;
}

function setIntersection(set, other) {
    var arr = setToArray(set);
    for (var i = 0; i < arr.length; i = i + 1) {
        if (!setContains(other, arr[i])) {
            setRemove(set, arr[i]);
        }
    }
    return undefined;
}
