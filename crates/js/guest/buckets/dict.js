// Dictionary (the `Dictionary` of Buckets.js). MiniJS objects accept any
// value as a property key, so no string hashing is needed; a key list is
// maintained for enumeration, as real JS dictionary implementations do.

function dictNew() {
    var dict = { table: {}, keylist: [], nElements: 0 };
    dict.get = dictGet;
    dict.set = dictSet;
    dict.remove = dictRemove;
    dict.containsKey = dictContainsKey;
    dict.size = dictSize;
    dict.isEmpty = dictIsEmpty;
    dict.keys = dictKeys;
    dict.clear = dictClear;
    return dict;
}

function dictGet(dict, key) {
    return dict.table[key];
}

function dictSet(dict, key, value) {
    if (value === undefined) { return undefined; }
    var previous = dict.table[key];
    if (previous === undefined) {
        arrPush(dict.keylist, key);
        dict.nElements = dict.nElements + 1;
    }
    dict.table[key] = value;
    return previous;
}

function dictRemove(dict, key) {
    var previous = dict.table[key];
    if (previous === undefined) { return undefined; }
    delete dict.table[key];
    arrRemove(dict.keylist, key);
    dict.nElements = dict.nElements - 1;
    return previous;
}

function dictContainsKey(dict, key) {
    return dict.table[key] !== undefined;
}

function dictSize(dict) {
    return dict.nElements;
}

function dictIsEmpty(dict) {
    return dict.nElements === 0;
}

function dictKeys(dict) {
    return arrCopy(dict.keylist);
}

function dictClear(dict) {
    dict.table = {};
    dict.keylist = [];
    dict.nElements = 0;
    return undefined;
}
