// LIFO stack over an array (the `Stack` of Buckets.js).

function stackNew() {
    var s = { data: [] };
    s.push = stackPush;
    s.pop = stackPop;
    s.peek = stackPeek;
    s.size = stackSize;
    s.isEmpty = stackIsEmpty;
    return s;
}

function stackPush(s, item) {
    arrPush(s.data, item);
    return true;
}

function stackPop(s) {
    if (s.data.length === 0) { return undefined; }
    var element = s.data[s.data.length - 1];
    arrRemoveAt(s.data, s.data.length - 1);
    return element;
}

function stackPeek(s) {
    if (s.data.length === 0) { return undefined; }
    return s.data[s.data.length - 1];
}

function stackSize(s) {
    return s.data.length;
}

function stackIsEmpty(s) {
    return s.data.length === 0;
}
