// Priority queue over a pair-heap (the `PriorityQueue` of Buckets.js;
// MiniJS dequeues the *lowest* priority value first).

function pqNew() {
    var pq = { data: [] };
    pq.enqueue = pqEnqueue;
    pq.dequeue = pqDequeue;
    pq.peek = pqPeek;
    pq.size = pqSize;
    pq.isEmpty = pqIsEmpty;
    return pq;
}

function pqMinIndex(pq, left, right) {
    if (right >= pq.data.length) {
        if (left >= pq.data.length) { return -1; }
        return left;
    }
    if (pq.data[left].priority <= pq.data[right].priority) { return left; }
    return right;
}

function pqSiftUp(pq, index) {
    var parent = floor((index - 1) / 2);
    while (index > 0 && pq.data[parent].priority > pq.data[index].priority) {
        arrSwap(pq.data, parent, index);
        index = parent;
        parent = floor((index - 1) / 2);
    }
    return undefined;
}

function pqSiftDown(pq, nodeIndex) {
    var min = pqMinIndex(pq, (2 * nodeIndex) + 1, (2 * nodeIndex) + 2);
    while (min >= 0 && pq.data[nodeIndex].priority > pq.data[min].priority) {
        arrSwap(pq.data, min, nodeIndex);
        nodeIndex = min;
        min = pqMinIndex(pq, (2 * nodeIndex) + 1, (2 * nodeIndex) + 2);
    }
    return undefined;
}

function pqEnqueue(pq, item, priority) {
    arrPush(pq.data, { item: item, priority: priority });
    pqSiftUp(pq, pq.data.length - 1);
    return true;
}

function pqDequeue(pq) {
    if (pq.data.length === 0) { return undefined; }
    var pair = pq.data[0];
    var last = pq.data[pq.data.length - 1];
    arrRemoveAt(pq.data, pq.data.length - 1);
    if (pq.data.length > 0) {
        pq.data[0] = last;
        pqSiftDown(pq, 0);
    }
    return pair.item;
}

function pqPeek(pq) {
    if (pq.data.length === 0) { return undefined; }
    return pq.data[0].item;
}

function pqSize(pq) {
    return pq.data.length;
}

function pqIsEmpty(pq) {
    return pq.data.length === 0;
}
