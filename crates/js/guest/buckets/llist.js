// Singly linked list with a tail pointer (the `LinkedList` of Buckets.js).
// Constructor functions attach methods as function-valued properties; the
// compiler threads the receiver as the callee's first argument.

function llNew() {
    var list = { firstNode: null, lastNode: null, nElements: 0 };
    list.add = llAdd;
    list.get = llGet;
    list.indexOf = llIndexOf;
    list.remove = llRemove;
    list.size = llSize;
    list.first = llFirst;
    list.last = llLast;
    list.isEmpty = llIsEmpty;
    list.clear = llClear;
    list.toArray = llToArray;
    list.reverse = llReverse;
    return list;
}

function llAdd(list, item) {
    var newNode = { element: item, next: null };
    if (list.firstNode === null) {
        list.firstNode = newNode;
        list.lastNode = newNode;
    } else {
        list.lastNode.next = newNode;
        list.lastNode = newNode;
    }
    list.nElements = list.nElements + 1;
    return true;
}

function llNodeAt(list, index) {
    if (index < 0 || index >= list.nElements) { return null; }
    var node = list.firstNode;
    for (var i = 0; i < index; i = i + 1) {
        node = node.next;
    }
    return node;
}

function llGet(list, index) {
    var node = llNodeAt(list, index);
    if (node === null) { return undefined; }
    return node.element;
}

function llIndexOf(list, item) {
    var node = list.firstNode;
    var index = 0;
    while (node !== null) {
        if (node.element === item) { return index; }
        index = index + 1;
        node = node.next;
    }
    return -1;
}

function llRemove(list, item) {
    var previous = null;
    var node = list.firstNode;
    while (node !== null) {
        if (node.element === item) {
            if (previous === null) {
                list.firstNode = node.next;
            } else {
                previous.next = node.next;
            }
            if (node === list.lastNode) {
                list.lastNode = previous;
            }
            list.nElements = list.nElements - 1;
            return true;
        }
        previous = node;
        node = node.next;
    }
    return false;
}

function llSize(list) {
    return list.nElements;
}

function llFirst(list) {
    if (list.firstNode === null) { return undefined; }
    return list.firstNode.element;
}

function llLast(list) {
    if (list.lastNode === null) { return undefined; }
    return list.lastNode.element;
}

function llIsEmpty(list) {
    return list.nElements === 0;
}

function llClear(list) {
    list.firstNode = null;
    list.lastNode = null;
    list.nElements = 0;
    return undefined;
}

function llToArray(list) {
    var out = [];
    var node = list.firstNode;
    while (node !== null) {
        arrPush(out, node.element);
        node = node.next;
    }
    return out;
}

function llReverse(list) {
    var previous = null;
    var node = list.firstNode;
    list.lastNode = list.firstNode;
    while (node !== null) {
        var next = node.next;
        node.next = previous;
        previous = node;
        node = next;
    }
    list.firstNode = previous;
    return undefined;
}
