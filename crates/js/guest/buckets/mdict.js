// Multi-dictionary (the `MultiDictionary` of Buckets.js): a dictionary
// from keys to arrays of distinct values.

function mdictNew() {
    var md = { dict: dictNew() };
    md.set = mdictSet;
    md.get = mdictGet;
    md.remove = mdictRemove;
    md.removeAll = mdictRemoveAll;
    md.containsKey = mdictContainsKey;
    md.size = mdictSize;
    return md;
}

function mdictSet(md, key, value) {
    if (value === undefined) { return false; }
    var arr = dictGet(md.dict, key);
    if (arr === undefined) {
        arr = [];
        dictSet(md.dict, key, arr);
    }
    if (arrContains(arr, value)) { return false; }
    arrPush(arr, value);
    return true;
}

function mdictGet(md, key) {
    return dictGet(md.dict, key);
}

function mdictRemove(md, key, value) {
    var arr = dictGet(md.dict, key);
    if (arr === undefined) { return false; }
    var removed = arrRemove(arr, value);
    if (removed && arr.length === 0) {
        dictRemove(md.dict, key);
    }
    return removed;
}

function mdictRemoveAll(md, key) {
    return dictRemove(md.dict, key) !== undefined;
}

function mdictContainsKey(md, key) {
    return dictContainsKey(md.dict, key);
}

function mdictSize(md) {
    return dictSize(md.dict);
}
