// Binary min-heap over an array (the `Heap` of Buckets.js, with the
// default numeric comparison).

function heapNew() {
    var heap = { data: [] };
    heap.push = heapPush;
    heap.pop = heapPop;
    heap.peek = heapPeek;
    heap.size = heapSize;
    heap.isEmpty = heapIsEmpty;
    return heap;
}

function heapMinIndex(heap, left, right) {
    if (right >= heap.data.length) {
        if (left >= heap.data.length) { return -1; }
        return left;
    }
    if (heap.data[left] <= heap.data[right]) { return left; }
    return right;
}

function heapSiftUp(heap, index) {
    var parent = floor((index - 1) / 2);
    while (index > 0 && heap.data[parent] > heap.data[index]) {
        arrSwap(heap.data, parent, index);
        index = parent;
        parent = floor((index - 1) / 2);
    }
    return undefined;
}

function heapSiftDown(heap, nodeIndex) {
    var min = heapMinIndex(heap, (2 * nodeIndex) + 1, (2 * nodeIndex) + 2);
    while (min >= 0 && heap.data[nodeIndex] > heap.data[min]) {
        arrSwap(heap.data, min, nodeIndex);
        nodeIndex = min;
        min = heapMinIndex(heap, (2 * nodeIndex) + 1, (2 * nodeIndex) + 2);
    }
    return undefined;
}

function heapPush(heap, element) {
    arrPush(heap.data, element);
    heapSiftUp(heap, heap.data.length - 1);
    return true;
}

function heapPop(heap) {
    if (heap.data.length === 0) { return undefined; }
    var element = heap.data[0];
    var last = heap.data[heap.data.length - 1];
    arrRemoveAt(heap.data, heap.data.length - 1);
    if (heap.data.length > 0) {
        heap.data[0] = last;
        heapSiftDown(heap, 0);
    }
    return element;
}

function heapPeek(heap) {
    if (heap.data.length === 0) { return undefined; }
    return heap.data[0];
}

function heapSize(heap) {
    return heap.data.length;
}

function heapIsEmpty(heap) {
    return heap.data.length === 0;
}
