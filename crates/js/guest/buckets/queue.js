// FIFO queue over the linked list (the `Queue` of Buckets.js).

function queueNew() {
    var q = { list: llNew() };
    q.enqueue = queueEnqueue;
    q.dequeue = queueDequeue;
    q.peek = queuePeek;
    q.size = queueSize;
    q.isEmpty = queueIsEmpty;
    q.clear = queueClear;
    return q;
}

function queueEnqueue(q, item) {
    return llAdd(q.list, item);
}

function queueDequeue(q) {
    if (llSize(q.list) === 0) { return undefined; }
    var element = llFirst(q.list);
    llRemove(q.list, element);
    return element;
}

function queuePeek(q) {
    return llFirst(q.list);
}

function queueSize(q) {
    return llSize(q.list);
}

function queueIsEmpty(q) {
    return llSize(q.list) === 0;
}

function queueClear(q) {
    return llClear(q.list);
}
