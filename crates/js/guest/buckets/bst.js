// Binary search tree (the `BSTree` of Buckets.js, default numeric order).

function bstNew() {
    var tree = { root: null, nElements: 0 };
    tree.insert = bstInsert;
    tree.contains = bstContains;
    tree.min = bstMin;
    tree.max = bstMax;
    tree.size = bstSize;
    tree.height = bstHeight;
    tree.remove = bstRemove;
    tree.inorder = bstInorder;
    tree.isEmpty = bstIsEmpty;
    return tree;
}

function bstInsert(tree, value) {
    var node = { value: value, left: null, right: null };
    if (tree.root === null) {
        tree.root = node;
        tree.nElements = tree.nElements + 1;
        return true;
    }
    var current = tree.root;
    while (true) {
        if (value === current.value) { return false; }
        if (value < current.value) {
            if (current.left === null) {
                current.left = node;
                tree.nElements = tree.nElements + 1;
                return true;
            }
            current = current.left;
        } else {
            if (current.right === null) {
                current.right = node;
                tree.nElements = tree.nElements + 1;
                return true;
            }
            current = current.right;
        }
    }
    return false;
}

function bstContains(tree, value) {
    var current = tree.root;
    while (current !== null) {
        if (value === current.value) { return true; }
        if (value < current.value) {
            current = current.left;
        } else {
            current = current.right;
        }
    }
    return false;
}

function bstMin(tree) {
    if (tree.root === null) { return undefined; }
    var current = tree.root;
    while (current.left !== null) {
        current = current.left;
    }
    return current.value;
}

function bstMax(tree) {
    if (tree.root === null) { return undefined; }
    var current = tree.root;
    while (current.right !== null) {
        current = current.right;
    }
    return current.value;
}

function bstSize(tree) {
    return tree.nElements;
}

function bstHeightOf(node) {
    if (node === null) { return -1; }
    var hl = bstHeightOf(node.left);
    var hr = bstHeightOf(node.right);
    if (hl > hr) { return hl + 1; }
    return hr + 1;
}

function bstHeight(tree) {
    return bstHeightOf(tree.root);
}

function bstIsEmpty(tree) {
    return tree.nElements === 0;
}

function bstInorderNode(node, out) {
    if (node === null) { return undefined; }
    bstInorderNode(node.left, out);
    arrPush(out, node.value);
    bstInorderNode(node.right, out);
    return undefined;
}

function bstInorder(tree) {
    var out = [];
    bstInorderNode(tree.root, out);
    return out;
}

function bstMinNode(node) {
    while (node.left !== null) {
        node = node.left;
    }
    return node;
}

function bstRemoveNode(node, value, tree) {
    // Returns the new subtree root after removing `value` from `node`.
    if (node === null) { return null; }
    if (value < node.value) {
        node.left = bstRemoveNode(node.left, value, tree);
        return node;
    }
    if (value > node.value) {
        node.right = bstRemoveNode(node.right, value, tree);
        return node;
    }
    // Found it.
    tree.nElements = tree.nElements - 1;
    if (node.left === null) { return node.right; }
    if (node.right === null) { return node.left; }
    var successor = bstMinNode(node.right);
    node.value = successor.value;
    // The successor's value is removed from the right subtree; do not
    // decrement the count twice for it.
    tree.nElements = tree.nElements + 1;
    node.right = bstRemoveNode(node.right, successor.value, tree);
    return node;
}

function bstRemove(tree, value) {
    if (!bstContains(tree, value)) { return false; }
    tree.root = bstRemoveNode(tree.root, value, tree);
    return true;
}
