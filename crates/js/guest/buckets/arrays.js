// Buckets-style array utilities (the `arrays` module of Buckets.js).
// MiniJS arrays are objects with numeric keys 0..length-1 and a `length`
// property; these helpers maintain that invariant.

function arrPush(arr, item) {
    arr[arr.length] = item;
    arr.length = arr.length + 1;
    return arr;
}

function arrIndexOf(arr, item) {
    var length = arr.length;
    for (var i = 0; i < length; i = i + 1) {
        if (arr[i] === item) { return i; }
    }
    return -1;
}

function arrLastIndexOf(arr, item) {
    for (var i = arr.length - 1; i >= 0; i = i - 1) {
        if (arr[i] === item) { return i; }
    }
    return -1;
}

function arrContains(arr, item) {
    return arrIndexOf(arr, item) >= 0;
}

function arrFrequency(arr, item) {
    var freq = 0;
    for (var i = 0; i < arr.length; i = i + 1) {
        if (arr[i] === item) { freq = freq + 1; }
    }
    return freq;
}

function arrEquals(a, b) {
    if (a.length !== b.length) { return false; }
    for (var i = 0; i < a.length; i = i + 1) {
        if (a[i] !== b[i]) { return false; }
    }
    return true;
}

function arrRemoveAt(arr, index) {
    if (index < 0 || index >= arr.length) { return false; }
    for (var i = index; i < arr.length - 1; i = i + 1) {
        arr[i] = arr[i + 1];
    }
    delete arr[arr.length - 1];
    arr.length = arr.length - 1;
    return true;
}

function arrRemove(arr, item) {
    var index = arrIndexOf(arr, item);
    if (index < 0) { return false; }
    return arrRemoveAt(arr, index);
}

function arrSwap(arr, i, j) {
    if (i < 0 || i >= arr.length || j < 0 || j >= arr.length) { return false; }
    var temp = arr[i];
    arr[i] = arr[j];
    arr[j] = temp;
    return true;
}

function arrCopy(arr) {
    var out = [];
    for (var i = 0; i < arr.length; i = i + 1) {
        arrPush(out, arr[i]);
    }
    return out;
}
