// Multiset (the `Bag` of Buckets.js): a dictionary of element counts.

function bagNew() {
    var bag = { dict: dictNew(), nElements: 0 };
    bag.add = bagAdd;
    bag.count = bagCount;
    bag.contains = bagContains;
    bag.remove = bagRemove;
    bag.size = bagSize;
    bag.isEmpty = bagIsEmpty;
    bag.clear = bagClear;
    return bag;
}

function bagAdd(bag, item) {
    if (item === undefined) { return false; }
    var count = dictGet(bag.dict, item);
    if (count === undefined) {
        dictSet(bag.dict, item, 1);
    } else {
        dictSet(bag.dict, item, count + 1);
    }
    bag.nElements = bag.nElements + 1;
    return true;
}

function bagCount(bag, item) {
    var count = dictGet(bag.dict, item);
    if (count === undefined) { return 0; }
    return count;
}

function bagContains(bag, item) {
    return bagCount(bag, item) > 0;
}

function bagRemove(bag, item) {
    var count = dictGet(bag.dict, item);
    if (count === undefined) { return false; }
    if (count === 1) {
        dictRemove(bag.dict, item);
    } else {
        dictSet(bag.dict, item, count - 1);
    }
    bag.nElements = bag.nElements - 1;
    return true;
}

function bagSize(bag) {
    return bag.nElements;
}

function bagIsEmpty(bag) {
    return bag.nElements === 0;
}

function bagClear(bag) {
    dictClear(bag.dict);
    bag.nElements = 0;
    return undefined;
}
