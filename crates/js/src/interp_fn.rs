//! The MiniJS memory interpretation function (paper Def. 3.7 for the JS
//! instantiation): interprets heap and metadata cells pointwise under a
//! logical environment, failing if distinct symbolic cells collapse.

use crate::mem::{JsConcMemory, JsSymMemory};
use gillian_core::soundness::MemoryInterpretation;
use gillian_solver::Model;

/// The interpretation function for MiniJS memories.
#[derive(Clone, Copy, Debug, Default)]
pub struct JsInterpretation;

impl MemoryInterpretation for JsInterpretation {
    type Concrete = JsConcMemory;
    type Symbolic = JsSymMemory;

    fn interpret(&self, model: &Model, sym: &JsSymMemory) -> Result<JsConcMemory, String> {
        let mut out = JsConcMemory::default();
        for (loc_e, meta_e) in sym.objects() {
            let loc = model
                .eval(loc_e)
                .map_err(|e| format!("I_JS: object {loc_e} uninterpretable: {e}"))?;
            let meta = model
                .eval(meta_e)
                .map_err(|e| format!("I_JS: metadata {meta_e} uninterpretable: {e}"))?;
            if out.insert_object(loc.clone(), meta).is_some() {
                return Err(format!("I_JS: objects collapse onto {loc}"));
            }
        }
        for ((loc_e, key_e), val_e) in sym.heap_cells() {
            let loc = model
                .eval(loc_e)
                .map_err(|e| format!("I_JS: cell location {loc_e} uninterpretable: {e}"))?;
            let key = model
                .eval(key_e)
                .map_err(|e| format!("I_JS: key {key_e} uninterpretable: {e}"))?;
            let val = model
                .eval(val_e)
                .map_err(|e| format!("I_JS: value {val_e} uninterpretable: {e}"))?;
            if out.insert_cell(loc.clone(), key.clone(), val).is_some() {
                return Err(format!("I_JS: cells collapse onto {loc}[{key}]"));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_core::soundness::check_action;
    use gillian_gil::{Expr, LVar, Sym, Value};
    use gillian_solver::{PathCondition, Solver};
    use std::collections::BTreeMap;

    fn loc(i: u64) -> Expr {
        Expr::Val(Value::Sym(Sym(Sym::FIRST_FRESH + i)))
    }

    #[test]
    fn interprets_pointwise() {
        let mut m = JsSymMemory::default();
        m.insert_object(loc(0), Expr::str("Object"));
        m.insert_cell(loc(0), Expr::lvar(LVar(0)), Expr::num(1.0));
        let model = Model::from_assignment(BTreeMap::from([(LVar(0), Value::str("k"))]));
        let conc = JsInterpretation.interpret(&model, &m).unwrap();
        assert_eq!(
            conc.cell(&Value::Sym(Sym(Sym::FIRST_FRESH)), &Value::str("k")),
            Some(&Value::num(1.0))
        );
    }

    #[test]
    fn collapsing_keys_are_rejected() {
        let mut m = JsSymMemory::default();
        m.insert_object(loc(0), Expr::str("Object"));
        m.insert_cell(loc(0), Expr::lvar(LVar(0)), Expr::num(1.0));
        m.insert_cell(loc(0), Expr::lvar(LVar(1)), Expr::num(2.0));
        let model = Model::from_assignment(BTreeMap::from([
            (LVar(0), Value::str("k")),
            (LVar(1), Value::str("k")),
        ]));
        assert!(JsInterpretation.interpret(&model, &m).is_err());
    }

    /// MA-RS/MA-RC for the eight JS actions on a representative memory
    /// with a symbolic key — the JS analogue of the paper's Lemma 3.11.
    #[test]
    fn js_actions_satisfy_memory_lemmas() {
        let solver = Solver::optimized();
        let mut m = JsSymMemory::default();
        m.insert_object(loc(0), Expr::str("Object"));
        m.insert_cell(loc(0), Expr::str("a"), Expr::num(1.0));
        m.insert_cell(loc(0), Expr::lvar(LVar(1)), Expr::num(2.0));
        // The heap's implicit disjointness (paper's ⊎): distinct cells of
        // one object have distinct keys. During real execution this
        // constraint is always learned into the path condition by the
        // extending branch of setProp; hand-built memories must add it.
        let mut pc = PathCondition::new();
        pc.push(Expr::lvar(LVar(1)).ne(Expr::str("a")));
        let k = Expr::lvar(LVar(0));
        let cases: Vec<(&str, Expr)> = vec![
            ("getProp", Expr::list([loc(0), k.clone()])),
            ("getProp", Expr::list([loc(0), Expr::str("a")])),
            ("setProp", Expr::list([loc(0), k.clone(), Expr::num(9.0)])),
            ("hasProp", Expr::list([loc(0), k.clone()])),
            ("delProp", Expr::list([loc(0), k.clone()])),
            ("getMeta", loc(0)),
            ("setMeta", Expr::list([loc(0), Expr::str("Array")])),
            ("delObj", loc(0)),
            ("getProp", Expr::list([k, Expr::str("a")])),
        ];
        for (action, arg) in cases {
            let checked = check_action(&JsInterpretation, &solver, &m, action, &arg, &pc)
                .unwrap_or_else(|problems| {
                    panic!("MA-RS violated for {action}({arg}): {problems:#?}")
                });
            assert!(checked > 0, "{action}({arg}): no branch was modelled");
        }
    }
}
