#![warn(missing_docs)]

//! # Gillian-JS (MiniJS): the dynamic-object instantiation
//!
//! Reproduces the Gillian-JS instantiation of paper §4.1 with **MiniJS**,
//! a JavaScript-like guest language (see `DESIGN.md` §2 for the
//! substitution rationale):
//!
//! - [`mem`] — the JS memory model: heap `(location, key) ⇀ value` plus a
//!   metadata table, with eight actions and the paper's branching
//!   symbolic `getProp` (`SGetProp`);
//! - [`runtime`] — GIL procedures implementing JS truthiness, operator
//!   overloading, `typeof` and checked property access (the analogue of
//!   Gillian-JS's compiled internal functions);
//! - [`ast`]/[`parser`]/[`compile`] — the MiniJS front end;
//! - [`interp_fn`] — the memory interpretation function and the empirical
//!   MA-RS/MA-RC checks;
//! - [`buckets`] — the Buckets guest library (11 data structures) and its
//!   74-test symbolic suite reproducing Table 1.
//!
//! ## Example
//!
//! ```
//! use gillian_js::symbolic_test;
//!
//! let outcome = symbolic_test(r#"
//!     function main() {
//!         var x = symb_number();
//!         assume(x > 0);
//!         var box = { value: x };
//!         assert(box.value > 0);
//!         return box.value;
//!     }
//! "#).unwrap();
//! assert!(outcome.verified());
//! ```

pub mod ast;
pub mod buckets;
pub mod compile;
pub mod interp_fn;
pub mod mem;
pub mod parser;
pub mod runtime;
pub mod values;

use gillian_core::explore::ExploreConfig;
use gillian_core::testing::{run_test_with_replay, SymTestOutcome};
use gillian_solver::Solver;
use std::sync::Arc;

pub use compile::compile_module;
pub use interp_fn::JsInterpretation;
pub use mem::{JsConcMemory, JsSymMemory};
pub use parser::parse_module;

/// Parses, compiles and symbolically tests a MiniJS program's `main`
/// function with the optimized solver, replaying any bugs concretely.
///
/// # Errors
///
/// Returns a parse error description for malformed source.
pub fn symbolic_test(source: &str) -> Result<SymTestOutcome<JsSymMemory>, String> {
    symbolic_test_entry(source, "main")
}

/// As [`symbolic_test`], from an arbitrary entry function.
///
/// # Errors
///
/// Returns a parse error description for malformed source.
pub fn symbolic_test_entry(
    source: &str,
    entry: &str,
) -> Result<SymTestOutcome<JsSymMemory>, String> {
    symbolic_test_with(source, entry, ExploreConfig::default())
}

/// As [`symbolic_test_entry`], with explicit exploration limits — in
/// particular [`ExploreConfig::workers`], which selects the parallel
/// explorer when greater than one, and the resilience knobs
/// [`ExploreConfig::deadline`] (wall-clock budget: over-budget paths come
/// back truncated, with the overrun counted in the result's diagnostics)
/// and [`ExploreConfig::cancel`] (cooperative cancellation from another
/// thread).
///
/// # Errors
///
/// Returns a parse error description for malformed source.
pub fn symbolic_test_with(
    source: &str,
    entry: &str,
    cfg: ExploreConfig,
) -> Result<SymTestOutcome<JsSymMemory>, String> {
    let module = parse_module(source).map_err(|e| e.to_string())?;
    let prog = compile_module(&module);
    Ok(run_test_with_replay::<JsSymMemory, JsConcMemory>(
        &prog,
        entry,
        Arc::new(Solver::optimized()),
        cfg,
    ))
}
