//! The MiniJS concrete and symbolic memory models (paper §4.1).
//!
//! A JS memory is a pair of a *heap* and a *metadata table*:
//!
//! - concrete heap `h : U × V ⇀ V` — object locations and property *keys*
//!   (keys are full values: MiniJS indexes arrays with numbers directly
//!   instead of stringifying, a documented deviation from ES5) to values;
//! - concrete metadata table `m : U ⇀ V` — per-object metadata (MiniJS
//!   stores the class tag, `"Object"`/`"Array"`); an entry in the table is
//!   what makes a location *an object*.
//!
//! Symbolically both components map logical expressions. The model has
//! eight actions — creation/deletion of objects, retrieval/update/deletion
//! of properties and metadata, plus property test:
//! `{newObj, delObj, getProp, setProp, delProp, hasProp, getMeta, setMeta}`.
//!
//! The symbolic `getProp` implements the paper's `SGetProp` rule: it
//! branches on the looked-up key equalling each key of the aliased object
//! (under the path condition), passing the learned equality back to the
//! state — plus the *absent* branch yielding `undefined` (JS semantics)
//! under the conjunction of the disequalities.

use crate::values::undefined_expr;
use gillian_core::memory::{ConcreteMemory, SymBranch, SymbolicMemory};
use gillian_gil::{Expr, LVar, Value};
use gillian_solver::{PathCondition, Solver};
use std::collections::{BTreeMap, BTreeSet};

/// Dense codes for the eight JS actions, used by the bytecode backend's
/// per-site inline caches (`gillian_core::exec`): a dispatch site caches
/// the code on first execution and thereafter skips the string match.
mod code {
    pub const NEW_OBJ: u16 = 0;
    pub const DEL_OBJ: u16 = 1;
    pub const GET_PROP: u16 = 2;
    pub const SET_PROP: u16 = 3;
    pub const DEL_PROP: u16 = 4;
    pub const HAS_PROP: u16 = 5;
    pub const GET_META: u16 = 6;
    pub const SET_META: u16 = 7;
}

fn js_action_code(name: &str) -> Option<u16> {
    Some(match name {
        "newObj" => code::NEW_OBJ,
        "delObj" => code::DEL_OBJ,
        "getProp" => code::GET_PROP,
        "setProp" => code::SET_PROP,
        "delProp" => code::DEL_PROP,
        "hasProp" => code::HAS_PROP,
        "getMeta" => code::GET_META,
        "setMeta" => code::SET_META,
        _ => return None,
    })
}

fn err_value(msg: impl Into<String>) -> Value {
    Value::List(vec![Value::str("JSError"), Value::str(msg.into())])
}

fn err_expr(msg: impl Into<String>) -> Expr {
    Expr::list([Expr::str("JSError"), Expr::str(msg.into())])
}

/// A concrete MiniJS memory: heap cells plus metadata table.
///
/// Both tables are copy-on-write behind [`Arc`]s: cloning the memory (the
/// engine clones states on every step) is two pointer bumps, and
/// straight-line execution mutates in place.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JsConcMemory {
    meta: std::sync::Arc<BTreeMap<Value, Value>>,
    cells: std::sync::Arc<BTreeMap<(Value, Value), Value>>,
}

impl JsConcMemory {
    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.meta.len()
    }

    /// Direct accessors for tests and interpretation functions.
    pub fn insert_object(&mut self, loc: Value, meta: Value) -> Option<Value> {
        std::sync::Arc::make_mut(&mut self.meta).insert(loc, meta)
    }

    /// Inserts a heap cell directly.
    pub fn insert_cell(&mut self, loc: Value, key: Value, value: Value) -> Option<Value> {
        std::sync::Arc::make_mut(&mut self.cells).insert((loc, key), value)
    }

    /// Reads a heap cell directly.
    pub fn cell(&self, loc: &Value, key: &Value) -> Option<&Value> {
        self.cells.get(&(loc.clone(), key.clone()))
    }
}

fn value_args(arg: &Value, n: usize, action: &str) -> Result<Vec<Value>, Value> {
    match arg.as_list() {
        Some(items) if items.len() == n => Ok(items.to_vec()),
        _ => Err(err_value(format!(
            "{action}: expected {n}-element argument list, got {arg}"
        ))),
    }
}

impl ConcreteMemory for JsConcMemory {
    // Concrete dispatch keeps the default (name-keyed) coded delegation:
    // the concrete actions are dominated by their BTreeMap operations, so
    // the inline cache's only concrete win is resolving the code once.
    fn action_code(&self, name: &str) -> Option<u16> {
        js_action_code(name)
    }

    fn execute_action(&mut self, name: &str, arg: Value) -> Result<Value, Value> {
        match name {
            "newObj" => {
                let args = value_args(&arg, 2, "newObj")?;
                if self.meta.contains_key(&args[0]) {
                    return Err(err_value(format!("newObj: {} already exists", args[0])));
                }
                std::sync::Arc::make_mut(&mut self.meta).insert(args[0].clone(), args[1].clone());
                Ok(args[0].clone())
            }
            "delObj" => {
                let loc = arg;
                if std::sync::Arc::make_mut(&mut self.meta)
                    .remove(&loc)
                    .is_none()
                {
                    return Err(err_value(format!("delObj: {loc} is not an object")));
                }
                std::sync::Arc::make_mut(&mut self.cells).retain(|(l, _), _| l != &loc);
                Ok(Value::Bool(true))
            }
            "getProp" => {
                let args = value_args(&arg, 2, "getProp")?;
                if !self.meta.contains_key(&args[0]) {
                    return Err(err_value(format!("getProp: {} is not an object", args[0])));
                }
                Ok(self
                    .cells
                    .get(&(args[0].clone(), args[1].clone()))
                    .cloned()
                    .unwrap_or_else(crate::values::undefined_value))
            }
            "setProp" => {
                let args = value_args(&arg, 3, "setProp")?;
                if !self.meta.contains_key(&args[0]) {
                    return Err(err_value(format!("setProp: {} is not an object", args[0])));
                }
                std::sync::Arc::make_mut(&mut self.cells)
                    .insert((args[0].clone(), args[1].clone()), args[2].clone());
                Ok(args[2].clone())
            }
            "delProp" => {
                let args = value_args(&arg, 2, "delProp")?;
                if !self.meta.contains_key(&args[0]) {
                    return Err(err_value(format!("delProp: {} is not an object", args[0])));
                }
                std::sync::Arc::make_mut(&mut self.cells)
                    .remove(&(args[0].clone(), args[1].clone()));
                Ok(Value::Bool(true))
            }
            "hasProp" => {
                let args = value_args(&arg, 2, "hasProp")?;
                if !self.meta.contains_key(&args[0]) {
                    return Err(err_value(format!("hasProp: {} is not an object", args[0])));
                }
                Ok(Value::Bool(
                    self.cells.contains_key(&(args[0].clone(), args[1].clone())),
                ))
            }
            "getMeta" => self
                .meta
                .get(&arg)
                .cloned()
                .ok_or_else(|| err_value(format!("getMeta: {arg} is not an object"))),
            "setMeta" => {
                let args = value_args(&arg, 2, "setMeta")?;
                if !self.meta.contains_key(&args[0]) {
                    return Err(err_value(format!("setMeta: {} is not an object", args[0])));
                }
                std::sync::Arc::make_mut(&mut self.meta).insert(args[0].clone(), args[1].clone());
                Ok(args[1].clone())
            }
            other => Err(err_value(format!("unknown JS action {other}"))),
        }
    }
}

/// A symbolic MiniJS memory (copy-on-write, like [`JsConcMemory`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JsSymMemory {
    meta: std::sync::Arc<BTreeMap<Expr, Expr>>,
    cells: std::sync::Arc<BTreeMap<(Expr, Expr), Expr>>,
}

impl JsSymMemory {
    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.meta.len()
    }

    /// Direct insertion for tests.
    pub fn insert_object(&mut self, loc: Expr, meta: Expr) -> Option<Expr> {
        std::sync::Arc::make_mut(&mut self.meta).insert(loc, meta)
    }

    /// Direct cell insertion for tests.
    pub fn insert_cell(&mut self, loc: Expr, key: Expr, value: Expr) -> Option<Expr> {
        std::sync::Arc::make_mut(&mut self.cells).insert((loc, key), value)
    }

    /// Iterates over objects (for the interpretation function).
    pub fn objects(&self) -> impl Iterator<Item = (&Expr, &Expr)> {
        self.meta.iter()
    }

    /// Iterates over heap cells (for the interpretation function).
    pub fn heap_cells(&self) -> impl Iterator<Item = (&(Expr, Expr), &Expr)> {
        self.cells.iter()
    }

    /// The keys defined on object `loc` (syntactically keyed cells).
    fn keys_of(&self, loc: &Expr) -> Vec<Expr> {
        self.cells
            .keys()
            .filter(|(l, _)| l == loc)
            .map(|(_, k)| k.clone())
            .collect()
    }

    /// Matches `el` against the registered object locations: the feasible
    /// `(location, equality constraint)` pairs plus the
    /// not-any-object constraint.
    fn match_objects(
        &self,
        el: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> (Vec<(Expr, Expr)>, Expr) {
        let mut matches = Vec::new();
        let mut none_of = Expr::tt();
        for loc in self.meta.keys() {
            let eq = solver.simplify(pc, &el.clone().eq(loc.clone()));
            if eq.as_bool() != Some(false) && solver.sat_with(pc, &eq).possibly_sat() {
                matches.push((loc.clone(), eq));
            }
            none_of = none_of.and(el.clone().ne(loc.clone()));
        }
        (matches, solver.simplify(pc, &none_of))
    }

    /// Matches key `ek` against the keys of object `loc`.
    fn match_keys(
        &self,
        loc: &Expr,
        ek: &Expr,
        under: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> (Vec<(Expr, Expr)>, Expr) {
        let mut matches = Vec::new();
        let mut none_of = under.clone();
        for key in self.keys_of(loc) {
            let eq = solver.simplify(pc, &under.clone().and(ek.clone().eq(key.clone())));
            if eq.as_bool() != Some(false) && solver.sat_with(pc, &eq).possibly_sat() {
                matches.push((key.clone(), eq));
            }
            none_of = none_of.and(ek.clone().ne(key.clone()));
        }
        (matches, solver.simplify(pc, &none_of))
    }

    // ---- literal fast paths (bytecode backend only) -----------------
    //
    // When the looked-up location/key and every registered location/key
    // are literals, each equality in `match_objects`/`match_keys` folds
    // syntactically: the matched branch's constraint is the literal
    // `true`, every other candidate folds to `false`, and the
    // none-of-them disequality conjunction folds to `false` (a match
    // exists) or `true` (no match). `eval_binop(Eq)` is total and
    // `Value`'s derived `Eq`/`Ord` agree, so a `BTreeMap` hit is *the
    // same decision* the solver's constant folder would make. The branch
    // set is therefore decided without the solver — except for one
    // residual probe: `push_branch` gates the surviving branch on
    // `sat(pc ∧ true)`, which [`literal_gate`] preserves so an unsat
    // path condition yields the same empty branch set on both paths.
    // These helpers are reachable only from `execute_action_coded` (the
    // bytecode backend); the tree walk stays a byte-identical reference.

    /// True when every expression yielded is a literal value.
    fn all_literal<'a>(mut exprs: impl Iterator<Item = &'a Expr>) -> bool {
        exprs.all(|e| matches!(e, Expr::Val(_)))
    }

    /// Resolves a literal location against a fully-literal object table:
    /// `Some(found)` when the match folds for every registered object,
    /// `None` when any side is symbolic and `match_objects` must run.
    fn literal_object(&self, el: &Expr) -> Option<Option<Expr>> {
        if !matches!(el, Expr::Val(_)) || !Self::all_literal(self.meta.keys()) {
            return None;
        }
        Some(self.meta.get_key_value(el).map(|(loc, _)| loc.clone()))
    }

    /// Resolves a literal key against object `loc` when all of its keys
    /// are literal; `None` falls back to `match_keys`.
    fn literal_key(&self, loc: &Expr, ek: &Expr) -> Option<Option<Expr>> {
        if !matches!(ek, Expr::Val(_)) {
            return None;
        }
        let mut found = None;
        for (l, k) in self.cells.keys() {
            if l == loc {
                if !matches!(k, Expr::Val(_)) {
                    return None;
                }
                if k == ek {
                    found = Some(k.clone());
                }
            }
        }
        Some(found)
    }

    /// The non-object error branch shared by the literal fast paths.
    fn literal_not_obj(
        &self,
        action: &str,
        el: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        literal_gate(
            pc,
            solver,
            vec![SymBranch::err_if(
                self.clone(),
                err_expr(format!("{action}: {el} is not an object")),
                Expr::tt(),
            )],
        )
    }

    fn fast_del_obj(
        &self,
        el: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        Some(match self.literal_object(el)? {
            Some(loc) => {
                let mut mem = self.clone();
                std::sync::Arc::make_mut(&mut mem.meta).remove(&loc);
                std::sync::Arc::make_mut(&mut mem.cells).retain(|(l, _), _| l != &loc);
                literal_gate(
                    pc,
                    solver,
                    vec![SymBranch::ok_if(mem, Expr::tt(), Expr::tt())],
                )
            }
            None => self.literal_not_obj("delObj", el, pc, solver),
        })
    }

    fn fast_get_prop(
        &self,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        let args = expr_args(arg, 2, "getProp").ok()?;
        let (el, ek) = (&args[0], &args[1]);
        let loc = match self.literal_object(el)? {
            Some(loc) => loc,
            None => return Some(self.literal_not_obj("getProp", el, pc, solver)),
        };
        let value = match self.literal_key(&loc, ek)? {
            Some(key) => self.cells[&(loc, key)].clone(),
            // Absent key reads as `undefined` (JS semantics).
            None => undefined_expr(),
        };
        Some(literal_gate(
            pc,
            solver,
            vec![SymBranch::ok_if(self.clone(), value, Expr::tt())],
        ))
    }

    fn fast_set_prop(
        &self,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        let args = expr_args(arg, 3, "setProp").ok()?;
        let (el, ek, ev) = (&args[0], &args[1], &args[2]);
        let loc = match self.literal_object(el)? {
            Some(loc) => loc,
            None => return Some(self.literal_not_obj("setProp", el, pc, solver)),
        };
        // Overwrite keeps the stored key expression, extend inserts the
        // looked-up one — content-identical here (both fold equal).
        let key = self.literal_key(&loc, ek)?.unwrap_or_else(|| ek.clone());
        let mut mem = self.clone();
        std::sync::Arc::make_mut(&mut mem.cells).insert((loc, key), ev.clone());
        Some(literal_gate(
            pc,
            solver,
            vec![SymBranch::ok_if(mem, ev.clone(), Expr::tt())],
        ))
    }

    fn fast_del_prop(
        &self,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        let args = expr_args(arg, 2, "delProp").ok()?;
        let (el, ek) = (&args[0], &args[1]);
        let loc = match self.literal_object(el)? {
            Some(loc) => loc,
            None => return Some(self.literal_not_obj("delProp", el, pc, solver)),
        };
        let mem = match self.literal_key(&loc, ek)? {
            Some(key) => {
                let mut mem = self.clone();
                std::sync::Arc::make_mut(&mut mem.cells).remove(&(loc, key));
                mem
            }
            // Deleting an absent property is a no-op, like JS.
            None => self.clone(),
        };
        Some(literal_gate(
            pc,
            solver,
            vec![SymBranch::ok_if(mem, Expr::tt(), Expr::tt())],
        ))
    }

    fn fast_has_prop(
        &self,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        let args = expr_args(arg, 2, "hasProp").ok()?;
        let (el, ek) = (&args[0], &args[1]);
        let loc = match self.literal_object(el)? {
            Some(loc) => loc,
            None => return Some(self.literal_not_obj("hasProp", el, pc, solver)),
        };
        let has = self.literal_key(&loc, ek)?.is_some();
        Some(literal_gate(
            pc,
            solver,
            vec![SymBranch::ok_if(self.clone(), Expr::bool(has), Expr::tt())],
        ))
    }

    fn fast_get_meta(
        &self,
        el: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        Some(match self.literal_object(el)? {
            Some(loc) => {
                let meta = self.meta[&loc].clone();
                literal_gate(
                    pc,
                    solver,
                    vec![SymBranch::ok_if(self.clone(), meta, Expr::tt())],
                )
            }
            None => self.literal_not_obj("getMeta", el, pc, solver),
        })
    }

    fn fast_set_meta(
        &self,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Option<Vec<SymBranch<Self>>> {
        let args = expr_args(arg, 2, "setMeta").ok()?;
        let (el, em) = (&args[0], &args[1]);
        Some(match self.literal_object(el)? {
            Some(loc) => {
                let mut mem = self.clone();
                std::sync::Arc::make_mut(&mut mem.meta).insert(loc, em.clone());
                literal_gate(
                    pc,
                    solver,
                    vec![SymBranch::ok_if(mem, em.clone(), Expr::tt())],
                )
            }
            None => self.literal_not_obj("setMeta", el, pc, solver),
        })
    }
}

/// The one decision probe a literal fast path keeps: the surviving
/// branch's constraint is the literal `true`, so `push_branch` would gate
/// it on `sat(pc ∧ true)` — and since `simplify(pc, true)` is the
/// identity and `PathCondition::push` drops literal `true`, that query
/// is *exactly* `sat(pc)`, issued here without the clone-and-push
/// round-trip. An unsat path condition yields the same empty branch set
/// as the general path.
fn literal_gate<M>(
    pc: &PathCondition,
    solver: &Solver,
    branches: Vec<SymBranch<M>>,
) -> Vec<SymBranch<M>> {
    if solver.check_sat(pc).possibly_sat() {
        branches
    } else {
        Vec::new()
    }
}

/// Pushes a branch unless its constraint is trivially false or unsat.
fn push_branch<M>(
    out: &mut Vec<SymBranch<M>>,
    pc: &PathCondition,
    solver: &Solver,
    branch: SymBranch<M>,
) {
    if branch.constraint.as_bool() == Some(false) {
        return;
    }
    if solver.sat_with(pc, &branch.constraint).possibly_sat() {
        out.push(branch);
    }
}

fn expr_args(arg: &Expr, n: usize, action: &str) -> Result<Vec<Expr>, Expr> {
    let parts: Option<Vec<Expr>> = match arg {
        Expr::List(es) if es.len() == n => Some(es.to_vec()),
        Expr::Val(Value::List(vs)) if vs.len() == n => {
            Some(vs.iter().cloned().map(Expr::Val).collect())
        }
        _ => None,
    };
    parts.ok_or_else(|| {
        err_expr(format!(
            "{action}: expected {n}-element argument list, got {arg}"
        ))
    })
}

impl SymbolicMemory for JsSymMemory {
    fn language() -> &'static str {
        "minijs"
    }

    fn action_code(&self, name: &str) -> Option<u16> {
        js_action_code(name)
    }

    fn execute_action_coded(
        &self,
        code: u16,
        name: &str,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        // `newObj` never consults the solver, and a fast helper returns
        // `None` whenever anything symbolic is involved; both fall back
        // to the general tree-walk implementation.
        let fast = match code {
            code::DEL_OBJ => self.fast_del_obj(arg, pc, solver),
            code::GET_PROP => self.fast_get_prop(arg, pc, solver),
            code::SET_PROP => self.fast_set_prop(arg, pc, solver),
            code::DEL_PROP => self.fast_del_prop(arg, pc, solver),
            code::HAS_PROP => self.fast_has_prop(arg, pc, solver),
            code::GET_META => self.fast_get_meta(arg, pc, solver),
            code::SET_META => self.fast_set_meta(arg, pc, solver),
            _ => None,
        };
        fast.unwrap_or_else(|| self.execute_action(name, arg, pc, solver))
    }

    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        let mut out: Vec<SymBranch<Self>> = Vec::new();
        match name {
            "newObj" => {
                let args = match expr_args(arg, 2, "newObj") {
                    Ok(a) => a,
                    Err(e) => return vec![SymBranch::err_if(self.clone(), e, Expr::tt())],
                };
                // Locations come from the allocator, so existence folds.
                if self.meta.contains_key(&args[0]) {
                    return vec![SymBranch::err_if(
                        self.clone(),
                        err_expr(format!("newObj: {} already exists", args[0])),
                        Expr::tt(),
                    )];
                }
                let mut mem = self.clone();
                std::sync::Arc::make_mut(&mut mem.meta).insert(args[0].clone(), args[1].clone());
                vec![SymBranch::ok(mem, args[0].clone())]
            }
            "delObj" => {
                let el = arg.clone();
                let (matches, none_of) = self.match_objects(&el, pc, solver);
                for (loc, eq) in matches {
                    let mut mem = self.clone();
                    std::sync::Arc::make_mut(&mut mem.meta).remove(&loc);
                    std::sync::Arc::make_mut(&mut mem.cells).retain(|(l, _), _| l != &loc);
                    push_branch(&mut out, pc, solver, SymBranch::ok_if(mem, Expr::tt(), eq));
                }
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        err_expr(format!("delObj: {el} is not an object")),
                        none_of,
                    ),
                );
                out
            }
            "getProp" => {
                let args = match expr_args(arg, 2, "getProp") {
                    Ok(a) => a,
                    Err(e) => return vec![SymBranch::err_if(self.clone(), e, Expr::tt())],
                };
                let (el, ek) = (args[0].clone(), args[1].clone());
                let (objs, not_obj) = self.match_objects(&el, pc, solver);
                for (loc, obj_eq) in objs {
                    // [SGetProp - Branch - Found] per key, plus the absent
                    // branch yielding `undefined`.
                    let (keys, none_key) = self.match_keys(&loc, &ek, &obj_eq, pc, solver);
                    for (key, eq) in keys {
                        let value = self.cells[&(loc.clone(), key)].clone();
                        push_branch(
                            &mut out,
                            pc,
                            solver,
                            SymBranch::ok_if(self.clone(), value, eq),
                        );
                    }
                    push_branch(
                        &mut out,
                        pc,
                        solver,
                        SymBranch::ok_if(self.clone(), undefined_expr(), none_key),
                    );
                }
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        err_expr(format!("getProp: {el} is not an object")),
                        not_obj,
                    ),
                );
                out
            }
            "setProp" => {
                let args = match expr_args(arg, 3, "setProp") {
                    Ok(a) => a,
                    Err(e) => return vec![SymBranch::err_if(self.clone(), e, Expr::tt())],
                };
                let (el, ek, ev) = (args[0].clone(), args[1].clone(), args[2].clone());
                let (objs, not_obj) = self.match_objects(&el, pc, solver);
                for (loc, obj_eq) in objs {
                    let (keys, none_key) = self.match_keys(&loc, &ek, &obj_eq, pc, solver);
                    for (key, eq) in keys {
                        let mut mem = self.clone();
                        std::sync::Arc::make_mut(&mut mem.cells)
                            .insert((loc.clone(), key), ev.clone());
                        push_branch(&mut out, pc, solver, SymBranch::ok_if(mem, ev.clone(), eq));
                    }
                    let mut mem = self.clone();
                    std::sync::Arc::make_mut(&mut mem.cells)
                        .insert((loc.clone(), ek.clone()), ev.clone());
                    push_branch(
                        &mut out,
                        pc,
                        solver,
                        SymBranch::ok_if(mem, ev.clone(), none_key),
                    );
                }
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        err_expr(format!("setProp: {el} is not an object")),
                        not_obj,
                    ),
                );
                out
            }
            "delProp" => {
                let args = match expr_args(arg, 2, "delProp") {
                    Ok(a) => a,
                    Err(e) => return vec![SymBranch::err_if(self.clone(), e, Expr::tt())],
                };
                let (el, ek) = (args[0].clone(), args[1].clone());
                let (objs, not_obj) = self.match_objects(&el, pc, solver);
                for (loc, obj_eq) in objs {
                    let (keys, none_key) = self.match_keys(&loc, &ek, &obj_eq, pc, solver);
                    for (key, eq) in keys {
                        let mut mem = self.clone();
                        std::sync::Arc::make_mut(&mut mem.cells).remove(&(loc.clone(), key));
                        push_branch(&mut out, pc, solver, SymBranch::ok_if(mem, Expr::tt(), eq));
                    }
                    // Deleting an absent property is a no-op, like JS.
                    push_branch(
                        &mut out,
                        pc,
                        solver,
                        SymBranch::ok_if(self.clone(), Expr::tt(), none_key),
                    );
                }
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        err_expr(format!("delProp: {el} is not an object")),
                        not_obj,
                    ),
                );
                out
            }
            "hasProp" => {
                let args = match expr_args(arg, 2, "hasProp") {
                    Ok(a) => a,
                    Err(e) => return vec![SymBranch::err_if(self.clone(), e, Expr::tt())],
                };
                let (el, ek) = (args[0].clone(), args[1].clone());
                let (objs, not_obj) = self.match_objects(&el, pc, solver);
                for (loc, obj_eq) in objs {
                    let (keys, none_key) = self.match_keys(&loc, &ek, &obj_eq, pc, solver);
                    for (_, eq) in keys {
                        push_branch(
                            &mut out,
                            pc,
                            solver,
                            SymBranch::ok_if(self.clone(), Expr::tt(), eq),
                        );
                    }
                    push_branch(
                        &mut out,
                        pc,
                        solver,
                        SymBranch::ok_if(self.clone(), Expr::ff(), none_key),
                    );
                }
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        err_expr(format!("hasProp: {el} is not an object")),
                        not_obj,
                    ),
                );
                out
            }
            "getMeta" => {
                let el = arg.clone();
                let (objs, not_obj) = self.match_objects(&el, pc, solver);
                for (loc, obj_eq) in objs {
                    let meta = self.meta[&loc].clone();
                    push_branch(
                        &mut out,
                        pc,
                        solver,
                        SymBranch::ok_if(self.clone(), meta, obj_eq),
                    );
                }
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        err_expr(format!("getMeta: {el} is not an object")),
                        not_obj,
                    ),
                );
                out
            }
            "setMeta" => {
                let args = match expr_args(arg, 2, "setMeta") {
                    Ok(a) => a,
                    Err(e) => return vec![SymBranch::err_if(self.clone(), e, Expr::tt())],
                };
                let (el, em) = (args[0].clone(), args[1].clone());
                let (objs, not_obj) = self.match_objects(&el, pc, solver);
                for (loc, obj_eq) in objs {
                    let mut mem = self.clone();
                    std::sync::Arc::make_mut(&mut mem.meta).insert(loc, em.clone());
                    push_branch(
                        &mut out,
                        pc,
                        solver,
                        SymBranch::ok_if(mem, em.clone(), obj_eq),
                    );
                }
                push_branch(
                    &mut out,
                    pc,
                    solver,
                    SymBranch::err_if(
                        self.clone(),
                        err_expr(format!("setMeta: {el} is not an object")),
                        not_obj,
                    ),
                );
                out
            }
            other => vec![SymBranch::err_if(
                self.clone(),
                err_expr(format!("unknown JS action {other}")),
                Expr::tt(),
            )],
        }
    }

    fn lvars(&self) -> BTreeSet<LVar> {
        let mut out = BTreeSet::new();
        for (loc, meta) in self.meta.iter() {
            out.extend(loc.lvars());
            out.extend(meta.lvars());
        }
        for ((loc, key), value) in self.cells.iter() {
            out.extend(loc.lvars());
            out.extend(key.lvars());
            out.extend(value.lvars());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::undefined_value;
    use gillian_gil::Sym;

    fn loc(i: u64) -> Value {
        Value::Sym(Sym(Sym::FIRST_FRESH + i))
    }

    fn new_obj(m: &mut JsConcMemory, i: u64) -> Value {
        let l = loc(i);
        m.execute_action("newObj", Value::List(vec![l.clone(), Value::str("Object")]))
            .unwrap();
        l
    }

    #[test]
    fn concrete_lifecycle() {
        let mut m = JsConcMemory::default();
        let l = new_obj(&mut m, 0);
        // getProp of an absent key is undefined (JS semantics).
        let v = m
            .execute_action("getProp", Value::List(vec![l.clone(), Value::str("k")]))
            .unwrap();
        assert_eq!(v, undefined_value());
        m.execute_action(
            "setProp",
            Value::List(vec![l.clone(), Value::num(0.0), Value::str("x")]),
        )
        .unwrap();
        assert_eq!(
            m.execute_action("getProp", Value::List(vec![l.clone(), Value::num(0.0)]))
                .unwrap(),
            Value::str("x")
        );
        assert_eq!(
            m.execute_action("hasProp", Value::List(vec![l.clone(), Value::num(0.0)]))
                .unwrap(),
            Value::Bool(true)
        );
        m.execute_action("delProp", Value::List(vec![l.clone(), Value::num(0.0)]))
            .unwrap();
        assert_eq!(
            m.execute_action("hasProp", Value::List(vec![l.clone(), Value::num(0.0)]))
                .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            m.execute_action("getMeta", l.clone()).unwrap(),
            Value::str("Object")
        );
        m.execute_action("delObj", l.clone()).unwrap();
        assert!(m
            .execute_action("getProp", Value::List(vec![l, Value::str("k")]))
            .is_err());
    }

    #[test]
    fn concrete_non_object_accesses_error() {
        let mut m = JsConcMemory::default();
        for action in ["getProp", "setProp", "hasProp"] {
            let n = if action == "setProp" { 3 } else { 2 };
            let mut items = vec![undefined_value(), Value::str("k")];
            if n == 3 {
                items.push(Value::num(1.0));
            }
            assert!(
                m.execute_action(action, Value::List(items)).is_err(),
                "{action} on undefined must be a JS error"
            );
        }
    }

    #[test]
    fn symbolic_getprop_branches_on_symbolic_key() {
        // One object with keys "a" and "b"; a symbolic key must branch
        // three ways: k = "a", k = "b", k ∉ {a, b} → undefined.
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let mut m = JsSymMemory::default();
        let l = Expr::Val(loc(0));
        m.insert_object(l.clone(), Expr::str("Object"));
        m.insert_cell(l.clone(), Expr::str("a"), Expr::num(1.0));
        m.insert_cell(l.clone(), Expr::str("b"), Expr::num(2.0));
        let k = Expr::lvar(LVar(0));
        let branches = m.execute_action("getProp", &Expr::list([l, k]), &pc, &solver);
        // 3 in-object branches; the not-an-object branch is infeasible for
        // a literal location… but the key lvar could equal the location?
        // No: `el` here is the literal location, so not_obj is false.
        assert_eq!(branches.len(), 3, "{branches:#?}");
        assert!(branches.iter().any(|b| b.outcome == Ok(undefined_expr())));
    }

    #[test]
    fn symbolic_getprop_with_concrete_key_is_deterministic() {
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let mut m = JsSymMemory::default();
        let l = Expr::Val(loc(0));
        m.insert_object(l.clone(), Expr::str("Object"));
        m.insert_cell(l.clone(), Expr::str("a"), Expr::num(1.0));
        let branches = m.execute_action("getProp", &Expr::list([l, Expr::str("a")]), &pc, &solver);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].outcome, Ok(Expr::num(1.0)));
        assert_eq!(branches[0].constraint.as_bool(), Some(true));
    }

    #[test]
    fn symbolic_access_on_undefined_is_an_error_branch() {
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let m = JsSymMemory::default();
        let branches = m.execute_action(
            "getProp",
            &Expr::list([undefined_expr(), Expr::str("a")]),
            &pc,
            &solver,
        );
        assert_eq!(branches.len(), 1);
        assert!(branches[0].outcome.is_err());
    }

    #[test]
    fn symbolic_setprop_overwrites_or_extends() {
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let mut m = JsSymMemory::default();
        let l = Expr::Val(loc(0));
        m.insert_object(l.clone(), Expr::str("Object"));
        m.insert_cell(l.clone(), Expr::str("a"), Expr::num(1.0));
        let k = Expr::lvar(LVar(0));
        let branches =
            m.execute_action("setProp", &Expr::list([l, k, Expr::num(9.0)]), &pc, &solver);
        assert_eq!(branches.len(), 2);
        let sizes: Vec<usize> = branches.iter().map(|b| b.memory.cells.len()).collect();
        assert!(sizes.contains(&1), "overwrite branch");
        assert!(sizes.contains(&2), "extend branch");
    }
}
