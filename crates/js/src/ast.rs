//! The MiniJS abstract syntax.
//!
//! MiniJS is the dynamic-object guest language standing in for ES5 Strict
//! in this reproduction (see `DESIGN.md` §2): extensible objects with
//! *computed* property keys, first-class function references, a metadata
//! table, JS-style truthiness and operator behaviour. Deviations from
//! JavaScript are deliberate and documented on the items that embody them
//! (strict equality only, no prototype chains, property keys are values
//! rather than strings).

/// A MiniJS expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A number literal (all MiniJS numbers are doubles, like JS).
    Num(f64),
    /// A string literal.
    Str(String),
    /// A boolean literal.
    Bool(bool),
    /// The `undefined` constant.
    Undefined,
    /// The `null` constant.
    Null,
    /// A variable reference (or a function reference, resolved by the
    /// compiler when the name is a declared function).
    Var(String),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// Property access `e[k]`; `e.p` desugars to `e["p"]`.
    Prop(Box<Expr>, Box<Expr>),
    /// A function call `f(ē)`; `f` may be any expression evaluating to a
    /// function reference.
    Call(Box<Expr>, Vec<Expr>),
    /// A method call `o.m(ē)` / `o[m](ē)`: looks up the property and calls
    /// it with the receiver prepended as the first argument (MiniJS's
    /// `this` convention).
    MethodCall {
        /// The receiver object.
        object: Box<Expr>,
        /// The method property key.
        method: Box<Expr>,
        /// Call arguments (the receiver is prepended).
        args: Vec<Expr>,
    },
    /// An object literal `{ p: e, … }`.
    Object(Vec<(String, Expr)>),
    /// An array literal `[e, …]` (an object with keys `0.0 … n-1.0` and a
    /// `"length"` property, `Array` metadata).
    Array(Vec<Expr>),
    /// A fresh unconstrained symbolic value (`symb()`).
    Symb,
    /// A fresh symbolic number (`symb_number()`).
    SymbNumber,
    /// A fresh symbolic string (`symb_string()`).
    SymbString,
    /// A fresh symbolic boolean (`symb_bool()`).
    SymbBool,
}

/// MiniJS binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+` — numeric addition or string concatenation (TypeError
    /// otherwise; MiniJS does not coerce).
    Add,
    /// `-` (numbers only).
    Sub,
    /// `*` (numbers only).
    Mul,
    /// `/` (numbers only, IEEE semantics).
    Div,
    /// `%` (numbers only).
    Mod,
    /// `===` (and `==`, which MiniJS treats identically): strict
    /// structural equality.
    StrictEq,
    /// `!==` / `!=`.
    StrictNeq,
    /// `<` (numbers or strings).
    Lt,
    /// `<=`.
    Leq,
    /// `>`.
    Gt,
    /// `>=`.
    Geq,
    /// `&&` — short-circuit, JS truthiness, *boolean-valued* (MiniJS
    /// returns the truthiness verdict, not the operand).
    And,
    /// `||` — short-circuit, boolean-valued.
    Or,
}

/// MiniJS unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `!` — negated truthiness.
    Not,
    /// `-` (numbers only).
    Neg,
    /// `typeof` — yields `"number" | "string" | "boolean" | "undefined" |
    /// "object" | "function"` (`null` is `"object"`, as in JS).
    TypeOf,
}

/// A MiniJS statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `var x = e;` (declaration and assignment are not distinguished).
    VarDecl(String, Expr),
    /// `x = e;`
    Assign(String, Expr),
    /// `e[k] = v;` / `e.p = v;`
    PropAssign {
        /// The object expression.
        object: Expr,
        /// The property key expression.
        key: Expr,
        /// The assigned value.
        value: Expr,
    },
    /// `delete e[k];`
    Delete {
        /// The object expression.
        object: Expr,
        /// The property key expression.
        key: Expr,
    },
    /// An expression evaluated for effect (usually a call).
    ExprStmt(Expr),
    /// `if (e) { … } else { … }`
    If {
        /// The condition (JS truthiness applies).
        cond: Expr,
        /// The then-branch.
        then: Vec<Stmt>,
        /// The else-branch (empty when omitted).
        otherwise: Vec<Stmt>,
    },
    /// `while (e) { … }`
    While {
        /// The loop condition.
        cond: Expr,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { … }` (desugared by the compiler).
    For {
        /// The initialiser (run once).
        init: Box<Stmt>,
        /// The condition.
        cond: Expr,
        /// The step statement (run after each iteration).
        step: Box<Stmt>,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return e;` (plain `return;` returns `undefined`).
    Return(Expr),
    /// `throw e;` — terminates the execution with an error (MiniJS has no
    /// `try`/`catch`).
    Throw(Expr),
    /// `assume(e);` — cut paths where `e` is not truthy.
    Assume(Expr),
    /// `assert(e);` — fail paths where `e` is not truthy.
    Assert(Expr),
}

/// A MiniJS function declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A MiniJS program: a set of function declarations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// The functions, in source order.
    pub functions: Vec<Function>,
}

impl Module {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Merges another module's functions into this one.
    pub fn extend(&mut self, other: Module) {
        self.functions.extend(other.functions);
    }
}
