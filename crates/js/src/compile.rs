//! The MiniJS→GIL compiler.
//!
//! Mirrors the structure of the Gillian-JS compiler (paper §4.1): control
//! flow compiles trivially to GIL gotos, and every dynamically-typed
//! operation is a call into the GIL runtime ([`crate::runtime`]). Object
//! and array literals allocate their location with `uSym` (uninterpreted
//! symbols as object locations, §2.2) and register it with the `newObj`
//! action; `symb*()` compiles to `iSym` plus a type assumption.

use crate::ast::{BinOp, Expr as JsExpr, Function, Module, Stmt, UnOp};
use crate::runtime::runtime_prog;
use crate::values::{null_expr, undefined_expr};
use gillian_gil::{Cmd, Expr, Proc, Prog, TypeTag};
use std::collections::BTreeSet;

/// Compiles a MiniJS module to a GIL program (guest functions plus the
/// runtime procedures).
pub fn compile_module(module: &Module) -> Prog {
    let funcs: BTreeSet<String> = module.functions.iter().map(|f| f.name.clone()).collect();
    let mut prog = runtime_prog();
    for f in &module.functions {
        prog.add(compile_function(f, &funcs));
    }
    prog
}

struct LoopFrame {
    break_holes: Vec<usize>,
    continue_holes: Vec<usize>,
}

struct Ctx<'a> {
    cmds: Vec<Cmd>,
    tmp: usize,
    funcs: &'a BTreeSet<String>,
    locals: BTreeSet<String>,
    loops: Vec<LoopFrame>,
}

impl<'a> Ctx<'a> {
    fn temp(&mut self) -> String {
        self.tmp += 1;
        format!("__t{}", self.tmp)
    }

    fn here(&self) -> usize {
        self.cmds.len()
    }

    fn emit(&mut self, c: Cmd) -> usize {
        self.cmds.push(c);
        self.cmds.len() - 1
    }

    /// Emits a placeholder later patched to `Goto`.
    fn emit_hole(&mut self) -> usize {
        self.emit(Cmd::Skip)
    }

    fn patch_goto(&mut self, at: usize, target: usize) {
        self.cmds[at] = Cmd::Goto(target);
    }

    /// Calls a runtime/static procedure into a fresh temp, returning the
    /// temp as an expression.
    fn call(&mut self, proc: &str, args: Vec<Expr>) -> Expr {
        let t = self.temp();
        self.emit(Cmd::call_static(&t, proc, args));
        Expr::pvar(t)
    }

    /// Wraps a compiled value in a JS truthiness test.
    fn truthy(&mut self, v: Expr) -> Expr {
        self.call("__truthy", vec![v])
    }
}

/// Compiles one MiniJS function.
pub fn compile_function(f: &Function, funcs: &BTreeSet<String>) -> Proc {
    let mut ctx = Ctx {
        cmds: Vec::new(),
        tmp: 0,
        funcs,
        locals: f.params.iter().cloned().collect(),
        loops: Vec::new(),
    };
    compile_stmts(&f.body, &mut ctx);
    ctx.emit(Cmd::Return(undefined_expr()));
    Proc::new(
        f.name.as_str(),
        f.params.iter().map(String::as_str),
        ctx.cmds,
    )
}

fn compile_stmts(stmts: &[Stmt], ctx: &mut Ctx<'_>) {
    for s in stmts {
        compile_stmt(s, ctx);
    }
}

fn compile_stmt(s: &Stmt, ctx: &mut Ctx<'_>) {
    match s {
        Stmt::VarDecl(x, e) | Stmt::Assign(x, e) => {
            let v = compile_expr(e, ctx);
            ctx.locals.insert(x.clone());
            ctx.emit(Cmd::assign(x, v));
        }
        Stmt::PropAssign { object, key, value } => {
            let o = compile_expr(object, ctx);
            let k = compile_expr(key, ctx);
            let v = compile_expr(value, ctx);
            ctx.call("__setprop", vec![o, k, v]);
        }
        Stmt::Delete { object, key } => {
            let o = compile_expr(object, ctx);
            let k = compile_expr(key, ctx);
            ctx.call("__delprop", vec![o, k]);
        }
        Stmt::ExprStmt(e) => {
            compile_expr(e, ctx);
        }
        Stmt::If {
            cond,
            then,
            otherwise,
        } => {
            let c = compile_expr(cond, ctx);
            let t = ctx.truthy(c);
            let guard_at = ctx.emit_hole();
            compile_stmts(otherwise, ctx);
            let skip_then = ctx.emit_hole();
            let then_at = ctx.here();
            compile_stmts(then, ctx);
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(t, then_at);
            ctx.patch_goto(skip_then, end);
        }
        Stmt::While { cond, body } => {
            let loop_at = ctx.here();
            let c = compile_expr(cond, ctx);
            let t = ctx.truthy(c);
            let guard_at = ctx.emit_hole();
            let exit_hole = ctx.emit_hole();
            let body_at = ctx.here();
            ctx.loops.push(LoopFrame {
                break_holes: Vec::new(),
                continue_holes: Vec::new(),
            });
            compile_stmts(body, ctx);
            ctx.emit(Cmd::Goto(loop_at));
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(t, body_at);
            ctx.patch_goto(exit_hole, end);
            let frame = ctx.loops.pop().expect("loop frame");
            for hole in frame.break_holes {
                ctx.patch_goto(hole, end);
            }
            for hole in frame.continue_holes {
                ctx.patch_goto(hole, loop_at);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            compile_stmt(init, ctx);
            let loop_at = ctx.here();
            let c = compile_expr(cond, ctx);
            let t = ctx.truthy(c);
            let guard_at = ctx.emit_hole();
            let exit_hole = ctx.emit_hole();
            let body_at = ctx.here();
            ctx.loops.push(LoopFrame {
                break_holes: Vec::new(),
                continue_holes: Vec::new(),
            });
            compile_stmts(body, ctx);
            let frame = ctx.loops.pop().expect("loop frame");
            let cont_at = ctx.here();
            compile_stmt(step, ctx);
            ctx.emit(Cmd::Goto(loop_at));
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(t, body_at);
            ctx.patch_goto(exit_hole, end);
            for hole in frame.break_holes {
                ctx.patch_goto(hole, end);
            }
            for hole in frame.continue_holes {
                ctx.patch_goto(hole, cont_at);
            }
        }
        Stmt::Break => {
            let hole = ctx.emit_hole();
            match ctx.loops.last_mut() {
                Some(frame) => frame.break_holes.push(hole),
                None => ctx.cmds[hole] = Cmd::Fail(Expr::str("break outside a loop")),
            }
        }
        Stmt::Continue => {
            let hole = ctx.emit_hole();
            match ctx.loops.last_mut() {
                Some(frame) => frame.continue_holes.push(hole),
                None => ctx.cmds[hole] = Cmd::Fail(Expr::str("continue outside a loop")),
            }
        }
        Stmt::Return(e) => {
            let v = compile_expr(e, ctx);
            ctx.emit(Cmd::Return(v));
        }
        Stmt::Throw(e) => {
            let v = compile_expr(e, ctx);
            ctx.emit(Cmd::Fail(Expr::list([Expr::str("JSThrow"), v])));
        }
        Stmt::Assume(e) => {
            let v = compile_expr(e, ctx);
            let t = ctx.truthy(v);
            let pc = ctx.here();
            ctx.emit(Cmd::IfGoto(t, pc + 2));
            ctx.emit(Cmd::Vanish);
        }
        Stmt::Assert(e) => {
            let v = compile_expr(e, ctx);
            let t = ctx.truthy(v);
            let pc = ctx.here();
            ctx.emit(Cmd::IfGoto(t, pc + 2));
            ctx.emit(Cmd::Fail(Expr::list([
                Expr::str("assertion failure"),
                Expr::str(format!("{e:?}")),
            ])));
        }
    }
}

/// Compiles an expression, emitting commands into `ctx` and returning the
/// GIL expression holding its value.
fn compile_expr(e: &JsExpr, ctx: &mut Ctx<'_>) -> Expr {
    match e {
        JsExpr::Num(x) => Expr::num(*x),
        JsExpr::Str(s) => Expr::str(s),
        JsExpr::Bool(b) => Expr::bool(*b),
        JsExpr::Undefined => undefined_expr(),
        JsExpr::Null => null_expr(),
        JsExpr::Var(x) => {
            if !ctx.locals.contains(x) && ctx.funcs.contains(x) {
                Expr::proc(x)
            } else {
                Expr::pvar(x)
            }
        }
        JsExpr::Bin(op, a, b) => compile_bin(*op, a, b, ctx),
        JsExpr::Un(op, v) => {
            let cv = compile_expr(v, ctx);
            match op {
                UnOp::Not => {
                    let t = ctx.truthy(cv);
                    t.not()
                }
                UnOp::Neg => ctx.call("__neg", vec![cv]),
                UnOp::TypeOf => ctx.call("__typeof", vec![cv]),
            }
        }
        JsExpr::Prop(o, k) => {
            let co = compile_expr(o, ctx);
            let ck = compile_expr(k, ctx);
            ctx.call("__getprop", vec![co, ck])
        }
        JsExpr::Call(f, args) => {
            // `floor` is a builtin (Math.floor analogue) unless shadowed.
            if let JsExpr::Var(name) = f.as_ref() {
                if name == "floor" && !ctx.locals.contains(name) && !ctx.funcs.contains(name) {
                    let cargs: Vec<Expr> = args.iter().map(|a| compile_expr(a, ctx)).collect();
                    return ctx.call("__floor", cargs);
                }
            }
            let callee = compile_expr(f, ctx);
            let cargs: Vec<Expr> = args.iter().map(|a| compile_expr(a, ctx)).collect();
            let t = ctx.temp();
            ctx.emit(Cmd::Call {
                lhs: t.as_str().into(),
                proc: callee,
                args: cargs,
            });
            Expr::pvar(t)
        }
        JsExpr::MethodCall {
            object,
            method,
            args,
        } => {
            let co = compile_expr(object, ctx);
            let cm = compile_expr(method, ctx);
            let fv = ctx.call("__getprop", vec![co.clone(), cm]);
            let mut cargs = vec![co];
            cargs.extend(args.iter().map(|a| compile_expr(a, ctx)));
            let t = ctx.temp();
            ctx.emit(Cmd::Call {
                lhs: t.as_str().into(),
                proc: fv,
                args: cargs,
            });
            Expr::pvar(t)
        }
        JsExpr::Object(props) => {
            let l = ctx.temp();
            let site = ctx.here() as u32;
            ctx.emit(Cmd::usym(&l, site));
            ctx.emit(Cmd::action(
                "_",
                "newObj",
                Expr::list([Expr::pvar(&l), Expr::str("Object")]),
            ));
            for (k, v) in props {
                let cv = compile_expr(v, ctx);
                ctx.emit(Cmd::action(
                    "_",
                    "setProp",
                    Expr::list([Expr::pvar(&l), Expr::str(k), cv]),
                ));
            }
            Expr::pvar(l)
        }
        JsExpr::Array(items) => {
            let l = ctx.temp();
            let site = ctx.here() as u32;
            ctx.emit(Cmd::usym(&l, site));
            ctx.emit(Cmd::action(
                "_",
                "newObj",
                Expr::list([Expr::pvar(&l), Expr::str("Array")]),
            ));
            for (i, item) in items.iter().enumerate() {
                let cv = compile_expr(item, ctx);
                ctx.emit(Cmd::action(
                    "_",
                    "setProp",
                    Expr::list([Expr::pvar(&l), Expr::num(i as f64), cv]),
                ));
            }
            ctx.emit(Cmd::action(
                "_",
                "setProp",
                Expr::list([
                    Expr::pvar(&l),
                    Expr::str("length"),
                    Expr::num(items.len() as f64),
                ]),
            ));
            Expr::pvar(l)
        }
        JsExpr::Symb => fresh_symbolic(ctx, None),
        JsExpr::SymbNumber => fresh_symbolic(ctx, Some(TypeTag::Num)),
        JsExpr::SymbString => fresh_symbolic(ctx, Some(TypeTag::Str)),
        JsExpr::SymbBool => fresh_symbolic(ctx, Some(TypeTag::Bool)),
    }
}

fn fresh_symbolic(ctx: &mut Ctx<'_>, tag: Option<TypeTag>) -> Expr {
    let t = ctx.temp();
    let site = ctx.here() as u32;
    ctx.emit(Cmd::isym(&t, site));
    if let Some(tag) = tag {
        // assume typeOf(t) = tag
        let pc = ctx.here();
        ctx.emit(Cmd::IfGoto(Expr::pvar(&t).has_type(tag), pc + 2));
        ctx.emit(Cmd::Vanish);
    }
    Expr::pvar(t)
}

fn compile_bin(op: BinOp, a: &JsExpr, b: &JsExpr, ctx: &mut Ctx<'_>) -> Expr {
    match op {
        // Short-circuit, boolean-valued (MiniJS deviation from JS, which
        // returns the deciding operand).
        BinOp::And => {
            let ca = compile_expr(a, ctx);
            let ta = ctx.truthy(ca);
            let res = ctx.temp();
            let guard_at = ctx.emit_hole();
            ctx.emit(Cmd::assign(&res, Expr::ff()));
            let skip = ctx.emit_hole();
            let rhs_at = ctx.here();
            let cb = compile_expr(b, ctx);
            let tb = ctx.truthy(cb);
            ctx.emit(Cmd::assign(&res, tb));
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(ta, rhs_at);
            ctx.patch_goto(skip, end);
            Expr::pvar(res)
        }
        BinOp::Or => {
            let ca = compile_expr(a, ctx);
            let ta = ctx.truthy(ca);
            let res = ctx.temp();
            let guard_at = ctx.emit_hole();
            // Not truthy: evaluate rhs.
            let cb = compile_expr(b, ctx);
            let tb = ctx.truthy(cb);
            ctx.emit(Cmd::assign(&res, tb));
            let skip = ctx.emit_hole();
            let short_at = ctx.here();
            ctx.emit(Cmd::assign(&res, Expr::tt()));
            let end = ctx.here();
            ctx.cmds[guard_at] = Cmd::IfGoto(ta, short_at);
            ctx.patch_goto(skip, end);
            Expr::pvar(res)
        }
        _ => {
            let ca = compile_expr(a, ctx);
            let cb = compile_expr(b, ctx);
            match op {
                BinOp::Add => ctx.call("__plus", vec![ca, cb]),
                BinOp::Sub => ctx.call("__sub", vec![ca, cb]),
                BinOp::Mul => ctx.call("__mul", vec![ca, cb]),
                BinOp::Div => ctx.call("__div", vec![ca, cb]),
                BinOp::Mod => ctx.call("__mod", vec![ca, cb]),
                BinOp::StrictEq => ca.eq(cb),
                BinOp::StrictNeq => ca.ne(cb),
                BinOp::Lt => ctx.call("__lt", vec![ca, cb]),
                BinOp::Leq => ctx.call("__le", vec![ca, cb]),
                BinOp::Gt => ctx.call("__lt", vec![cb, ca]),
                BinOp::Geq => ctx.call("__le", vec![cb, ca]),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn compile(src: &str) -> Prog {
        compile_module(&parse_module(src).unwrap())
    }

    #[test]
    fn module_includes_runtime() {
        let p = compile("function f() { return 1; }");
        assert!(p.proc("__truthy").is_some());
        assert!(p.proc("__plus").is_some());
        assert!(p.proc("f").is_some());
    }

    #[test]
    fn object_literal_allocates_and_registers() {
        let p = compile("function f() { var o = { a: 1 }; return o; }");
        let f = p.proc("f").unwrap();
        assert!(f.body.iter().any(|c| matches!(c, Cmd::USym { .. })));
        assert!(f
            .body
            .iter()
            .any(|c| matches!(c, Cmd::Action { name, .. } if name.as_ref() == "newObj")));
        assert!(f
            .body
            .iter()
            .any(|c| matches!(c, Cmd::Action { name, .. } if name.as_ref() == "setProp")));
    }

    #[test]
    fn symb_number_emits_isym_and_type_assumption() {
        let p = compile("function f() { var x = symb_number(); return x; }");
        let f = p.proc("f").unwrap();
        assert!(f.body.iter().any(|c| matches!(c, Cmd::ISym { .. })));
        assert!(f.body.iter().any(|c| matches!(c, Cmd::Vanish)));
    }

    #[test]
    fn method_call_threads_receiver() {
        let p = compile("function f(o) { return o.m(1); }");
        let f = p.proc("f").unwrap();
        // A __getprop call followed by a dynamic call with 2 args (o, 1).
        let call = f
            .body
            .iter()
            .find_map(|c| match c {
                Cmd::Call { proc, args, .. } if !matches!(proc, Expr::Val(_)) => Some(args.len()),
                _ => None,
            })
            .expect("dynamic method call");
        assert_eq!(call, 2);
    }

    #[test]
    fn loops_and_breaks_are_wellformed() {
        let p = compile(
            r#"
            function f(n) {
                var total = 0;
                for (var i = 0; i < n; i = i + 1) {
                    if (i == 3) { break; }
                    if (i == 1) { continue; }
                    total = total + i;
                }
                while (total > 100) { total = total - 1; }
                return total;
            }
        "#,
        );
        let f = p.proc("f").unwrap();
        // No Skip placeholders may survive compilation.
        assert!(
            !f.body.iter().any(|c| matches!(c, Cmd::Skip)),
            "unpatched holes: {f}"
        );
        // All goto targets are in range.
        for c in &f.body {
            match c {
                Cmd::Goto(t) | Cmd::IfGoto(_, t) => assert!(*t <= f.body.len()),
                _ => {}
            }
        }
    }
}
