//! The MiniJS runtime: GIL procedures implementing the language's dynamic
//! operator semantics.
//!
//! Like Gillian-JS — whose compiler ships "implementations of the internal
//! and built-in functions of ES5 Strict" compiled to GIL (paper §4.1) —
//! MiniJS routes every dynamically-typed operation through a small GIL
//! runtime: truthiness, `+` overloading, numeric/relational type checks,
//! `typeof`, and the checked property accessors. Compiled guest code
//! therefore executes many GIL commands per source operation, which is
//! what the "GIL Cmds" columns of Table 1 count.

use crate::values::{null_expr, undefined_expr};
use gillian_gil::{Cmd, Expr, Proc, Prog, TypeTag};

fn ty(v: &str, t: TypeTag) -> Expr {
    Expr::pvar(v).has_type(t)
}

fn js_error(msg: &str) -> Cmd {
    Cmd::Fail(Expr::list([Expr::str("JSError"), Expr::str(msg)]))
}

fn both(v1: &str, v2: &str, t: TypeTag) -> Expr {
    ty(v1, t).and(ty(v2, t))
}

/// `__truthy(v)`: JS truthiness. `false`, `0`, `-0`, `NaN`, `""`,
/// `undefined` and `null` are falsy; everything else is truthy.
fn truthy() -> Proc {
    Proc::new(
        "__truthy",
        ["v"],
        vec![
            /* 0 */ Cmd::IfGoto(ty("v", TypeTag::Bool), 7),
            /* 1 */ Cmd::IfGoto(ty("v", TypeTag::Num), 8),
            /* 2 */ Cmd::IfGoto(ty("v", TypeTag::Str), 10),
            /* 3 */ Cmd::IfGoto(ty("v", TypeTag::Sym), 5),
            /* 4 */ Cmd::Return(Expr::tt()), // Proc, List
            /* 5 */
            Cmd::IfGoto(
                Expr::pvar("v")
                    .eq(undefined_expr())
                    .or(Expr::pvar("v").eq(null_expr())),
                12,
            ),
            /* 6 */ Cmd::Return(Expr::tt()), // other symbols: object refs
            /* 7 */ Cmd::Return(Expr::pvar("v")),
            /* 8 */
            Cmd::assign(
                "r",
                Expr::pvar("v")
                    .eq(Expr::num(0.0))
                    .or(Expr::pvar("v").eq(Expr::num(-0.0)))
                    .or(Expr::pvar("v").eq(Expr::num(f64::NAN)))
                    .not(),
            ),
            /* 9 */ Cmd::Return(Expr::pvar("r")),
            /* 10 */ Cmd::assign("r", Expr::pvar("v").eq(Expr::str("")).not()),
            /* 11 */ Cmd::Return(Expr::pvar("r")),
            /* 12 */ Cmd::Return(Expr::ff()),
        ],
    )
}

/// `__plus(a, b)`: numeric addition or string concatenation; anything else
/// is a `TypeError` (MiniJS does not coerce — documented deviation).
fn plus() -> Proc {
    Proc::new(
        "__plus",
        ["a", "b"],
        vec![
            /* 0 */ Cmd::IfGoto(both("a", "b", TypeTag::Num), 3),
            /* 1 */ Cmd::IfGoto(both("a", "b", TypeTag::Str), 5),
            /* 2 */ js_error("TypeError: + needs two numbers or two strings"),
            /* 3 */ Cmd::assign("r", Expr::pvar("a").add(Expr::pvar("b"))),
            /* 4 */ Cmd::Return(Expr::pvar("r")),
            /* 5 */
            Cmd::assign("r", Expr::strcat_of(vec![Expr::pvar("a"), Expr::pvar("b")])),
            /* 6 */ Cmd::Return(Expr::pvar("r")),
        ],
    )
}

/// A numeric binary operator with type checks (`-`, `*`, `/`, `%`).
fn num_bin(name: &str, build: impl Fn(Expr, Expr) -> Expr) -> Proc {
    Proc::new(
        name,
        ["a", "b"],
        vec![
            /* 0 */ Cmd::IfGoto(both("a", "b", TypeTag::Num), 2),
            /* 1 */ js_error("TypeError: arithmetic needs numbers"),
            /* 2 */ Cmd::assign("r", build(Expr::pvar("a"), Expr::pvar("b"))),
            /* 3 */ Cmd::Return(Expr::pvar("r")),
        ],
    )
}

/// A relational operator on numbers or strings (`<`, `<=`).
fn rel(name: &str, build: impl Fn(Expr, Expr) -> Expr) -> Proc {
    Proc::new(
        name,
        ["a", "b"],
        vec![
            /* 0 */ Cmd::IfGoto(both("a", "b", TypeTag::Num), 3),
            /* 1 */ Cmd::IfGoto(both("a", "b", TypeTag::Str), 3),
            /* 2 */ js_error("TypeError: comparison needs two numbers or two strings"),
            /* 3 */ Cmd::assign("r", build(Expr::pvar("a"), Expr::pvar("b"))),
            /* 4 */ Cmd::Return(Expr::pvar("r")),
        ],
    )
}

/// `__neg(v)`: numeric negation.
fn neg() -> Proc {
    Proc::new(
        "__neg",
        ["v"],
        vec![
            /* 0 */ Cmd::IfGoto(ty("v", TypeTag::Num), 2),
            /* 1 */ js_error("TypeError: negation needs a number"),
            /* 2 */ Cmd::assign("r", Expr::pvar("v").un(gillian_gil::UnOp::Neg)),
            /* 3 */ Cmd::Return(Expr::pvar("r")),
        ],
    )
}

/// `__typeof(v)`: the JS `typeof` strings (`null` is `"object"`).
fn type_of() -> Proc {
    Proc::new(
        "__typeof",
        ["v"],
        vec![
            /* 0 */ Cmd::IfGoto(ty("v", TypeTag::Num), 7),
            /* 1 */ Cmd::IfGoto(ty("v", TypeTag::Str), 8),
            /* 2 */ Cmd::IfGoto(ty("v", TypeTag::Bool), 9),
            /* 3 */ Cmd::IfGoto(ty("v", TypeTag::Proc), 10),
            /* 4 */ Cmd::IfGoto(Expr::pvar("v").eq(undefined_expr()), 11),
            /* 5 */ Cmd::IfGoto(ty("v", TypeTag::Sym), 12),
            /* 6 */ Cmd::Return(Expr::str("list")),
            /* 7 */ Cmd::Return(Expr::str("number")),
            /* 8 */ Cmd::Return(Expr::str("string")),
            /* 9 */ Cmd::Return(Expr::str("boolean")),
            /* 10 */ Cmd::Return(Expr::str("function")),
            /* 11 */ Cmd::Return(Expr::str("undefined")),
            /* 12 */ Cmd::Return(Expr::str("object")),
        ],
    )
}

/// Shared prologue for property accessors: the receiver must be an object
/// reference (a symbol that is not `undefined`/`null`).
fn object_check(fail_msg: &str) -> Vec<Cmd> {
    vec![
        /* 0 */ Cmd::IfGoto(ty("o", TypeTag::Sym), 2),
        /* 1 */ js_error(fail_msg),
        /* 2 */
        Cmd::IfGoto(
            Expr::pvar("o")
                .eq(undefined_expr())
                .or(Expr::pvar("o").eq(null_expr())),
            4,
        ),
        /* 3 */ Cmd::Goto(5),
        /* 4 */ js_error(fail_msg),
        // 5: action
    ]
}

fn prop_action(name: &str, action: &str, params: &[&str], arg: Expr, ret: Expr) -> Proc {
    let mut body = object_check(&format!("TypeError: {action} on a non-object"));
    body.push(Cmd::action("r", action, arg)); // 5
    body.push(Cmd::Return(ret)); // 6
    Proc::new(name, params.iter().copied(), body)
}

/// `__floor(v)`: `Math.floor` (numbers only).
fn floor() -> Proc {
    Proc::new(
        "__floor",
        ["v"],
        vec![
            /* 0 */ Cmd::IfGoto(ty("v", TypeTag::Num), 2),
            /* 1 */ js_error("TypeError: floor needs a number"),
            /* 2 */ Cmd::assign("r", Expr::pvar("v").un(gillian_gil::UnOp::Floor)),
            /* 3 */ Cmd::Return(Expr::pvar("r")),
        ],
    )
}

/// Builds the whole runtime program.
pub fn runtime_prog() -> Prog {
    let mut prog = Prog::new();
    prog.add(truthy());
    prog.add(floor());
    prog.add(plus());
    prog.add(num_bin("__sub", |a, b| a.sub(b)));
    prog.add(num_bin("__mul", |a, b| a.mul(b)));
    prog.add(num_bin("__div", |a, b| a.div(b)));
    prog.add(num_bin("__mod", |a, b| a.rem(b)));
    prog.add(rel("__lt", |a, b| a.lt(b)));
    prog.add(rel("__le", |a, b| a.le(b)));
    prog.add(neg());
    prog.add(type_of());
    prog.add(prop_action(
        "__getprop",
        "getProp",
        &["o", "k"],
        Expr::list([Expr::pvar("o"), Expr::pvar("k")]),
        Expr::pvar("r"),
    ));
    prog.add(prop_action(
        "__setprop",
        "setProp",
        &["o", "k", "v"],
        Expr::list([Expr::pvar("o"), Expr::pvar("k"), Expr::pvar("v")]),
        Expr::pvar("v"),
    ));
    prog.add(prop_action(
        "__delprop",
        "delProp",
        &["o", "k"],
        Expr::list([Expr::pvar("o"), Expr::pvar("k")]),
        Expr::tt(),
    ));
    prog.add(prop_action(
        "__hasprop",
        "hasProp",
        &["o", "k"],
        Expr::list([Expr::pvar("o"), Expr::pvar("k")]),
        Expr::pvar("r"),
    ));
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::JsConcMemory;
    use gillian_core::explore::{explore, ExploreConfig, ExploreOutcome};
    use gillian_core::ConcreteState;
    use gillian_gil::Value;

    fn run_call(proc: &str, args: Vec<Expr>) -> ExploreOutcome<Value> {
        let mut prog = runtime_prog();
        prog.add(Proc::new(
            "main",
            [],
            vec![
                Cmd::call_static("r", proc, args),
                Cmd::Return(Expr::pvar("r")),
            ],
        ));
        let r = explore(
            &prog,
            "main",
            ConcreteState::<JsConcMemory>::new(),
            ExploreConfig::default(),
        );
        r.paths.into_iter().next().unwrap().outcome
    }

    #[test]
    fn truthiness_table() {
        let cases = vec![
            (undefined_expr(), false),
            (null_expr(), false),
            (Expr::num(0.0), false),
            (Expr::num(-0.0), false),
            (Expr::num(f64::NAN), false),
            (Expr::str(""), false),
            (Expr::bool(false), false),
            (Expr::num(1.5), true),
            (Expr::str("x"), true),
            (Expr::bool(true), true),
        ];
        for (e, expected) in cases {
            let out = run_call("__truthy", vec![e.clone()]);
            assert_eq!(
                out,
                ExploreOutcome::Normal(Value::Bool(expected)),
                "truthy({e})"
            );
        }
    }

    #[test]
    fn plus_overloads_and_type_errors() {
        assert_eq!(
            run_call("__plus", vec![Expr::num(1.0), Expr::num(2.0)]),
            ExploreOutcome::Normal(Value::num(3.0))
        );
        assert_eq!(
            run_call("__plus", vec![Expr::str("a"), Expr::str("b")]),
            ExploreOutcome::Normal(Value::str("ab"))
        );
        assert!(matches!(
            run_call("__plus", vec![Expr::num(1.0), Expr::str("b")]),
            ExploreOutcome::Error(_)
        ));
    }

    #[test]
    fn typeof_strings() {
        let cases = vec![
            (Expr::num(1.0), "number"),
            (Expr::str("s"), "string"),
            (Expr::bool(true), "boolean"),
            (undefined_expr(), "undefined"),
            (null_expr(), "object"),
            (Expr::proc("f"), "function"),
        ];
        for (e, expected) in cases {
            assert_eq!(
                run_call("__typeof", vec![e.clone()]),
                ExploreOutcome::Normal(Value::str(expected)),
                "typeof({e})"
            );
        }
    }

    #[test]
    fn property_access_on_undefined_fails() {
        assert!(matches!(
            run_call("__getprop", vec![undefined_expr(), Expr::str("k")]),
            ExploreOutcome::Error(_)
        ));
        assert!(matches!(
            run_call("__getprop", vec![Expr::num(1.0), Expr::str("k")]),
            ExploreOutcome::Error(_)
        ));
    }

    #[test]
    fn division_is_ieee() {
        assert_eq!(
            run_call("__div", vec![Expr::num(1.0), Expr::num(0.0)]),
            ExploreOutcome::Normal(Value::num(f64::INFINITY))
        );
    }
}
