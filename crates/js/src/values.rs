//! MiniJS distinguished values.
//!
//! Like Gillian-JS (paper §4.1), language constants such as `undefined`
//! and `null` are represented as reserved *uninterpreted symbols* — opaque,
//! pairwise-distinct, and distinct from every allocated object location
//! (allocators only mint symbols above [`Sym::FIRST_FRESH`]).

use gillian_gil::{Expr, Sym, Value};

/// The `undefined` constant.
pub const UNDEFINED: Sym = Sym(0);
/// The `null` constant.
pub const NULL: Sym = Sym(1);

/// `undefined` as a GIL value.
pub fn undefined_value() -> Value {
    Value::Sym(UNDEFINED)
}

/// `null` as a GIL value.
pub fn null_value() -> Value {
    Value::Sym(NULL)
}

/// `undefined` as a GIL expression.
pub fn undefined_expr() -> Expr {
    Expr::Val(undefined_value())
}

/// `null` as a GIL expression.
pub fn null_expr() -> Expr {
    Expr::Val(null_value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_reserved_and_distinct() {
        assert_ne!(UNDEFINED, NULL);
        const { assert!(UNDEFINED.0 < Sym::FIRST_FRESH) };
        const { assert!(NULL.0 < Sym::FIRST_FRESH) };
    }
}
