//! The Buckets guest library and its symbolic test suite (Table 1).
//!
//! Eleven data structures re-implemented in MiniJS with the same shape as
//! Buckets.js (paper §4.1): array utilities, bag, binary search tree,
//! dictionary, heap, linked list, multi-dictionary, priority queue, queue,
//! set, and stack — with a 74-test symbolic suite matching Table 1's
//! per-structure test counts (array 9, bag 7, bst 11, dict 7, heap 4,
//! llist 9, mdict 6, pqueue 5, queue 6, set 6, stack 4).

use crate::ast::Module;
use crate::compile::compile_module;
use crate::parser::parse_module;
use gillian_core::explore::ExploreConfig;
use gillian_core::testing::{run_suite, TestSuiteResult};
use gillian_gil::Prog;
use gillian_solver::Solver;

/// The library sources, in dependency order.
pub const LIB_SOURCES: &[(&str, &str)] = &[
    ("arrays", include_str!("../guest/buckets/arrays.js")),
    ("llist", include_str!("../guest/buckets/llist.js")),
    ("dict", include_str!("../guest/buckets/dict.js")),
    ("set", include_str!("../guest/buckets/set.js")),
    ("bag", include_str!("../guest/buckets/bag.js")),
    ("heap", include_str!("../guest/buckets/heap.js")),
    ("bst", include_str!("../guest/buckets/bst.js")),
    ("mdict", include_str!("../guest/buckets/mdict.js")),
    ("pqueue", include_str!("../guest/buckets/pqueue.js")),
    ("queue", include_str!("../guest/buckets/queue.js")),
    ("stack", include_str!("../guest/buckets/stack.js")),
];

/// The per-structure symbolic test sources (Table 1 rows).
pub const TEST_SOURCES: &[(&str, &str)] = &[
    ("array", include_str!("../guest/tests/array.js")),
    ("bag", include_str!("../guest/tests/bag.js")),
    ("bst", include_str!("../guest/tests/bst.js")),
    ("dict", include_str!("../guest/tests/dict.js")),
    ("heap", include_str!("../guest/tests/heap.js")),
    ("llist", include_str!("../guest/tests/llist.js")),
    ("mdict", include_str!("../guest/tests/mdict.js")),
    ("pqueue", include_str!("../guest/tests/pqueue.js")),
    ("queue", include_str!("../guest/tests/queue.js")),
    ("set", include_str!("../guest/tests/set.js")),
    ("stack", include_str!("../guest/tests/stack.js")),
];

/// The suite names, in Table 1 row order.
pub fn suite_names() -> Vec<&'static str> {
    TEST_SOURCES.iter().map(|(n, _)| *n).collect()
}

/// Parses the whole guest library into one module.
///
/// # Panics
///
/// Panics if a bundled library source fails to parse (a build error).
pub fn library_module() -> Module {
    let mut module = Module::default();
    for (name, src) in LIB_SOURCES {
        let m = parse_module(src)
            .unwrap_or_else(|e| panic!("bundled library {name} failed to parse: {e}"));
        module.extend(m);
    }
    module
}

/// Builds the GIL program and test-entry list for one suite.
///
/// # Panics
///
/// Panics on an unknown suite name or unparseable bundled source.
pub fn suite_prog(suite: &str) -> (Prog, Vec<String>) {
    let (_, src) = TEST_SOURCES
        .iter()
        .find(|(n, _)| *n == suite)
        .unwrap_or_else(|| panic!("unknown Buckets suite {suite}"));
    let mut module = library_module();
    let tests =
        parse_module(src).unwrap_or_else(|e| panic!("bundled tests {suite} failed to parse: {e}"));
    let entries: Vec<String> = tests
        .functions
        .iter()
        .filter(|f| f.name.starts_with("test_"))
        .map(|f| f.name.clone())
        .collect();
    module.extend(tests);
    (compile_module(&module), entries)
}

/// Runs one Table 1 row with the given solver configuration.
pub fn run_row(
    suite: &str,
    solver_factory: impl Fn() -> Solver,
    cfg: ExploreConfig,
) -> TestSuiteResult {
    let (prog, entries) = suite_prog(suite);
    run_suite::<crate::mem::JsSymMemory>(suite, &prog, &entries, solver_factory, cfg)
}

/// The exploration budget used for Table 1 runs.
pub fn table1_config() -> ExploreConfig {
    ExploreConfig {
        max_cmds_per_path: 200_000,
        max_total_cmds: 20_000_000,
        max_paths: 8192,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_parses_and_compiles() {
        let module = library_module();
        assert!(module.function("llAdd").is_some());
        assert!(module.function("bstInsert").is_some());
        let prog = compile_module(&module);
        assert!(prog.proc("dictSet").is_some());
    }

    #[test]
    fn suites_have_table1_test_counts() {
        let expected = [
            ("array", 9),
            ("bag", 7),
            ("bst", 11),
            ("dict", 7),
            ("heap", 4),
            ("llist", 9),
            ("mdict", 6),
            ("pqueue", 5),
            ("queue", 6),
            ("set", 6),
            ("stack", 4),
        ];
        let mut total = 0;
        for (suite, count) in expected {
            let (_, entries) = suite_prog(suite);
            assert_eq!(entries.len(), count, "suite {suite}");
            total += entries.len();
        }
        assert_eq!(total, 74, "Table 1 reports 74 tests in total");
    }
}
