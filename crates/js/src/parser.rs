//! Parser for the MiniJS surface syntax.
//!
//! A JavaScript-looking grammar:
//!
//! ```text
//! function stackPush(s, x) {
//!     s.items[s.size] = x;
//!     s.size = s.size + 1;
//!     if (s.size > s.capacity) { throw "overflow"; }
//!     return s;
//! }
//! ```
//!
//! Precedence: `||` < `&&` < equality < relational < `+ -` < `* / %` <
//! unary (`!`, `-`, `typeof`) < postfix (`.p`, `[e]`, call).

use crate::ast::{BinOp, Expr, Function, Module, Stmt, UnOp};
use std::fmt;

/// A MiniJS parse error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "minijs parse error at {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}
impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    Punct(&'static str),
    Eof,
}

const PUNCTS: &[&str] = &[
    "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "{", "}", "(", ")", "[", "]", ";", ",", ":",
    ".", "+", "-", "*", "/", "%", "<", ">", "=", "!",
];

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn line_col(&self, at: usize) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for c in self.src[..at.min(self.src.len())].chars() {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn err_at(&self, at: usize, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.line_col(at);
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = &self.src[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if self.src[self.pos..].starts_with("//") {
                match self.src[self.pos..].find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.src.len(),
                }
            } else if self.src[self.pos..].starts_with("/*") {
                match self.src[self.pos..].find("*/") {
                    Some(i) => self.pos += i + 2,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<(Tok, usize), ParseError> {
        self.skip_trivia();
        let at = self.pos;
        let rest = &self.src[self.pos..];
        let Some(c) = rest.chars().next() else {
            return Ok((Tok::Eof, at));
        };
        if c == '"' || c == '\'' {
            let quote = c;
            let mut out = String::new();
            let mut chars = rest[1..].char_indices();
            loop {
                match chars.next() {
                    None => return Err(self.err_at(at, "unterminated string")),
                    Some((i, q)) if q == quote => {
                        self.pos += i + 2;
                        return Ok((Tok::Str(out), at));
                    }
                    Some((_, '\\')) => match chars.next() {
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 't')) => out.push('\t'),
                        Some((_, e)) => out.push(e),
                        None => return Err(self.err_at(at, "unterminated escape")),
                    },
                    Some((_, d)) => out.push(d),
                }
            }
        }
        if c.is_ascii_digit() {
            let mut len = 0;
            let mut seen_dot = false;
            for (i, d) in rest.char_indices() {
                if d.is_ascii_digit() {
                    len = i + 1;
                } else if d == '.'
                    && !seen_dot
                    && rest[i + 1..].starts_with(|x: char| x.is_ascii_digit())
                {
                    seen_dot = true;
                    len = i + 1;
                } else {
                    break;
                }
            }
            let n: f64 = rest[..len]
                .parse()
                .map_err(|_| self.err_at(at, "bad number literal"))?;
            self.pos += len;
            return Ok((Tok::Num(n), at));
        }
        if c.is_alphabetic() || c == '_' || c == '$' {
            let len = rest
                .char_indices()
                .take_while(|(_, d)| d.is_alphanumeric() || *d == '_' || *d == '$')
                .map(|(i, d)| i + d.len_utf8())
                .last()
                .unwrap_or(0);
            self.pos += len;
            return Ok((Tok::Ident(rest[..len].to_string()), at));
        }
        for p in PUNCTS {
            if rest.starts_with(p) {
                self.pos += p.len();
                return Ok((Tok::Punct(p), at));
            }
        }
        Err(self.err_at(at, format!("unexpected character {c:?}")))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    tok_at: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer { src, pos: 0 };
        let (tok, tok_at) = lexer.next()?;
        Ok(Parser { lexer, tok, tok_at })
    }

    fn bump(&mut self) -> Result<Tok, ParseError> {
        let (next, at) = self.lexer.next()?;
        self.tok_at = at;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(self.lexer.err_at(self.tok_at, msg))
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> Result<bool, ParseError> {
        if self.is_punct(p) {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p)? {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.tok))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> Result<bool, ParseError> {
        if self.is_kw(kw) {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat_punct("||")? {
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(self.and_expr()?));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.eq_expr()?;
        while self.eat_punct("&&")? {
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(self.eq_expr()?));
        }
        Ok(e)
    }

    fn eq_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.rel_expr()?;
        loop {
            let op = if self.eat_punct("===")? || self.eat_punct("==")? {
                BinOp::StrictEq
            } else if self.eat_punct("!==")? || self.eat_punct("!=")? {
                BinOp::StrictNeq
            } else {
                return Ok(e);
            };
            e = Expr::Bin(op, Box::new(e), Box::new(self.rel_expr()?));
        }
    }

    fn rel_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.add_expr()?;
        loop {
            let op = if self.eat_punct("<=")? {
                BinOp::Leq
            } else if self.eat_punct(">=")? {
                BinOp::Geq
            } else if self.eat_punct("<")? {
                BinOp::Lt
            } else if self.eat_punct(">")? {
                BinOp::Gt
            } else {
                return Ok(e);
            };
            e = Expr::Bin(op, Box::new(e), Box::new(self.add_expr()?));
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = if self.eat_punct("+")? {
                BinOp::Add
            } else if self.eat_punct("-")? {
                BinOp::Sub
            } else {
                return Ok(e);
            };
            e = Expr::Bin(op, Box::new(e), Box::new(self.mul_expr()?));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = if self.eat_punct("*")? {
                BinOp::Mul
            } else if self.eat_punct("/")? {
                BinOp::Div
            } else if self.eat_punct("%")? {
                BinOp::Mod
            } else {
                return Ok(e);
            };
            e = Expr::Bin(op, Box::new(e), Box::new(self.unary_expr()?));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("!")? {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("-")? {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary_expr()?)));
        }
        if self.eat_kw("typeof")? {
            return Ok(Expr::Un(UnOp::TypeOf, Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if !self.eat_punct(")")? {
            loop {
                args.push(self.expr()?);
                if self.eat_punct(")")? {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(args)
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct(".")? {
                let prop = self.ident()?;
                // Method call?
                if self.eat_punct("(")? {
                    let args = self.call_args()?;
                    e = Expr::MethodCall {
                        object: Box::new(e),
                        method: Box::new(Expr::Str(prop)),
                        args,
                    };
                } else {
                    e = Expr::Prop(Box::new(e), Box::new(Expr::Str(prop)));
                }
            } else if self.eat_punct("[")? {
                let key = self.expr()?;
                self.expect_punct("]")?;
                if self.eat_punct("(")? {
                    let args = self.call_args()?;
                    e = Expr::MethodCall {
                        object: Box::new(e),
                        method: Box::new(key),
                        args,
                    };
                } else {
                    e = Expr::Prop(Box::new(e), Box::new(key));
                }
            } else if self.eat_punct("(")? {
                let args = self.call_args()?;
                e = match (&e, args) {
                    (Expr::Var(name), args) if name == "symb" && args.is_empty() => Expr::Symb,
                    (Expr::Var(name), args) if name == "symb_number" && args.is_empty() => {
                        Expr::SymbNumber
                    }
                    (Expr::Var(name), args) if name == "symb_string" && args.is_empty() => {
                        Expr::SymbString
                    }
                    (Expr::Var(name), args) if name == "symb_bool" && args.is_empty() => {
                        Expr::SymbBool
                    }
                    (_, args) => Expr::Call(Box::new(e), args),
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump()? {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("[") => {
                let mut items = Vec::new();
                if !self.eat_punct("]")? {
                    loop {
                        items.push(self.expr()?);
                        if self.eat_punct("]")? {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Array(items))
            }
            Tok::Punct("{") => {
                let mut props = Vec::new();
                if !self.eat_punct("}")? {
                    loop {
                        let key = match self.bump()? {
                            Tok::Ident(s) => s,
                            Tok::Str(s) => s,
                            other => {
                                return self.err(format!("expected property name, got {other:?}"))
                            }
                        };
                        self.expect_punct(":")?;
                        props.push((key, self.expr()?));
                        if self.eat_punct("}")? {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Object(props))
            }
            Tok::Ident(id) => match id.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "undefined" => Ok(Expr::Undefined),
                "null" => Ok(Expr::Null),
                _ => Ok(Expr::Var(id)),
            },
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}")? {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.is_punct("{") {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("var")? {
            let name = self.ident()?;
            let init = if self.eat_punct("=")? {
                self.expr()?
            } else {
                Expr::Undefined
            };
            self.expect_punct(";")?;
            return Ok(Stmt::VarDecl(name, init));
        }
        if self.eat_kw("if")? {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block_or_single()?;
            let otherwise = if self.eat_kw("else")? {
                if self.is_kw("if") {
                    vec![self.stmt()?]
                } else {
                    self.block_or_single()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then,
                otherwise,
            });
        }
        if self.eat_kw("while")? {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("for")? {
            self.expect_punct("(")?;
            let init = self.stmt()?; // consumes the `;`
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let step = self.simple_stmt_no_semi()?;
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::For {
                init: Box::new(init),
                cond,
                step: Box::new(step),
                body,
            });
        }
        if self.eat_kw("break")? {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue")? {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_kw("return")? {
            if self.eat_punct(";")? {
                return Ok(Stmt::Return(Expr::Undefined));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(e));
        }
        if self.eat_kw("throw")? {
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Throw(e));
        }
        if self.eat_kw("delete")? {
            let target = self.postfix_expr()?;
            self.expect_punct(";")?;
            let Expr::Prop(object, key) = target else {
                return self.err("delete target must be a property access");
            };
            return Ok(Stmt::Delete {
                object: *object,
                key: *key,
            });
        }
        if self.eat_kw("assume")? {
            self.expect_punct("(")?;
            let e = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Assume(e));
        }
        if self.eat_kw("assert")? {
            self.expect_punct("(")?;
            let e = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Assert(e));
        }
        let s = self.simple_stmt_no_semi()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// Assignment or expression statement, without the trailing `;`
    /// (shared by `for` steps and ordinary statements).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, ParseError> {
        let target = self.expr()?;
        if self.eat_punct("=")? {
            let value = self.expr()?;
            return match target {
                Expr::Var(name) => Ok(Stmt::Assign(name, value)),
                Expr::Prop(object, key) => Ok(Stmt::PropAssign {
                    object: *object,
                    key: *key,
                    value,
                }),
                other => self.err(format!("invalid assignment target {other:?}")),
            };
        }
        Ok(Stmt::ExprStmt(target))
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        if !self.eat_kw("function")? {
            return self.err("expected `function`");
        }
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")")? {
            loop {
                params.push(self.ident()?);
                if self.eat_punct(")")? {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function { name, params, body })
    }
}

/// Parses a MiniJS module (a sequence of `function` declarations).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    let mut p = Parser::new(source)?;
    let mut module = Module::default();
    while p.tok != Tok::Eof {
        module.functions.push(p.function()?);
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_js_shapes() {
        let m = parse_module(
            r#"
            function makeStack(capacity) {
                var s = { items: [], size: 0, capacity: capacity };
                return s;
            }
            function push(s, x) {
                s.items[s.size] = x;
                s.size = s.size + 1;
                if (s.size > s.capacity) { throw "overflow"; }
                return s;
            }
            function test_push() {
                var x = symb_number();
                assume(x > 0);
                var s = makeStack(2);
                push(s, x);
                assert(s.items[0] === x);
                var t = typeof x;
                return t;
            }
        "#,
        )
        .unwrap();
        assert_eq!(m.functions.len(), 3);
        let push = m.function("push").unwrap();
        assert!(matches!(push.body[0], Stmt::PropAssign { .. }));
        let test = m.function("test_push").unwrap();
        assert!(matches!(test.body[0], Stmt::VarDecl(_, Expr::SymbNumber)));
    }

    #[test]
    fn parses_for_and_break() {
        let m = parse_module(
            r#"
            function f(n) {
                var total = 0;
                for (var i = 0; i < n; i = i + 1) {
                    if (i === 3) { break; }
                    total = total + i;
                }
                return total;
            }
        "#,
        )
        .unwrap();
        assert!(matches!(m.functions[0].body[1], Stmt::For { .. }));
    }

    #[test]
    fn method_calls_and_computed_access() {
        let m = parse_module(
            r#"
            function f(o, k) {
                var a = o.get(k);
                var b = o[k];
                o[k] = a;
                delete o[k];
                return o.m(a, b);
            }
        "#,
        )
        .unwrap();
        let body = &m.functions[0].body;
        assert!(matches!(
            &body[0],
            Stmt::VarDecl(_, Expr::MethodCall { .. })
        ));
        assert!(matches!(&body[1], Stmt::VarDecl(_, Expr::Prop(_, _))));
        assert!(matches!(&body[2], Stmt::PropAssign { .. }));
        assert!(matches!(&body[3], Stmt::Delete { .. }));
        assert!(matches!(&body[4], Stmt::Return(Expr::MethodCall { .. })));
    }

    #[test]
    fn operator_precedence() {
        let m = parse_module("function f(a, b) { return a + b * 2 < 10 && !b; }").unwrap();
        let Stmt::Return(e) = &m.functions[0].body[0] else {
            panic!()
        };
        // (((a + (b * 2)) < 10) && (!b))
        let Expr::Bin(BinOp::And, lhs, _) = e else {
            panic!("got {e:?}")
        };
        assert!(matches!(**lhs, Expr::Bin(BinOp::Lt, _, _)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_module("function f( {").is_err());
        assert!(parse_module("function f() { 1 + ; }").is_err());
        assert!(parse_module("function f() { delete x; }").is_err());
    }
}
