//! Runs the full Buckets symbolic suite (the workload of Table 1) and
//! requires every test to verify cleanly — the paper found no new bugs in
//! Buckets.js, so a clean suite is the expected reproduction outcome.

use gillian_js::buckets;

#[test]
fn all_buckets_suites_verify() {
    let mut total_tests = 0;
    let mut total_cmds = 0;
    for suite in buckets::suite_names() {
        let row = buckets::run_row(
            suite,
            gillian_solver::Solver::optimized,
            buckets::table1_config(),
        );
        assert!(
            row.failures.is_empty(),
            "suite {suite} found unexpected bugs: {:?}",
            row.failures
        );
        assert!(
            row.truncated.is_empty(),
            "suite {suite} hit exploration budgets: {:?}",
            row.truncated
        );
        total_tests += row.tests;
        total_cmds += row.gil_cmds;
    }
    assert_eq!(total_tests, 74);
    assert!(
        total_cmds > 10_000,
        "suites should execute many GIL commands"
    );
}
