//! Randomized end-to-end soundness for the MiniJS instantiation: random
//! programs over dynamic objects (computed keys included), replayed
//! concretely on every modelled path — Theorem 3.6 over the JS memory
//! model, its branching `getProp`, and the GIL runtime.

use gillian_core::explore::ExploreConfig;
use gillian_core::soundness::check_program;
use gillian_js::ast::{BinOp, Expr, Function, Module, Stmt};
use gillian_js::compile::compile_module;
use gillian_js::{JsConcMemory, JsSymMemory};
use gillian_solver::Solver;
use proptest::prelude::*;
use std::sync::Arc;

const NUM_VARS: [&str; 2] = ["a", "b"];
const KEYS: [&str; 3] = ["p", "q", "r"];

fn num_var() -> impl Strategy<Value = Expr> {
    proptest::sample::select(NUM_VARS.to_vec()).prop_map(|v| Expr::Var(v.to_string()))
}

/// A property key: a literal, or one of the two symbolic *string* inputs
/// `k1`/`k2` (computed keys drive the SGetProp branching).
fn key_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        proptest::sample::select(KEYS.to_vec()).prop_map(|k| Expr::Str(k.to_string())),
        Just(Expr::Var("k1".to_string())),
        Just(Expr::Var("k2".to_string())),
    ]
}

fn arith() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![(-8i64..8).prop_map(|n| Expr::Num(n as f64)), num_var(),];
    leaf.prop_recursive(2, 6, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)],
        )
            .prop_map(|(x, y, op)| Expr::Bin(op, Box::new(x), Box::new(y)))
    })
}

fn cond() -> impl Strategy<Value = Expr> {
    (arith(), arith(), 0..4u8).prop_map(|(x, y, op)| {
        let op = match op {
            0 => BinOp::Lt,
            1 => BinOp::Leq,
            2 => BinOp::StrictEq,
            _ => BinOp::StrictNeq,
        };
        Expr::Bin(op, Box::new(x), Box::new(y))
    })
}

fn obj() -> Expr {
    Expr::Var("o".to_string())
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let simple = prop_oneof![
        (proptest::sample::select(NUM_VARS.to_vec()), arith())
            .prop_map(|(x, e)| Stmt::Assign(x.to_string(), e)),
        (key_expr(), arith()).prop_map(|(k, v)| Stmt::PropAssign {
            object: obj(),
            key: k,
            value: v,
        }),
        (proptest::sample::select(NUM_VARS.to_vec()), key_expr()).prop_map(|(x, k)| {
            // Guarded read: only assign when the property is defined, so
            // the number stays a number (absent keys yield undefined).
            Stmt::If {
                cond: Expr::Bin(
                    BinOp::StrictNeq,
                    Box::new(Expr::Prop(Box::new(obj()), Box::new(k.clone()))),
                    Box::new(Expr::Undefined),
                ),
                then: vec![Stmt::Assign(
                    x.to_string(),
                    Expr::Prop(Box::new(obj()), Box::new(k)),
                )],
                otherwise: vec![],
            }
        }),
        key_expr().prop_map(|k| Stmt::Delete {
            object: obj(),
            key: k,
        }),
        cond().prop_map(Stmt::Assert),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    let nested = arb_stmt(depth - 1);
    prop_oneof![
        4 => simple,
        2 => (cond(), proptest::collection::vec(nested, 1..3))
            .prop_map(|(c, then)| Stmt::If { cond: c, then, otherwise: vec![] }),
    ]
    .boxed()
}

fn arb_program() -> impl Strategy<Value = Module> {
    proptest::collection::vec(arb_stmt(1), 1..6).prop_map(|stmts| {
        let mut body = vec![
            Stmt::VarDecl("a".into(), Expr::SymbNumber),
            Stmt::VarDecl("b".into(), Expr::SymbNumber),
            Stmt::VarDecl("k1".into(), Expr::SymbString),
            Stmt::VarDecl("k2".into(), Expr::SymbString),
            Stmt::VarDecl(
                "o".into(),
                Expr::Object(vec![("p".into(), Expr::Var("a".into()))]),
            ),
        ];
        body.extend(stmts);
        body.push(Stmt::Return(Expr::Array(vec![
            Expr::Var("a".into()),
            Expr::Var("b".into()),
        ])));
        Module {
            functions: vec![Function {
                name: "main".into(),
                params: vec![],
                body,
            }],
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_minijs_programs_are_restricted_sound(module in arb_program()) {
        let prog = compile_module(&module);
        let cfg = ExploreConfig {
            max_cmds_per_path: 20_000,
            max_total_cmds: 300_000,
            max_paths: 512,
            ..Default::default()
        };
        let result = check_program::<JsSymMemory, JsConcMemory>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            cfg,
        );
        if let Err(discrepancies) = result {
            prop_assert!(
                false,
                "soundness violated:\n{:#?}\nprogram:\n{:#?}",
                discrepancies,
                module
            );
        }
    }
}
