//! Behavioural tests for MiniJS semantics corners: short-circuiting,
//! truthiness in control flow, method dispatch, and error propagation.

use gillian_js::symbolic_test;

#[test]
fn logical_and_short_circuits() {
    // The right operand would throw a TypeError (property access on
    // undefined); `&&` must not evaluate it when the left is falsy.
    let out = symbolic_test(
        r#"
        function main() {
            var o = undefined;
            if (o !== undefined && o.size > 0) {
                return 1;
            }
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
}

#[test]
fn logical_or_short_circuits() {
    let out = symbolic_test(
        r#"
        function main() {
            var o = undefined;
            if (o === undefined || o.size > 0) {
                return 1;
            }
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
}

#[test]
fn unguarded_access_on_undefined_is_reported() {
    let out = symbolic_test(
        r#"
        function main() {
            var o = undefined;
            return o.size;
        }
    "#,
    )
    .unwrap();
    assert_eq!(out.bugs.len(), 1);
    assert!(
        out.bugs[0].error.contains("JSError"),
        "{}",
        out.bugs[0].error
    );
    assert!(out.bugs[0].confirmed());
}

#[test]
fn truthiness_drives_control_flow() {
    let out = symbolic_test(
        r#"
        function main() {
            var hits = 0;
            if (0) { hits = hits + 1; }
            if ("") { hits = hits + 1; }
            if (null) { hits = hits + 1; }
            if (undefined) { hits = hits + 1; }
            if (1) { hits = hits + 100; }
            if ("x") { hits = hits + 100; }
            if ({}) { hits = hits + 100; }
            if ([]) { hits = hits + 100; }
            assert(hits === 400);
            return hits;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
}

#[test]
fn symbolic_truthiness_branches() {
    // A symbolic number as condition: both the zero/NaN-falsy branch and
    // the truthy branch must be explored.
    let out = symbolic_test(
        r#"
        function main() {
            var x = symb_number();
            if (x) {
                assert(x !== 0);
                return 1;
            }
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
    assert!(out.result.normal().count() >= 2, "both branches explored");
}

#[test]
fn method_dispatch_through_properties() {
    let out = symbolic_test(
        r#"
        function speak(self) { return self.sound; }
        function main() {
            var cat = { sound: "meow" };
            cat.speak = speak;
            assert(cat.speak() === "meow");
            // Re-pointing the method re-binds dispatch.
            var dog = { sound: "woof", speak: speak };
            assert(dog["speak"]() === "woof");
            return 0;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
}

#[test]
fn calling_a_missing_method_is_a_type_error() {
    let out = symbolic_test(
        r#"
        function main() {
            var o = {};
            return o.nope();
        }
    "#,
    )
    .unwrap();
    assert_eq!(out.bugs.len(), 1);
    assert!(out.bugs[0].confirmed());
}

#[test]
fn throw_terminates_with_the_thrown_value() {
    let out = symbolic_test(
        r#"
        function main() {
            var x = symb_number();
            assume(0 <= x && x <= 5);
            if (x === 3) { throw "three"; }
            return x;
        }
    "#,
    )
    .unwrap();
    assert_eq!(out.bugs.len(), 1);
    let bug = &out.bugs[0];
    assert!(bug.error.contains("JSThrow"), "{}", bug.error);
    assert!(bug.error.contains("three"));
    assert_eq!(bug.script, vec![gillian_gil::Value::num(3.0)]);
    assert!(bug.confirmed());
}

#[test]
fn division_by_zero_is_infinity_not_an_error() {
    let out = symbolic_test(
        r#"
        function main() {
            var x = 1 / 0;
            assert(x > 1000000);
            var y = 0 / 0;
            assert(y !== y || true);   // NaN
            return x;
        }
    "#,
    )
    .unwrap();
    assert!(out.verified(), "{:?}", out.bugs);
}
