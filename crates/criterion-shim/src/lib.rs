#![warn(missing_docs)]

//! # Vendored micro-benchmark harness
//!
//! A registry-free stand-in for the `criterion` crate, exposing the API
//! subset the workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], and the `criterion_group!` / `criterion_main!`
//! macros. Instead of criterion's statistical machinery it times
//! `sample_size` runs after one warm-up and prints min / mean / max.
//!
//! Filtering: `cargo bench -- <substring>` runs only matching benchmarks.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument = benchmark name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            criterion: self,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.samples),
            budget: self.samples,
        };
        f(&mut bencher);
        report(&full, &bencher.samples);
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// workload.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `budget` runs of `f` after one untimed warm-up.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        hint::black_box(f()); // warm-up
        for _ in 0..self.budget {
            let start = Instant::now();
            hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<60} {:>10.3?} min {:>10.3?} mean {:>10.3?} max ({} samples)",
        min,
        mean,
        max,
        samples.len()
    );
}

/// Declares a benchmark group function, criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style:
/// `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("t");
        let mut runs = 0;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 4, "one warm-up plus three samples");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("t");
        let mut runs = 0;
        group.bench_function("skipped", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }
}
