//! The test-case driver: run configuration and the deterministic PRNG.
//!
//! Properties replay deterministically: the RNG for a case is derived only
//! from the property's (module-qualified) name and the case index, so a
//! failure report's `(case, seed)` pair identifies the exact inputs.

/// Per-property run configuration (the shim's `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct Config {
    /// How many random cases the property runs.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override (useful for quick CI runs or deep local soaks).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A deterministic property seed derived from the property's name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A small, fast, deterministic PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one numbered case of one property.
    pub fn for_case(property_seed: u64, case: u64) -> Self {
        TestRng {
            state: property_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "TestRng::below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
