//! String strategies from regex-like patterns.
//!
//! A `&'static str` is itself a strategy generating strings matching the
//! pattern. The supported subset is what the workspace's tests use:
//! literal characters, character classes `[a-z0-9_]` (with ranges), and
//! the quantifiers `{n}`, `{n,m}`, `?`, `*`, `+` (the unbounded ones are
//! capped at 8 repetitions). Unsupported syntax panics at generation time.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One pattern atom: a set of candidate characters plus a repetition range.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii() || lo > '\u{7f}'));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // consume ']'
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing escape in {pattern:?}");
                i += 2;
                vec![chars[i - 1]]
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("unsupported pattern syntax {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!choices.is_empty(), "empty character class in {pattern:?}");
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier range in {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = TestRng::for_case(1, 1);
        for _ in 0..200 {
            let s = "[a-c]{0,2}".generate(&mut rng);
            assert!(s.len() <= 2 && s.chars().all(|c| ('a'..='c').contains(&c)));
            let v = "[a-z][a-z0-9_]{0,5}".generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 6);
            assert!(v.chars().next().unwrap().is_ascii_lowercase());
            let p = "[ -~]{0,6}".generate(&mut rng);
            assert!(p.len() <= 6 && p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
