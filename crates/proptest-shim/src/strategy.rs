//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is a recipe for generating one random value. Unlike real
//! proptest there is no shrinking: a failing case reports its (property
//! seed, case index) pair, which replays the exact inputs.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Keeps only values satisfying `f`, retrying generation. `whence`
    /// names the filter in the panic raised if it rejects too often.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and `recurse`
    /// wraps a strategy for smaller values into one for larger values.
    /// `depth` bounds the nesting; the size hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// A weighted choice among strategies (`prop_oneof!` desugars to this).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union with the given per-arm weights (must be non-empty with a
    /// positive total weight).
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "Union needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick beyond total")
    }
}

/// The strategy returned by [`any`]: a plain generation function.
pub struct AnyStrategy<T>(fn(&mut TestRng) -> T);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for AnyStrategy<T> {}

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    fn any_strategy() -> AnyStrategy<Self>;
}

/// The canonical strategy for `A` (`any::<bool>()`, `any::<i64>()`, …).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    A::any_strategy()
}

impl Arbitrary for bool {
    fn any_strategy() -> AnyStrategy<bool> {
        AnyStrategy(TestRng::bool)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn any_strategy() -> AnyStrategy<$t> {
                AnyStrategy(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                assert!(s <= e, "empty range strategy");
                let width = e - s + 1;
                if width > i128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                (s + rng.below(width as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
