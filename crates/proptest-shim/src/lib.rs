#![warn(missing_docs)]

//! # Vendored property-testing harness
//!
//! A registry-free stand-in for the `proptest` crate, exposing exactly the
//! API subset this workspace's property tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_filter` / `prop_recursive` / `boxed`, ranges and
//! `&str` patterns as strategies, [`collection`] and [`sample`] strategies,
//! and the `proptest!`, `prop_oneof!`, `prop_assert*!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with its `(case, seed)` pair;
//!   generation is fully deterministic, so the failure replays on rerun.
//! - **No persistence.** `*.proptest-regressions` files are ignored.
//! - Generation distributions are similar in spirit (uniform within the
//!   requested domain) but not bit-compatible.
//!
//! The case count honours the `PROPTEST_CASES` environment variable.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string_gen;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// A failed property case (the error side of a test body's `Result`).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: `proptest! { #[test] fn p(x in strat) {..} }`.
///
/// Each body runs once per case with freshly generated inputs; the body may
/// use the `prop_assert*` macros (which abort just that case with a
/// message) or plain `assert!`/`panic!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let cases = config.effective_cases();
            let seed = $crate::test_runner::seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..u64::from(cases) {
                let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!(
                        "property {} failed at case {} (seed {:#x}): {}",
                        stringify!($name),
                        case,
                        seed,
                        e.0
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Uniform or weighted choice among strategies producing the same type:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?} == {:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, y in 1u8..=64, z in 0usize..3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..=64).contains(&y));
            prop_assert!(z < 3);
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(prop_oneof![Just(1i64), 10i64..20], 2..5),
            s in "[a-b]{1,2}",
            (a, b) in (0u32..10, any::<bool>()),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || (10..20).contains(&x)));
            prop_assert!(!s.is_empty() && s.len() <= 2);
            prop_assert!(a < 10);
            let _ = b;
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn recursive_strategies_terminate(
            n in (0u32..3).prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| a + b)
            })
        ) {
            prop_assert!(n < 3 * 16, "depth-bounded: {}", n);
        }
    }

    #[test]
    fn deterministic_replay() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0i64..100, 0..6);
        let a = strat.generate(&mut TestRng::for_case(7, 3));
        let b = strat.generate(&mut TestRng::for_case(7, 3));
        assert_eq!(a, b);
    }
}
