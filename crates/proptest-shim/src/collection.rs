//! Collection strategies (`vec`, `btree_map`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;

/// An inclusive size range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max_incl - self.min + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_incl: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_incl: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_incl: *r.end(),
        }
    }
}

/// A strategy for `Vec`s of `element` values with a size in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeMap`s with the given key/value strategies and a
/// size in `size` (duplicate keys collapse, so maps may come out smaller).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
