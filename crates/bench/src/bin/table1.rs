//! Regenerates the paper's Table 1 (Buckets.js: per-structure test
//! counts, GIL command counts, and baseline-vs-optimized times).
//!
//! `BENCH_REPORT=1` appends the telemetry report for the run, scoped to
//! this table only (unlike `repr_smoke`, which aggregates workloads).

fn main() {
    let before = gillian_telemetry::registry().snapshot();
    let started = std::time::Instant::now();
    let rows = gillian_bench::table1_rows();
    print!("{}", gillian_bench::render_table1(&rows));
    if std::env::var("BENCH_REPORT").as_deref() == Ok("1") {
        let report = gillian_telemetry::Report {
            wall_micros: started.elapsed().as_micros() as u64,
            workers: gillian_bench::workers_from_env() as u32,
            metrics: gillian_telemetry::registry().snapshot().since(&before),
            ..Default::default()
        };
        println!("\n{}", report.render());
    }
}
