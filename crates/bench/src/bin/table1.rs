//! Regenerates the paper's Table 1 (Buckets.js: per-structure test
//! counts, GIL command counts, and baseline-vs-optimized times).

fn main() {
    let rows = gillian_bench::table1_rows();
    print!("{}", gillian_bench::render_table1(&rows));
}
