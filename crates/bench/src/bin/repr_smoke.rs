//! CI bench smoke for the term-representation refactor: runs the Table 1
//! and Table 2 workloads on their normal budgets plus the `difftest`
//! differential-oracle workload, and emits `BENCH_repr.json` with
//! throughput (paths/sec), peak RSS, and interner hit rate, so the perf
//! trajectory has machine-readable data points.
//!
//! The JSON also records the **pre-refactor baseline**: internal suite
//! totals measured at commit `e38629e` (the last commit before terms
//! were hash-consed), as the average of 10 runs interleaved with the
//! refactored binaries in the same shell loop on the same machine, so
//! both sides saw identical machine conditions. The `speedup_vs_baseline`
//! ratios are therefore exact on that machine and indicative elsewhere:
//! on a different machine the measured side moves but the recorded
//! baseline does not. Set `BENCH_SMOKE_STRICT=1` to make the process
//! fail unless both ratios clear 1.5x (off by default so CI on unknown
//! hardware stays a smoke test, not a flaky perf gate).
//!
//! Output path: `BENCH_repr.json` in the current directory, or the path
//! in `BENCH_REPR_OUT`.
//!
//! Solver A/B: `GILLIAN_INCREMENTAL=0` / `GILLIAN_IMPLICATION=0`
//! disable the incremental per-prefix contexts and the implication-aware
//! verdict index respectively (see [`gillian_bench::solver_from_env`]),
//! so before/after throughput comparisons need no rebuild.
//!
//! Bytecode A/B: the main table rows honour `GILLIAN_BYTECODE` (the
//! register-bytecode evaluator, on by default; `=0` falls back to the
//! reference tree walk). Independently of that toggle, the run measures
//! both backends on table1 and table2 — interleaved best-of-3 with path
//! counts cross-checked — and records the side-by-side paths/sec in the
//! JSON's `bytecode_ab` section. The `compile_cost` workload prices the
//! one-shot bytecode compilation of every suite program eagerly (the
//! engine amortizes it lazily per procedure).
//!
//! Crash safety: `GILLIAN_CHECKPOINT=path.bin` arms frontier
//! checkpointing for every workload (interruption-triggered by default;
//! `GILLIAN_CHECKPOINT_EVERY_MS` adds periodic writes), and the
//! `checkpoint_250ms` workload measures what an armed 250 ms interval
//! costs against a checkpointing-off control on the same battery.
//!
//! Telemetry: the run always prints the process-level exploration
//! profile (metric deltas over both workloads). Set
//! `BENCH_TELEMETRY_GATE=1` to additionally assert that the measured
//! paths/sec stays within 3% of the throughput recorded in the
//! committed `BENCH_repr.json` (path override: `BENCH_REPR_BASELINE`) —
//! the sinks-off overhead guard for the telemetry layer.

use gillian_core::testing::TestSuiteResult;
use gillian_gil::intern::InternStats;
use gillian_telemetry::{registry, Report};
use std::fmt::Write as _;

/// Commit the baseline numbers were measured at (pre-refactor HEAD).
const BASELINE_COMMIT: &str = "e38629e";
/// Internal Table 1 total, optimized solver config, at the baseline.
const BASELINE_T1_SECS: f64 = 0.144;
/// Internal Table 2 total at the baseline.
const BASELINE_T2_SECS: f64 = 0.088;

struct Workload {
    name: &'static str,
    tests: usize,
    gil_cmds: u64,
    paths: usize,
    secs: f64,
    /// Pre-refactor total, where one exists. `None` for workloads that
    /// postdate the baseline commit (the `difftest` oracle workload).
    baseline_secs: Option<f64>,
}

impl Workload {
    fn paths_per_sec(&self) -> f64 {
        self.paths as f64 / self.secs.max(1e-9)
    }

    /// Speedup in paths/sec vs the recorded baseline. Path counts are
    /// identical on both sides (the refactor is engine-equivalent), so
    /// the throughput ratio reduces to a time ratio.
    fn speedup(&self) -> Option<f64> {
        self.baseline_secs.map(|b| b / self.secs.max(1e-9))
    }
}

fn accumulate(
    name: &'static str,
    baseline_secs: f64,
    rows: impl IntoIterator<Item = TestSuiteResult>,
) -> Workload {
    let mut w = Workload {
        name,
        tests: 0,
        gil_cmds: 0,
        paths: 0,
        secs: 0.0,
        baseline_secs: Some(baseline_secs),
    };
    for row in rows {
        assert!(
            row.failures.is_empty() && row.truncated.is_empty() && row.errored.is_empty(),
            "suite {} did not verify cleanly",
            row.name
        );
        w.tests += row.tests;
        w.gil_cmds += row.gil_cmds;
        w.paths += row.paths;
        w.secs += row.time.as_secs_f64();
    }
    w
}

/// `bytecode: None` defers to the process-wide `GILLIAN_BYTECODE` toggle
/// (on by default); the A/B legs pass `Some(..)` to force one backend.
fn run_table1_with(bytecode: Option<bool>) -> Workload {
    let cfg = gillian_core::ExploreConfig {
        workers: gillian_bench::workers_from_env(),
        checkpoint: gillian_bench::checkpoint_from_env(),
        bytecode,
        ..gillian_js::buckets::table1_config()
    };
    accumulate(
        "table1",
        BASELINE_T1_SECS,
        gillian_js::buckets::suite_names()
            .into_iter()
            .map(|s| gillian_js::buckets::run_row(s, gillian_bench::solver_from_env, cfg.clone())),
    )
}

fn run_table1() -> Workload {
    run_table1_with(None)
}

fn run_table2_with(bytecode: Option<bool>) -> Workload {
    let cfg = gillian_core::ExploreConfig {
        workers: gillian_bench::workers_from_env(),
        checkpoint: gillian_bench::checkpoint_from_env(),
        bytecode,
        ..gillian_c::collections::table2_config()
    };
    accumulate(
        "table2",
        BASELINE_T2_SECS,
        gillian_c::collections::suite_names().into_iter().map(|s| {
            gillian_c::collections::run_row(s, gillian_bench::solver_from_env, cfg.clone())
        }),
    )
}

fn run_table2() -> Workload {
    run_table2_with(None)
}

/// One table's bytecode-off vs bytecode-on measurement.
struct BytecodeAb {
    name: &'static str,
    off_secs: f64,
    on_secs: f64,
    paths: usize,
}

impl BytecodeAb {
    fn off_pps(&self) -> f64 {
        self.paths as f64 / self.off_secs.max(1e-9)
    }

    fn on_pps(&self) -> f64 {
        self.paths as f64 / self.on_secs.max(1e-9)
    }

    fn speedup(&self) -> f64 {
        self.off_secs / self.on_secs.max(1e-9)
    }
}

/// The bytecode A/B: table1 and table2 with the evaluator backend forced
/// off then on, interleaved best-of-3 (noise only adds time), with the
/// path counts cross-checked — the backends must explore identical path
/// sets, so the throughput ratio is a pure evaluator comparison. Runs
/// after the main workloads, so both legs see a warm interner.
fn run_bytecode_ab() -> Vec<BytecodeAb> {
    type TableRun = fn(Option<bool>) -> Workload;
    let legs: [(&'static str, TableRun); 2] =
        [("table1", run_table1_with), ("table2", run_table2_with)];
    legs.iter()
        .map(|&(name, run)| {
            let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
            let mut paths = 0usize;
            for _ in 0..3 {
                let off = run(Some(false));
                let on = run(Some(true));
                assert_eq!(
                    off.paths, on.paths,
                    "{name}: backends explored different path counts"
                );
                off_secs = off_secs.min(off.secs);
                on_secs = on_secs.min(on.secs);
                paths = on.paths;
            }
            BytecodeAb {
                name,
                off_secs,
                on_secs,
                paths,
            }
        })
        .collect()
}

/// The `compile_cost` workload: the one-shot price of compiling every
/// table1 + table2 suite program to register bytecode — the work the
/// engine's lazy per-procedure compile spreads across a run, forced
/// eagerly here so the JSON records its full magnitude. `tests` counts
/// suite programs, `paths` compiled procedures, `gil_cmds` compiled
/// instructions; parsing and GIL generation are excluded from the timed
/// section (they are priced in the table rows, not here). No
/// pre-bytecode baseline exists, so `baseline_secs` is null.
fn run_compile_cost() -> Workload {
    let mut progs: Vec<gillian_gil::Prog> = Vec::new();
    for s in gillian_js::buckets::suite_names() {
        progs.push(gillian_js::buckets::suite_prog(s).0);
    }
    for s in gillian_c::collections::suite_names() {
        progs.push(
            gillian_c::collections::suite_prog(s)
                .expect("table2 suite compiles")
                .0,
        );
    }
    let mut w = Workload {
        name: "compile_cost",
        tests: progs.len(),
        gil_cmds: 0,
        paths: 0,
        secs: 0.0,
        baseline_secs: None,
    };
    let started = std::time::Instant::now();
    for prog in &progs {
        let compiled = gillian_gil::compile::compile(prog);
        for proc in prog.iter() {
            let pid = compiled.pid(&proc.name).expect("every proc has a pid");
            w.gil_cmds += compiled.by_pid(pid).body.len() as u64;
            w.paths += 1;
        }
    }
    w.secs = started.elapsed().as_secs_f64();
    w
}

/// The `difftest` workload: a fixed-seed slice of the differential
/// battery over the While instantiation — each generated program is
/// explored symbolically, then every path is witness-concretized and
/// replayed through the concrete state constructor with the final
/// memories compared under `I_W`. `paths` counts concrete replays (the
/// oracle's unit of work); any divergence aborts the bench.
fn run_difftest() -> Workload {
    use gillian_core::difftest::{run_differential_with, InterpMemoryCheck};
    use gillian_core::generate::{build_prog, gen_ops, MemDialect, Rng};
    use gillian_while::{WhileConcMemory, WhileInterpretation, WhileSymMemory};

    const SEED: u64 = 0x9E37_79B9;
    const PROGRAMS: usize = 60;
    let solver = std::sync::Arc::new(gillian_bench::solver_from_env());
    let cfg = gillian_core::ExploreConfig {
        workers: gillian_bench::workers_from_env(),
        journal: gillian_telemetry::Journal::disabled(),
        checkpoint: gillian_bench::checkpoint_from_env(),
        ..Default::default()
    };
    let memcheck = InterpMemoryCheck(WhileInterpretation);
    let mut w = Workload {
        name: "difftest",
        tests: PROGRAMS,
        gil_cmds: 0,
        paths: 0,
        secs: 0.0,
        baseline_secs: None,
    };
    let started = std::time::Instant::now();
    for i in 0..PROGRAMS as u64 {
        let ops = gen_ops(&mut Rng::new(SEED + i), 14, MemDialect::While);
        let prog = build_prog(&ops, MemDialect::While);
        let report = run_differential_with::<WhileSymMemory, WhileConcMemory, _>(
            &prog,
            "main",
            solver.clone(),
            cfg.clone(),
            &memcheck,
        );
        assert!(
            report.agreed(),
            "difftest workload diverged at seed {}: {:?}",
            SEED + i,
            report.divergences
        );
        w.gil_cmds += report.sym_cmds;
        w.paths += report.replayed;
    }
    w.secs = started.elapsed().as_secs_f64();
    w
}

/// The off-vs-on legs of the checkpoint-overhead measurement.
struct CheckpointOverhead {
    off_secs: f64,
    on_secs: f64,
    writes: u64,
}

impl CheckpointOverhead {
    fn overhead_pct(&self) -> f64 {
        100.0 * (self.on_secs / self.off_secs.max(1e-9) - 1.0)
    }
}

/// The `checkpoint_250ms` workload: a fixed-seed battery of generated
/// While programs explored twice in one process — checkpointing off,
/// then with a 250 ms interval checkpoint to a temp file — so the JSON
/// records what arming crash-safe checkpointing costs on this machine.
/// Both legs must produce identical path and command counts (checkpoint
/// writes are observationally transparent); the reported workload row is
/// the checkpointed leg.
fn run_checkpoint_overhead() -> (Workload, CheckpointOverhead) {
    use gillian_core::generate::{build_prog, gen_ops, MemDialect, Rng};
    use gillian_core::symbolic::SymbolicState;
    use gillian_core::CheckpointConfig;
    use gillian_telemetry::names;
    use gillian_while::WhileSymMemory;

    const SEED: u64 = 0xC4E0_0F5E;
    const PROGRAMS: usize = 40;
    let solver = std::sync::Arc::new(gillian_bench::solver_from_env());
    let path = std::env::temp_dir().join(format!("gillian-bench-ckpt-{}.bin", std::process::id()));
    let leg = |checkpoint: Option<CheckpointConfig>| -> (usize, u64, f64) {
        let started = std::time::Instant::now();
        let (mut paths, mut cmds) = (0usize, 0u64);
        for i in 0..PROGRAMS as u64 {
            let ops = gen_ops(&mut Rng::new(SEED + i), 14, MemDialect::While);
            let prog = build_prog(&ops, MemDialect::While);
            let cfg = gillian_core::ExploreConfig {
                workers: gillian_bench::workers_from_env(),
                journal: gillian_telemetry::Journal::disabled(),
                checkpoint: checkpoint.clone(),
                ..Default::default()
            };
            let result = gillian_core::explore_with(
                &prog,
                "main",
                SymbolicState::<WhileSymMemory>::new(solver.clone()),
                cfg,
            );
            assert!(!result.bounded(), "checkpoint workload must be exhaustive");
            paths += result.paths.len();
            cmds += result.total_cmds;
        }
        (paths, cmds, started.elapsed().as_secs_f64())
    };
    let armed =
        || Some(CheckpointConfig::at(&path).with_interval(std::time::Duration::from_millis(250)));
    // Warm-up leg (untimed): the first pass through the battery mints the
    // interner nodes and warms the allocator, which would otherwise be
    // billed entirely to whichever leg ran first.
    let (paths_off, cmds_off, _) = leg(None);
    // Interleaved best-of-3: noise only ever adds time, so the minimum of
    // alternating legs is the fairest off-vs-armed comparison.
    let writes_before = registry().counter(names::CHECKPOINT_WRITES).get();
    let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
    let (mut paths_on, mut cmds_on) = (0, 0);
    for _ in 0..3 {
        off_secs = off_secs.min(leg(None).2);
        let (p, c, secs) = leg(armed());
        (paths_on, cmds_on) = (p, c);
        on_secs = on_secs.min(secs);
    }
    let writes = registry().counter(names::CHECKPOINT_WRITES).get() - writes_before;
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        (paths_off, cmds_off),
        (paths_on, cmds_on),
        "checkpointing perturbed exploration results"
    );
    let w = Workload {
        name: "checkpoint_250ms",
        tests: PROGRAMS,
        gil_cmds: cmds_on,
        paths: paths_on,
        secs: on_secs,
        baseline_secs: None,
    };
    (
        w,
        CheckpointOverhead {
            off_secs,
            on_secs,
            writes,
        },
    )
}

/// The off-vs-armed legs of the profiler-overhead measurement.
struct ProfilerOverhead {
    off_secs: f64,
    on_secs: f64,
    /// Journal events merged across the armed leg (ProcTime, forks,
    /// finishes, sat queries — everything the profiler ingests).
    events: u64,
}

impl ProfilerOverhead {
    fn overhead_pct(&self) -> f64 {
        100.0 * (self.on_secs / self.off_secs.max(1e-9) - 1.0)
    }
}

/// The `profiler_journal` workload: a fixed-seed battery of generated
/// While programs explored twice in one process — journal disabled (the
/// sinks-off default every untraced run pays), then with the in-memory
/// event journal armed, which turns on path-context attribution, the
/// dispatcher's per-proc time segments, and the exploration-tree profile
/// built into the run's report — so the JSON records what arming the
/// profiler costs on this machine. Both legs must produce identical path
/// and command counts (profiling is observationally transparent); the
/// reported workload row is the armed leg.
fn run_profiler_overhead() -> (Workload, ProfilerOverhead) {
    use gillian_core::generate::{build_prog, gen_ops, MemDialect, Rng};
    use gillian_core::symbolic::SymbolicState;
    use gillian_while::WhileSymMemory;

    const SEED: u64 = 0xF01D_ED57;
    const PROGRAMS: usize = 40;
    let solver = std::sync::Arc::new(gillian_bench::solver_from_env());
    let leg = |armed: bool| -> (usize, u64, u64, f64) {
        let started = std::time::Instant::now();
        let (mut paths, mut cmds, mut events) = (0usize, 0u64, 0u64);
        for i in 0..PROGRAMS as u64 {
            let ops = gen_ops(&mut Rng::new(SEED + i), 14, MemDialect::While);
            let prog = build_prog(&ops, MemDialect::While);
            let journal = if armed {
                gillian_telemetry::Journal::enabled()
            } else {
                gillian_telemetry::Journal::disabled()
            };
            let cfg = gillian_core::ExploreConfig {
                workers: gillian_bench::workers_from_env(),
                journal: journal.clone(),
                checkpoint: gillian_bench::checkpoint_from_env(),
                ..Default::default()
            };
            let result = gillian_core::explore_with(
                &prog,
                "main",
                SymbolicState::<WhileSymMemory>::new(solver.clone()),
                cfg,
            );
            assert!(!result.bounded(), "profiler workload must be exhaustive");
            paths += result.paths.len();
            cmds += result.total_cmds;
            if armed {
                events += result.report.events;
                assert!(
                    result.report.profile.is_some(),
                    "armed leg must build the exploration-tree profile"
                );
            }
        }
        (paths, cmds, events, started.elapsed().as_secs_f64())
    };
    // Warm-up leg (untimed), then interleaved best-of-3 — same
    // methodology as the checkpoint overhead above.
    let (paths_off, cmds_off, _, _) = leg(false);
    let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
    let (mut paths_on, mut cmds_on, mut events) = (0, 0, 0);
    for _ in 0..3 {
        off_secs = off_secs.min(leg(false).3);
        let (p, c, e, secs) = leg(true);
        (paths_on, cmds_on, events) = (p, c, e);
        on_secs = on_secs.min(secs);
    }
    assert_eq!(
        (paths_off, cmds_off),
        (paths_on, cmds_on),
        "profiling perturbed exploration results"
    );
    let w = Workload {
        name: "profiler_journal",
        tests: PROGRAMS,
        gil_cmds: cmds_on,
        paths: paths_on,
        secs: on_secs,
        baseline_secs: None,
    };
    (
        w,
        ProfilerOverhead {
            off_secs,
            on_secs,
            events,
        },
    )
}

/// The cold-vs-warm legs of the summary-reuse measurement.
struct SummaryWarm {
    cold_secs: f64,
    warm_secs: f64,
    /// Summary entries the warm legs preload from disk.
    entries: usize,
    /// Call sites answered by splicing across the warm legs.
    applied: u64,
}

impl SummaryWarm {
    fn speedup(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-9)
    }
}

/// The `summary_warm` battery program: 64 calls to straight-line leaf
/// procedures (15 dependent arithmetic commands each) on a symbolic
/// argument, followed by three nested one-or-two-sided guards (4 paths).
/// Every call window is summarizable — no fork, no memory, no fresh
/// symbol inside a leaf — so a warm run splices all 64 sites per path
/// where a cold run re-executes ~16 commands per call.
fn summary_prog() -> gillian_gil::Prog {
    use gillian_gil::{Cmd, Expr, Proc, Prog};
    let mut procs = Vec::new();
    for j in 0..8i64 {
        let mut body = vec![Cmd::assign("t", Expr::pvar("a").add(Expr::pvar("b")))];
        for k in 0..14 {
            body.push(Cmd::assign(
                "t",
                Expr::pvar("t").mul(Expr::int(3)).add(Expr::int(k + j)),
            ));
        }
        body.push(Cmd::Return(Expr::pvar("t")));
        procs.push(Proc::new(format!("leaf{j}"), ["a", "b"], body));
    }
    let mut body = vec![Cmd::isym("x", 0), Cmd::assign("acc", Expr::int(0))];
    for c in 0..64i64 {
        body.push(Cmd::call_static(
            "r",
            format!("leaf{}", c % 8),
            vec![Expr::pvar("x").add(Expr::int(c)), Expr::int(c)],
        ));
    }
    body.push(Cmd::assign("acc", Expr::pvar("r")));
    for k in [5i64, 9, 13] {
        let skip = body.len() + 2;
        body.push(Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(k)), skip));
        body.push(Cmd::assign("acc", Expr::pvar("acc").add(Expr::int(1))));
    }
    body.push(Cmd::Return(Expr::pvar("acc")));
    procs.push(Proc::new("main", [], body));
    Prog::from_procs(procs)
}

/// The `summary_warm` workload: repeated verification of the call-heavy
/// straight-line program above, cold and warm in one process. A harvest
/// pass records the program's summaries and persists them with
/// `SummaryStore::save_file`; the warm legs then model a fresh process:
/// a brand-new solver, the store preloaded from that file, summaries
/// armed — so each warm leg prices the load too. The cold legs run
/// summaries-off on an equally fresh solver. Interleaved best-of-3
/// (noise only adds time), path and command counts cross-checked —
/// summaries must never change what is explored, only skip re-executing
/// summarized callees — and the warm legs must actually splice
/// (`applied > 0`). The reported workload row is the warm leg; the
/// `summary_warm` JSON section carries the A/B.
fn run_summary_warm() -> (Workload, SummaryWarm) {
    use gillian_core::symbolic::SymbolicState;
    use gillian_while::WhileSymMemory;

    const ITERS: usize = 40;
    let prog = summary_prog();
    let path =
        std::env::temp_dir().join(format!("gillian-bench-summ-{}.gilsum", std::process::id()));
    let battery = |solver: &std::sync::Arc<gillian_solver::Solver>,
                   summaries: bool|
     -> (usize, u64, u64, f64) {
        let started = std::time::Instant::now();
        let (mut paths, mut cmds, mut applied) = (0usize, 0u64, 0u64);
        for _ in 0..ITERS {
            let cfg = gillian_core::ExploreConfig {
                workers: gillian_bench::workers_from_env(),
                journal: gillian_telemetry::Journal::disabled(),
                checkpoint: gillian_bench::checkpoint_from_env(),
                summaries: Some(summaries),
                ..Default::default()
            };
            let result = gillian_core::explore_with(
                &prog,
                "main",
                SymbolicState::<WhileSymMemory>::new(solver.clone()),
                cfg,
            );
            assert!(!result.bounded(), "summary workload must be exhaustive");
            paths += result.paths.len();
            cmds += result.total_cmds;
            applied += result.diagnostics.summaries_applied;
        }
        (paths, cmds, applied, started.elapsed().as_secs_f64())
    };
    // Harvest pass (untimed): record the battery's summaries and persist
    // them; doubles as the interner/allocator warm-up the other overhead
    // workloads do.
    let harvest_solver = std::sync::Arc::new(gillian_bench::solver_from_env());
    battery(&harvest_solver, true);
    let entries = harvest_solver.summaries().len();
    harvest_solver
        .summaries()
        .save_file(&path)
        .expect("persist harvested summaries");
    // Interleaved best-of-3, each leg on a brand-new solver so the warm
    // side's only advantage is the store it loads from disk.
    let (mut cold_secs, mut warm_secs) = (f64::INFINITY, f64::INFINITY);
    let (mut paths_cold, mut cmds_cold) = (0, 0);
    let (mut paths_warm, mut cmds_warm, mut applied) = (0, 0, 0);
    for _ in 0..3 {
        let cold = std::sync::Arc::new(gillian_bench::solver_from_env());
        let (p, c, _, secs) = battery(&cold, false);
        (paths_cold, cmds_cold) = (p, c);
        cold_secs = cold_secs.min(secs);
        // The warm leg's clock covers the preload too: a real warm
        // process pays the deserialization before it saves anything.
        let warm = std::sync::Arc::new(gillian_bench::solver_from_env());
        let started = std::time::Instant::now();
        warm.summaries()
            .load_file(&path)
            .expect("reload harvested summaries");
        let (p, c, a, _) = battery(&warm, true);
        (paths_warm, cmds_warm, applied) = (p, c, a);
        warm_secs = warm_secs.min(started.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        paths_cold, paths_warm,
        "summary reuse perturbed the explored path set"
    );
    assert!(applied > 0, "warm legs never applied a summary");
    assert!(
        cmds_warm <= cmds_cold,
        "summary reuse grew total commands ({cmds_warm} > {cmds_cold})"
    );
    let w = Workload {
        name: "summary_warm",
        tests: ITERS,
        gil_cmds: cmds_warm,
        paths: paths_warm,
        secs: warm_secs,
        baseline_secs: None,
    };
    (
        w,
        SummaryWarm {
            cold_secs,
            warm_secs,
            entries,
            applied,
        },
    )
}

/// Peak resident set size in bytes, from `/proc/self/status` (`VmHWM`).
/// Returns 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

fn json_workload(out: &mut String, w: &Workload) {
    let baseline = match w.baseline_secs {
        Some(b) => format!("{b:.4}"),
        None => "null".to_string(),
    };
    let speedup = match w.speedup() {
        Some(s) => format!("{s:.2}"),
        None => "null".to_string(),
    };
    write!(
        out,
        concat!(
            "    {{\"name\": \"{}\", \"tests\": {}, \"gil_cmds\": {}, \"paths\": {}, ",
            "\"secs\": {:.4}, \"paths_per_sec\": {:.1}, ",
            "\"baseline_secs\": {}, \"speedup_vs_baseline\": {}}}"
        ),
        w.name,
        w.tests,
        w.gil_cmds,
        w.paths,
        w.secs,
        w.paths_per_sec(),
        baseline,
        speedup
    )
    .unwrap();
}

fn render_json(
    workloads: &[Workload],
    ab: &[BytecodeAb],
    ckpt: &CheckpointOverhead,
    prof: &ProfilerOverhead,
    summ: &SummaryWarm,
    interner: &InternStats,
    rss: u64,
) -> String {
    let denom = (interner.mints + interner.hits).max(1);
    let hit_rate = interner.hits as f64 / denom as f64;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"gillian-bench-repr-smoke/4\",\n");
    writeln!(
        out,
        concat!(
            "  \"baseline\": {{\"commit\": \"{}\", \"methodology\": ",
            "\"internal suite totals at the pre-refactor commit, ",
            "averaged over 10 runs interleaved with the refactored ",
            "binaries on the same machine; measured-side numbers are ",
            "machine-relative and recommitted whenever workloads change, ",
            "from a contended-phase run (the telemetry gate treats them ",
            "as a floor), so absolute paths/sec is only comparable ",
            "within one committed file\"}},"
        ),
        BASELINE_COMMIT
    )
    .unwrap();
    out.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        json_workload(&mut out, w);
        out.push_str(if i + 1 < workloads.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"bytecode_ab\": [\n");
    for (i, leg) in ab.iter().enumerate() {
        write!(
            out,
            concat!(
                "    {{\"name\": \"{}\", \"paths\": {}, ",
                "\"off_secs\": {:.4}, \"off_paths_per_sec\": {:.1}, ",
                "\"on_secs\": {:.4}, \"on_paths_per_sec\": {:.1}, ",
                "\"speedup\": {:.2}}}"
            ),
            leg.name,
            leg.paths,
            leg.off_secs,
            leg.off_pps(),
            leg.on_secs,
            leg.on_pps(),
            leg.speedup()
        )
        .unwrap();
        out.push_str(if i + 1 < ab.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    writeln!(
        out,
        concat!(
            "  \"checkpoint_overhead\": {{\"off_secs\": {:.4}, ",
            "\"on_secs\": {:.4}, \"every_ms\": 250, \"writes\": {}, ",
            "\"overhead_pct\": {:.2}, \"methodology\": ",
            "\"best-of-3 interleaved legs of the same fixed-seed While ",
            "battery after an untimed warm-up pass, checkpointing off vs ",
            "armed at a 250ms interval; each program finishes well inside ",
            "the interval, so the armed leg prices the per-step clock ",
            "checks (writes counts any interval writes that did fire), ",
            "and with no baseline_secs the workload row carries no ",
            "speedup ratio — overhead_pct is indicative, not a gate\"}},"
        ),
        ckpt.off_secs,
        ckpt.on_secs,
        ckpt.writes,
        ckpt.overhead_pct()
    )
    .unwrap();
    writeln!(
        out,
        concat!(
            "  \"profiler_overhead\": {{\"off_secs\": {:.4}, ",
            "\"on_secs\": {:.4}, \"events\": {}, ",
            "\"overhead_pct\": {:.2}, \"methodology\": ",
            "\"best-of-3 interleaved legs of the same fixed-seed While ",
            "battery after an untimed warm-up pass, journal disabled vs ",
            "armed in-memory; the armed leg pays path-context attribution, ",
            "per-proc dispatcher segments, and the exploration-tree ",
            "profile built into each run's report (events counts merged ",
            "journal records); file sinks and the live console are priced ",
            "separately by running the telemetry gate with GILLIAN_LIVE ",
            "set — overhead_pct is indicative, not a gate\"}},"
        ),
        prof.off_secs,
        prof.on_secs,
        prof.events,
        prof.overhead_pct()
    )
    .unwrap();
    writeln!(
        out,
        concat!(
            "  \"summary_warm\": {{\"cold_secs\": {:.4}, ",
            "\"warm_secs\": {:.4}, \"entries\": {}, \"applied\": {}, ",
            "\"speedup\": {:.2}, \"methodology\": ",
            "\"best-of-3 interleaved legs repeatedly verifying the same ",
            "call-heavy straight-line-callee program after an untimed ",
            "harvest pass that persists the summary store; every leg ",
            "runs on a brand-new solver, the warm legs reload the store ",
            "from disk inside their timed window (modelling a fresh warm ",
            "process), and path counts are cross-checked — speedup is ",
            "indicative, not a gate\"}},"
        ),
        summ.cold_secs,
        summ.warm_secs,
        summ.entries,
        summ.applied,
        summ.speedup()
    )
    .unwrap();
    writeln!(
        out,
        concat!(
            "  \"interner\": {{\"mints\": {}, \"hits\": {}, ",
            "\"hit_rate\": {:.4}, \"live\": {}}},"
        ),
        interner.mints, interner.hits, hit_rate, interner.live
    )
    .unwrap();
    writeln!(out, "  \"peak_rss_bytes\": {rss}").unwrap();
    out.push_str("}\n");
    out
}

/// The sinks-off overhead guard (`BENCH_TELEMETRY_GATE=1`): measured
/// paths/sec must stay within `tolerance` of the throughput recorded in
/// the committed baseline JSON. Running the gate with `GILLIAN_LIVE`
/// set additionally covers the live-mode sink: every explore in the
/// gated workloads then pays the live console's frame emission against
/// a looser 10% floor — the batteries here are sub-10ms micro-runs, so
/// the per-run sink open and first/final frames dominate in a way real
/// runs (one sink per run, frames per interval) never see. CI runs the
/// gate both ways. Reads the recorded `paths_per_sec` with
/// a tiny line scan — the file is machine-written by this bin, so the
/// fields are on one line per workload in a stable order.
///
/// Best-of-three: single runs of these sub-second suites swing several
/// percent with machine load, and noise only ever subtracts throughput,
/// so a failing attempt re-runs the workloads (up to twice) and gates
/// on the best measurement seen. The committed baseline is recorded
/// during a *contended* phase of the reference machine for the same
/// reason — the gate is a floor, not a race.
fn telemetry_gate(workloads: &[Workload], baseline: &str, baseline_path: &str, tolerance: f64) {
    let recorded_for = |name: &str| -> f64 {
        baseline
            .lines()
            .find(|l| l.contains(&format!("\"name\": \"{name}\"")))
            .and_then(|l| l.split("\"paths_per_sec\": ").nth(1))
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|num| num.trim().parse::<f64>().ok())
            .unwrap_or_else(|| {
                panic!("BENCH_TELEMETRY_GATE: no paths_per_sec for {name} in {baseline_path}")
            })
    };
    let mut best: Vec<(&'static str, f64)> = workloads
        .iter()
        .map(|w| (w.name, w.paths_per_sec()))
        .collect();
    for attempt in 0..2 {
        let under = best
            .iter()
            .any(|&(name, pps)| pps / recorded_for(name).max(1e-9) < 1.0 - tolerance);
        if !under {
            break;
        }
        println!(
            "telemetry gate: attempt {} under budget, re-measuring",
            attempt + 1
        );
        for (w, slot) in [run_table1(), run_table2()].iter().zip(best.iter_mut()) {
            slot.1 = slot.1.max(w.paths_per_sec());
        }
    }
    for &(name, pps) in &best {
        let recorded = recorded_for(name);
        let ratio = pps / recorded.max(1e-9);
        println!(
            "telemetry gate: {name} {pps:.0} paths/sec vs recorded {recorded:.0} ({:+.1}%)",
            100.0 * (ratio - 1.0)
        );
        assert!(
            ratio >= 1.0 - tolerance,
            "{name}: {pps:.0} paths/sec regresses more than {:.0}% vs the {recorded:.0} recorded in {baseline_path}",
            100.0 * tolerance
        );
    }
}

fn main() {
    // The baseline is read up front: the default baseline path is the
    // file this run overwrites below.
    let gate = std::env::var("BENCH_TELEMETRY_GATE").as_deref() == Ok("1");
    let baseline_path =
        std::env::var("BENCH_REPR_BASELINE").unwrap_or_else(|_| "BENCH_repr.json".to_string());
    let baseline = gate.then(|| {
        std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("BENCH_TELEMETRY_GATE: read {baseline_path}: {e}"))
    });
    let before = InternStats::snapshot();
    let metrics_before = registry().snapshot();
    let run_started = std::time::Instant::now();
    let (ckpt_workload, ckpt) = run_checkpoint_overhead();
    let (prof_workload, prof) = run_profiler_overhead();
    let (summ_workload, summ) = run_summary_warm();
    let workloads = [
        run_table1(),
        run_table2(),
        run_difftest(),
        ckpt_workload,
        prof_workload,
        summ_workload,
        run_compile_cost(),
    ];
    let ab = run_bytecode_ab();
    let report = Report {
        wall_micros: run_started.elapsed().as_micros() as u64,
        workers: gillian_bench::workers_from_env() as u32,
        metrics: registry().snapshot().since(&metrics_before),
        ..Default::default()
    };
    let interner = InternStats::snapshot().since(&before);
    let rss = peak_rss_bytes();

    let json = render_json(&workloads, &ab, &ckpt, &prof, &summ, &interner, rss);
    let out_path =
        std::env::var("BENCH_REPR_OUT").unwrap_or_else(|_| "BENCH_repr.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));

    for w in &workloads {
        let vs = match w.speedup() {
            Some(s) => format!(" ({s:.2}x vs {BASELINE_COMMIT} baseline)"),
            None => String::new(),
        };
        println!(
            "{}: {} paths in {:.3}s = {:.0} paths/sec{vs}",
            w.name,
            w.paths,
            w.secs,
            w.paths_per_sec(),
        );
    }
    for leg in &ab {
        println!(
            "bytecode A/B {}: off {:.0} paths/sec vs on {:.0} paths/sec ({:.2}x, {} paths both legs)",
            leg.name,
            leg.off_pps(),
            leg.on_pps(),
            leg.speedup(),
            leg.paths
        );
    }
    let denom = (interner.mints + interner.hits).max(1);
    println!(
        "interner: {} mints, {} hits ({:.1}% hit rate); peak RSS {:.1} MiB",
        interner.mints,
        interner.hits,
        100.0 * interner.hits as f64 / denom as f64,
        rss as f64 / (1024.0 * 1024.0)
    );
    println!(
        "checkpoint overhead: off {:.3}s vs 250ms-interval {:.3}s ({:+.1}%, {} writes)",
        ckpt.off_secs,
        ckpt.on_secs,
        ckpt.overhead_pct(),
        ckpt.writes
    );
    println!(
        "profiler overhead: off {:.3}s vs journal armed {:.3}s ({:+.1}%, {} events)",
        prof.off_secs,
        prof.on_secs,
        prof.overhead_pct(),
        prof.events
    );
    println!(
        "summary warm: cold {:.3}s vs warm-from-disk {:.3}s ({:.2}x, {} entries, {} applied)",
        summ.cold_secs,
        summ.warm_secs,
        summ.speedup(),
        summ.entries,
        summ.applied
    );
    println!("wrote {out_path}");
    println!("\n{}", report.render());

    if let Some(baseline) = &baseline {
        // The gate covers the two baselined workloads only: its best-of-three
        // re-measure re-runs table1/table2 and zips by position. With the
        // live sink armed the floor loosens to 10% (see telemetry_gate).
        let tolerance = if std::env::var("GILLIAN_LIVE").is_ok() {
            0.10
        } else {
            0.03
        };
        telemetry_gate(&workloads[..2], baseline, &baseline_path, tolerance);
    }

    if std::env::var("BENCH_SMOKE_STRICT").as_deref() == Ok("1") {
        for w in &workloads {
            let Some(speedup) = w.speedup() else { continue };
            assert!(
                speedup >= 1.5,
                "{}: speedup {speedup:.2}x below the 1.5x gate",
                w.name,
            );
        }
        for leg in &ab {
            assert!(
                leg.speedup() >= 1.5,
                "bytecode A/B {}: {:.2}x below the 1.5x gate",
                leg.name,
                leg.speedup()
            );
        }
    }
}
