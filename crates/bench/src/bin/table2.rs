//! Regenerates the paper's Table 2 (Collections-C: per-structure test
//! counts, GIL command counts, and times).
//!
//! `BENCH_REPORT=1` appends the telemetry report for the run, scoped to
//! this table only (unlike `repr_smoke`, which aggregates workloads).

fn main() {
    let before = gillian_telemetry::registry().snapshot();
    let started = std::time::Instant::now();
    // `BENCH_REPEAT=N` re-runs the table N times (sampling profilers need
    // more than one ~70ms pass to resolve anything).
    let repeat: usize = std::env::var("BENCH_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut rows = gillian_bench::table2_rows();
    for _ in 1..repeat {
        rows = gillian_bench::table2_rows();
    }
    print!("{}", gillian_bench::render_table2(&rows));
    if std::env::var("BENCH_REPORT").as_deref() == Ok("1") {
        let report = gillian_telemetry::Report {
            wall_micros: started.elapsed().as_micros() as u64,
            workers: gillian_bench::workers_from_env() as u32,
            metrics: gillian_telemetry::registry().snapshot().since(&before),
            ..Default::default()
        };
        println!("\n{}", report.render());
    }
}
