//! Regenerates the paper's Table 2 (Collections-C: per-structure test
//! counts, GIL command counts, and times).

fn main() {
    let rows = gillian_bench::table2_rows();
    print!("{}", gillian_bench::render_table2(&rows));
}
