#![warn(missing_docs)]

//! # Benchmark harness: regenerating the paper's evaluation
//!
//! The paper's evaluation artifacts are **Table 1** (Buckets.js under
//! Gillian-JS, with JaVerT 2.0 as the time baseline) and **Table 2**
//! (Collections-C under Gillian-C). This crate regenerates both:
//!
//! - the binaries `table1` and `table2` print the tables in the paper's
//!   row format (`cargo run -p gillian-bench --bin table1 --release`);
//! - the Criterion benches `table1_buckets` and `table2_collections`
//!   measure the same workloads per suite;
//! - the `ablations` bench isolates the two engine features the paper
//!   credits for the ≈2× speedup over JaVerT 2.0 (solver result caching
//!   and expression simplification).
//!
//! The JaVerT 2.0 column of Table 1 is reproduced by
//! [`gillian_solver::SolverConfig::baseline`], which disables exactly
//! those two features (see `DESIGN.md` §2 for the substitution argument).

use gillian_core::testing::TestSuiteResult;
use gillian_solver::{Solver, SolverConfig};
use std::fmt::Write as _;
use std::time::Duration;

/// One rendered row of a table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Data-structure name.
    pub name: String,
    /// Number of symbolic tests.
    pub tests: usize,
    /// GIL commands executed.
    pub gil_cmds: u64,
    /// Time under the baseline configuration (Table 1 only).
    pub time_baseline: Option<Duration>,
    /// Time under the optimized configuration.
    pub time_optimized: Duration,
}

fn fmt_duration(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Explorer worker count taken from the `GILLIAN_WORKERS` environment
/// variable (default 1 — the serial engine).
pub fn workers_from_env() -> usize {
    std::env::var("GILLIAN_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Per-suite wall-clock deadline taken from the `GILLIAN_DEADLINE_MS`
/// environment variable (default: none). With a deadline set, an
/// over-budget suite comes back truncated — and is *reported* as such by
/// [`assert_clean`] — instead of wedging the whole table run.
pub fn deadline_from_env() -> Option<Duration> {
    std::env::var("GILLIAN_DEADLINE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
}

/// Frontier checkpointing taken from the environment: `GILLIAN_CHECKPOINT`
/// names the checkpoint file (written atomically; see `DESIGN.md` §14),
/// and `GILLIAN_CHECKPOINT_EVERY_MS` adds periodic writes at that
/// interval on top of the default interruption-only triggers. Returns
/// `None` — checkpointing off — when `GILLIAN_CHECKPOINT` is unset.
pub fn checkpoint_from_env() -> Option<gillian_core::CheckpointConfig> {
    let path = std::env::var("GILLIAN_CHECKPOINT").ok()?;
    let mut cfg = gillian_core::CheckpointConfig::at(path);
    if let Some(ms) = std::env::var("GILLIAN_CHECKPOINT_EVERY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        cfg = cfg.with_interval(Duration::from_millis(ms));
    }
    Some(cfg)
}

/// The optimized solver with the incremental-solving layers toggled by
/// environment: `GILLIAN_INCREMENTAL=0` disables per-prefix solve
/// contexts, `GILLIAN_IMPLICATION=0` disables the implication-aware
/// verdict index (any other value, or unset, keeps both on). A/B harness
/// for `repr_smoke`: the layers are verdict-transparent, so toggling
/// them moves only throughput, never results.
pub fn solver_from_env() -> Solver {
    let off = |var: &str| std::env::var(var).as_deref() == Ok("0");
    let mut cfg = SolverConfig::optimized();
    if off("GILLIAN_INCREMENTAL") {
        cfg.incremental = false;
    }
    if off("GILLIAN_IMPLICATION") {
        cfg.implication_caching = false;
    }
    Solver::new(cfg)
}

/// Runs Table 1 (Buckets under MiniJS), with both engine configurations
/// and the [`workers_from_env`] worker count.
pub fn table1_rows() -> Vec<Row> {
    table1_rows_with(workers_from_env())
}

/// Runs Table 1 with an explicit explorer worker count.
pub fn table1_rows_with(workers: usize) -> Vec<Row> {
    let cfg = gillian_core::ExploreConfig {
        workers,
        deadline: deadline_from_env(),
        ..gillian_js::buckets::table1_config()
    };
    gillian_js::buckets::suite_names()
        .into_iter()
        .map(|suite| {
            let baseline = gillian_js::buckets::run_row(suite, Solver::baseline, cfg.clone());
            let optimized = gillian_js::buckets::run_row(suite, Solver::optimized, cfg.clone());
            assert_clean(&baseline);
            assert_clean(&optimized);
            Row {
                name: suite.to_string(),
                tests: optimized.tests,
                gil_cmds: optimized.gil_cmds,
                time_baseline: Some(baseline.time),
                time_optimized: optimized.time,
            }
        })
        .collect()
}

/// Runs Table 2 (Collections under MiniC) with the [`workers_from_env`]
/// worker count.
pub fn table2_rows() -> Vec<Row> {
    table2_rows_with(workers_from_env())
}

/// Runs Table 2 with an explicit explorer worker count.
pub fn table2_rows_with(workers: usize) -> Vec<Row> {
    let cfg = gillian_core::ExploreConfig {
        workers,
        deadline: deadline_from_env(),
        ..gillian_c::collections::table2_config()
    };
    gillian_c::collections::suite_names()
        .into_iter()
        .map(|suite| {
            let row = gillian_c::collections::run_row(suite, Solver::optimized, cfg.clone());
            assert_clean(&row);
            Row {
                name: suite.to_string(),
                tests: row.tests,
                gil_cmds: row.gil_cmds,
                time_baseline: None,
                time_optimized: row.time,
            }
        })
        .collect()
}

fn assert_clean(row: &TestSuiteResult) {
    assert!(
        row.failures.is_empty() && row.truncated.is_empty() && row.errored.is_empty(),
        "suite {} did not verify cleanly: failures {:?}, truncated {:?}, errored {:?} ({:?})",
        row.name,
        row.failures,
        row.truncated,
        row.errored,
        row.diagnostics
    );
}

/// Renders rows in the paper's Table 1 format
/// (`Name #T GILCmds Time(J2) Time(GJS)`).
pub fn render_table1(rows: &[Row]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<8} {:>4} {:>12} {:>10} {:>10}",
        "Name", "#T", "GIL Cmds", "Time(base)", "Time(opt)"
    )
    .unwrap();
    let (mut t, mut c, mut tb, mut to) = (0, 0u64, Duration::ZERO, Duration::ZERO);
    for r in rows {
        let base = r.time_baseline.unwrap_or_default();
        writeln!(
            out,
            "{:<8} {:>4} {:>12} {:>10} {:>10}",
            r.name,
            r.tests,
            r.gil_cmds,
            fmt_duration(base),
            fmt_duration(r.time_optimized)
        )
        .unwrap();
        t += r.tests;
        c += r.gil_cmds;
        tb += base;
        to += r.time_optimized;
    }
    writeln!(
        out,
        "{:<8} {:>4} {:>12} {:>10} {:>10}",
        "Total",
        t,
        c,
        fmt_duration(tb),
        fmt_duration(to)
    )
    .unwrap();
    writeln!(
        out,
        "speedup (baseline/optimized): {:.2}x",
        tb.as_secs_f64() / to.as_secs_f64().max(1e-9)
    )
    .unwrap();
    out
}

/// Renders rows in the paper's Table 2 format (`Name #T GILCmds Time`).
pub fn render_table2(rows: &[Row]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<8} {:>4} {:>12} {:>10}",
        "Name", "#T", "GIL Cmds", "Time"
    )
    .unwrap();
    let (mut t, mut c, mut to) = (0, 0u64, Duration::ZERO);
    for r in rows {
        writeln!(
            out,
            "{:<8} {:>4} {:>12} {:>10}",
            r.name,
            r.tests,
            r.gil_cmds,
            fmt_duration(r.time_optimized)
        )
        .unwrap();
        t += r.tests;
        c += r.gil_cmds;
        to += r.time_optimized;
    }
    writeln!(
        out,
        "{:<8} {:>4} {:>12} {:>10}",
        "Total",
        t,
        c,
        fmt_duration(to)
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_table2_row_matches_serial() {
        // End-to-end check on a real guest-language suite: the parallel
        // explorer must verify the same tests, execute the same command
        // count, and stay clean — only wall-clock may differ.
        let serial_cfg = gillian_c::collections::table2_config();
        let parallel_cfg = gillian_core::ExploreConfig {
            workers: 4,
            ..serial_cfg.clone()
        };
        let serial = gillian_c::collections::run_row("slist", Solver::optimized, serial_cfg);
        let parallel = gillian_c::collections::run_row("slist", Solver::optimized, parallel_cfg);
        assert_clean(&serial);
        assert_clean(&parallel);
        assert_eq!(serial.tests, parallel.tests);
        assert_eq!(serial.gil_cmds, parallel.gil_cmds);
    }

    #[test]
    fn incremental_matches_monolithic_on_table_suites() {
        // Real guest-language workloads (one Table 1 suite, one Table 2
        // suite), serial and 4-worker: the incremental per-prefix
        // contexts and the implication index must change nothing
        // observable — same tests verified, same command counts, same
        // path counts, clean on both sides.
        let monolithic = || {
            Solver::new(SolverConfig {
                incremental: false,
                implication_caching: false,
                ..SolverConfig::optimized()
            })
        };
        for workers in [1usize, 4] {
            let js_cfg = gillian_core::ExploreConfig {
                workers,
                ..gillian_js::buckets::table1_config()
            };
            let c_cfg = gillian_core::ExploreConfig {
                workers,
                ..gillian_c::collections::table2_config()
            };
            let legs = [
                gillian_js::buckets::run_row("dict", monolithic, js_cfg.clone()),
                gillian_js::buckets::run_row("dict", Solver::optimized, js_cfg),
                gillian_c::collections::run_row("slist", monolithic, c_cfg.clone()),
                gillian_c::collections::run_row("slist", Solver::optimized, c_cfg),
            ];
            for leg in &legs {
                assert_clean(leg);
            }
            for pair in legs.chunks(2) {
                assert_eq!(pair[0].tests, pair[1].tests, "workers={workers}");
                assert_eq!(
                    pair[0].gil_cmds, pair[1].gil_cmds,
                    "{}: incremental solving changed the executed commands (workers={workers})",
                    pair[0].name
                );
                assert_eq!(
                    pair[0].paths, pair[1].paths,
                    "{}: incremental solving changed the explored paths (workers={workers})",
                    pair[0].name
                );
            }
        }
    }

    #[test]
    fn table2_renders_all_rows() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 10);
        let rendered = render_table2(&rows);
        assert!(rendered.contains("slist"));
        assert!(rendered.contains("Total"));
        let total: usize = rows.iter().map(|r| r.tests).sum();
        assert_eq!(total, 161);
    }
}
