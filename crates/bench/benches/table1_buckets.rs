//! Criterion bench for Table 1: each Buckets suite, under both the
//! optimized engine and the baseline (JaVerT-2.0-like) configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use gillian_solver::Solver;

fn bench_table1(c: &mut Criterion) {
    let cfg = gillian_js::buckets::table1_config();
    let mut group = c.benchmark_group("table1_buckets");
    group.sample_size(10);
    for suite in gillian_js::buckets::suite_names() {
        group.bench_function(format!("{suite}/optimized"), |b| {
            b.iter(|| gillian_js::buckets::run_row(suite, Solver::optimized, cfg.clone()))
        });
        group.bench_function(format!("{suite}/baseline"), |b| {
            b.iter(|| gillian_js::buckets::run_row(suite, Solver::baseline, cfg.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
