//! Criterion bench for Table 2: each Collections suite under the
//! optimized engine.

use criterion::{criterion_group, criterion_main, Criterion};
use gillian_solver::Solver;

fn bench_table2(c: &mut Criterion) {
    let cfg = gillian_c::collections::table2_config();
    let mut group = c.benchmark_group("table2_collections");
    group.sample_size(10);
    for suite in gillian_c::collections::suite_names() {
        group.bench_function(suite, |b| {
            b.iter(|| gillian_c::collections::run_row(suite, Solver::optimized, cfg.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
