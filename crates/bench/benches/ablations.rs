//! Ablation bench for the design choices DESIGN.md calls out: solver
//! result caching and the simplifier tier. Three engine configurations
//! (optimized / baseline / unoptimized) over a fixed subset of suites.

use criterion::{criterion_group, criterion_main, Criterion};
use gillian_solver::Solver;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let js_cfg = gillian_js::buckets::table1_config();
    for suite in ["bst", "heap"] {
        group.bench_function(format!("js/{suite}/optimized"), |b| {
            b.iter(|| gillian_js::buckets::run_row(suite, Solver::optimized, js_cfg.clone()))
        });
        group.bench_function(format!("js/{suite}/baseline(no-cache,basic-simp)"), |b| {
            b.iter(|| gillian_js::buckets::run_row(suite, Solver::baseline, js_cfg.clone()))
        });
        group.bench_function(format!("js/{suite}/unoptimized(no-cache,no-simp)"), |b| {
            b.iter(|| gillian_js::buckets::run_row(suite, Solver::unoptimized, js_cfg.clone()))
        });
    }
    let c_cfg = gillian_c::collections::table2_config();
    for suite in ["array", "treetbl"] {
        group.bench_function(format!("c/{suite}/optimized"), |b| {
            b.iter(|| gillian_c::collections::run_row(suite, Solver::optimized, c_cfg.clone()))
        });
        group.bench_function(format!("c/{suite}/baseline(no-cache,basic-simp)"), |b| {
            b.iter(|| gillian_c::collections::run_row(suite, Solver::baseline, c_cfg.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
