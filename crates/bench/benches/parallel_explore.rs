//! Serial vs. parallel explorer on Table 2 suites.
//!
//! Compares the worklist engine (`workers = 1`) against the work-sharing
//! parallel engine at 2 and 4 workers on real Collections-C workloads.
//! Speedup scales with available cores; on a single-core host the parallel
//! rows mainly measure the coordination overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use gillian_core::ExploreConfig;
use gillian_solver::Solver;

fn bench_parallel(c: &mut Criterion) {
    let base = gillian_c::collections::table2_config();
    let mut group = c.benchmark_group("parallel_explore");
    group.sample_size(10);
    for suite in ["slist", "deque", "treeset"] {
        for workers in [1usize, 2, 4] {
            let cfg = ExploreConfig {
                workers,
                ..base.clone()
            };
            group.bench_function(format!("{suite}/workers={workers}"), |b| {
                b.iter(|| gillian_c::collections::run_row(suite, Solver::optimized, cfg.clone()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
