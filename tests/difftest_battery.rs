//! The instantiation-level differential battery: seeded random GIL
//! programs over the *real* While and MiniC memory models, each explored
//! symbolically and replayed concretely through the CSC oracle — with the
//! final memories compared through the instantiation's interpretation
//! function (`I(ε, µ̂) ≐ µ`, paper Def. 3.7).
//!
//! Reproducibility knobs (environment variables):
//!
//! - `GILLIAN_DIFFTEST_SEED`  — base seed (default 0); case `i` of a
//!   sub-battery runs with seed `base + salt + i` and a failing case
//!   prints the exact seed and op list to rerun.
//! - `GILLIAN_DIFFTEST_CASES` — programs per sub-battery (default 100).
//! - `GILLIAN_WORKERS`        — symbolic exploration workers (default 1);
//!   CI runs the battery under both 1 and 4.

use gillian::c::CInterpretation;
use gillian::core::difftest::{run_differential_with, InterpMemoryCheck};
use gillian::core::explore::{ExploreConfig, SearchStrategy};
use gillian::core::generate::{build_prog, gen_ops, MemDialect, Rng};
use gillian::core::memory::{ConcreteMemory, SymbolicMemory};
use gillian::core::soundness::MemoryInterpretation;
use gillian::solver::Solver;
use gillian::telemetry::Journal;
use gillian::while_lang::WhileInterpretation;
use std::sync::Arc;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn battery_config(strategy: SearchStrategy, summaries: bool) -> ExploreConfig {
    ExploreConfig {
        strategy,
        workers: env_u64("GILLIAN_WORKERS", 1) as usize,
        summaries: Some(summaries),
        journal: Journal::disabled(),
        ..Default::default()
    }
}

/// Runs one sub-battery: `GILLIAN_DIFFTEST_CASES` programs of `dialect`,
/// memory-checked through `interp`, asserting zero divergences.
fn run_battery<I>(
    dialect: MemDialect,
    strategy: SearchStrategy,
    summaries: bool,
    salt: u64,
    interp: I,
) where
    I: MemoryInterpretation,
    I::Symbolic: SymbolicMemory,
    I::Concrete: ConcreteMemory + PartialEq + std::fmt::Debug,
{
    let base = env_u64("GILLIAN_DIFFTEST_SEED", 0);
    let cases = env_u64("GILLIAN_DIFFTEST_CASES", 100);
    let solver = Arc::new(Solver::optimized());
    let memcheck = InterpMemoryCheck(interp);
    let (mut paths, mut replayed, mut skipped) = (0usize, 0usize, 0usize);
    for i in 0..cases {
        let seed = base.wrapping_add(salt).wrapping_add(i);
        let ops = gen_ops(&mut Rng::new(seed), 14, dialect);
        let prog = build_prog(&ops, dialect);
        let report = run_differential_with::<I::Symbolic, I::Concrete, _>(
            &prog,
            "main",
            solver.clone(),
            battery_config(strategy, summaries),
            &memcheck,
        );
        assert!(
            report.agreed(),
            "seed {seed} ({dialect:?}/{strategy:?}): {} divergence(s), first: {}\nops: {ops:?}",
            report.divergences.len(),
            report.divergences[0],
        );
        paths += report.sym_paths;
        replayed += report.replayed;
        skipped += report.skipped.len();
    }
    // Bounded skips are expected: wrapping-infeasible false paths the
    // incomplete SAT checker admits correctly fail model extraction
    // (`no-model`, see DESIGN.md §13).
    assert!(replayed > 0, "battery replayed nothing");
    assert!(
        skipped * 3 <= paths,
        "too many skipped paths ({skipped}/{paths}) — the differential \
         guarantee is full of holes"
    );
    eprintln!(
        "difftest battery ({dialect:?}/{strategy:?}): \
         {paths} paths, {replayed} replayed, {skipped} skipped"
    );
}

#[test]
fn while_battery_dfs() {
    run_battery::<WhileInterpretation>(
        MemDialect::While,
        SearchStrategy::Dfs,
        false,
        0x77_0000,
        WhileInterpretation,
    );
}

#[test]
fn while_battery_bfs() {
    run_battery::<WhileInterpretation>(
        MemDialect::While,
        SearchStrategy::Bfs,
        false,
        0x77_1000,
        WhileInterpretation,
    );
}

#[test]
fn c_battery_dfs() {
    run_battery::<CInterpretation>(
        MemDialect::C,
        SearchStrategy::Dfs,
        false,
        0xC_0000,
        CInterpretation,
    );
}

#[test]
fn c_battery_bfs() {
    run_battery::<CInterpretation>(
        MemDialect::C,
        SearchStrategy::Bfs,
        false,
        0xC_1000,
        CInterpretation,
    );
}

/// The same oracles with procedure summaries armed: `helper` windows are
/// the only summarizable ones (memory actions poison their window), and
/// every spliced path must still replay concretely — including the final
/// memory under the instantiation's interpretation function. Uses the
/// same seeds as the cold DFS legs.
#[test]
fn while_battery_dfs_summaries() {
    run_battery::<WhileInterpretation>(
        MemDialect::While,
        SearchStrategy::Dfs,
        true,
        0x77_0000,
        WhileInterpretation,
    );
}

#[test]
fn c_battery_dfs_summaries() {
    run_battery::<CInterpretation>(
        MemDialect::C,
        SearchStrategy::Dfs,
        true,
        0xC_0000,
        CInterpretation,
    );
}

/// The generator's hard-coded MiniC chunk literal must stay in sync with
/// the real `Chunk` serialization: the battery's `store`/`load` actions
/// are only meaningful if both sides parse the same chunk.
#[test]
fn generator_c_chunk_literal_matches_chunk_to_expr() {
    use gillian::c::chunks::Chunk;
    use gillian::core::generate::GenOp;
    use gillian::gil::Cmd;

    let prog = build_prog(
        &[GenOp::Mem(gillian::core::generate::MemOp::New)],
        MemDialect::C,
    );
    let main = prog.proc("main").expect("generated entry");
    let chunk = Chunk::int(8).to_expr();
    let uses_chunk = main.body.iter().any(|cmd| match cmd {
        Cmd::Action { arg, .. } => format!("{arg}").contains(&format!("{chunk}")),
        _ => false,
    });
    assert!(
        uses_chunk,
        "generator's chunk literal drifted from Chunk::int(8).to_expr() = {chunk}"
    );
}

/// The While property set is tiny by design ({"f", "g"}): collisions are
/// what makes the differential memory check interesting. Pin the shape of
/// the first allocation so seeds stay replayable across refactors.
#[test]
fn while_generated_programs_are_stable_across_runs() {
    let ops = gen_ops(&mut Rng::new(1234), 14, MemDialect::While);
    let again = gen_ops(&mut Rng::new(1234), 14, MemDialect::While);
    assert_eq!(ops, again);
    let a = build_prog(&ops, MemDialect::While);
    let b = build_prog(&again, MemDialect::While);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
