//! End-to-end GIL Restricted Soundness (paper Theorem 3.6) across all
//! three instantiations: every modelled symbolic path replays concretely
//! under the model-derived allocator script to the same outcome.

use gillian::core::explore::ExploreConfig;
use gillian::core::soundness::check_program;
use gillian::solver::Solver;
use std::sync::Arc;

#[test]
fn while_programs_are_restricted_sound() {
    let sources = [
        "proc main() { x := symb(); if (x < 0) { r := 0 - x; } else { r := x; } return r; }",
        "proc main() { x := symb(); o := { v: x }; y := o.v; o.v := y + 1; z := o.v; return z - x; }",
        "proc main() { x := symb(); assume (x = 1 or x = 2); l := [x, x + 1]; return nth(l, 1); }",
    ];
    for src in sources {
        let prog =
            gillian::while_lang::compile_program(&gillian::while_lang::parse_program(src).unwrap());
        let report = check_program::<
            gillian::while_lang::WhileSymMemory,
            gillian::while_lang::WhileConcMemory,
        >(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        )
        .unwrap_or_else(|d| panic!("While soundness violated on {src}: {d:#?}"));
        assert!(report.replayed > 0, "{src}: nothing replayed");
    }
}

#[test]
fn minijs_programs_are_restricted_sound() {
    let sources = [
        r#"
        function main() {
            var x = symb_number();
            var o = { a: x };
            if (o.a < 0) { o.a = 0 - o.a; }
            return o.a;
        }
        "#,
        r#"
        function main() {
            var k = symb_string();
            var d = { table: {} };
            d.table[k] = 1;
            if (d.table["key"] === undefined) { return 0; }
            return 1;
        }
        "#,
        r#"
        function main() {
            var x = symb_bool();
            var arr = [1, 2];
            if (x) { arr[2] = 3; arr.length = 3; }
            return arr.length;
        }
        "#,
    ];
    for src in sources {
        let prog = gillian::js::compile_module(&gillian::js::parse_module(src).unwrap());
        let report = check_program::<gillian::js::JsSymMemory, gillian::js::JsConcMemory>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        )
        .unwrap_or_else(|d| panic!("MiniJS soundness violated on {src}: {d:#?}"));
        assert!(report.replayed > 0, "{src}: nothing replayed");
    }
}

#[test]
fn minic_programs_are_restricted_sound() {
    let sources = [
        r#"
        long main() {
            long x = symb_long();
            long *p = malloc(8);
            *p = x;
            long v = *p;
            free(p);
            return v;
        }
        "#,
        r#"
        long main() {
            long i = symb_long();
            assume(i >= 0 && i < 2);
            long *xs = malloc(16);
            xs[0] = 10;
            xs[1] = 20;
            long v = xs[i];
            free(xs);
            return v;
        }
        "#,
        r#"
        struct Pair { int a; long b; };
        long main() {
            long x = symb_long();
            struct Pair *p = malloc(sizeof(struct Pair));
            p->a = (int)x;
            p->b = x;
            long v = p->b + p->a;
            free(p);
            return v;
        }
        "#,
    ];
    for src in sources {
        let prog = gillian::c::compile_unit(&gillian::c::parse_unit(src).unwrap()).unwrap();
        let report = check_program::<gillian::c::CSymMemory, gillian::c::CConcMemory>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        )
        .unwrap_or_else(|d| panic!("MiniC soundness violated on {src}: {d:#?}"));
        assert!(report.replayed > 0, "{src}: nothing replayed");
    }
}

#[test]
fn error_paths_replay_to_errors_in_every_language() {
    // For the bug reports themselves: a modelled error path must replay
    // to a concrete error (no false positives).
    let w = gillian::while_lang::symbolic_test(
        "proc main() { x := symb(); assume (0 <= x); assert (x != 3); return x; }",
    )
    .unwrap();
    assert!(w.bugs.iter().all(|b| b.confirmed()), "{:?}", w.bugs);

    let j = gillian::js::symbolic_test(
        r#"function main() { var x = symb_number(); assume(0 <= x); assert(x !== 3); return x; }"#,
    )
    .unwrap();
    assert!(j.bugs.iter().all(|b| b.confirmed()), "{:?}", j.bugs);

    let c = gillian::c::symbolic_test(
        "long main() { long x = symb_long(); assume(0 <= x); assert(x != 3); return x; }",
    )
    .unwrap();
    assert!(c.bugs.iter().all(|b| b.confirmed()), "{:?}", c.bugs);
}
