//! Cross-crate integration: the same abstract computations verified under
//! all three instantiations (While, MiniJS, MiniC) — the multi-language
//! claim of the paper's title, exercised end to end through one engine.

#[test]
fn bounded_sum_verifies_in_all_three_languages() {
    let w = gillian::while_lang::symbolic_test(
        r#"
        proc main() {
            n := symb();
            assume (0 <= n and n <= 5);
            i := 0; total := 0;
            while (i < n) { i := i + 1; total := total + i; }
            assert (2 * total = n * (n + 1));
            return total;
        }
    "#,
    )
    .unwrap();
    assert!(w.verified(), "While: {:?}", w.bugs);

    let j = gillian::js::symbolic_test(
        r#"
        function main() {
            var n = symb_number();
            assume(n === 0 || n === 1 || n === 2 || n === 3 || n === 4 || n === 5);
            var i = 0;
            var total = 0;
            while (i < n) { i = i + 1; total = total + i; }
            assert(2 * total === n * (n + 1));
            return total;
        }
    "#,
    )
    .unwrap();
    assert!(j.verified(), "MiniJS: {:?}", j.bugs);

    let c = gillian::c::symbolic_test(
        r#"
        long main() {
            long n = symb_long();
            assume(0 <= n && n <= 5);
            long i = 0;
            long total = 0;
            while (i < n) { i = i + 1; total = total + i; }
            assert(2 * total == n * (n + 1));
            return total;
        }
    "#,
    )
    .unwrap();
    assert!(c.verified(), "MiniC: {:?}", c.bugs);
}

#[test]
fn the_same_off_by_one_is_found_in_all_three_languages() {
    // One logic bug, three syntaxes: a guard that admits the boundary.
    let w = gillian::while_lang::symbolic_test(
        r#"
        proc main() {
            x := symb();
            assume (0 <= x and x <= 10);
            if (x <= 10) { x := x + 1; }
            assert (x <= 10);
            return x;
        }
    "#,
    )
    .unwrap();
    assert_eq!(w.bugs.len(), 1, "While");
    assert!(w.bugs[0].confirmed());

    let j = gillian::js::symbolic_test(
        r#"
        function main() {
            var x = symb_number();
            assume(0 <= x && x <= 10);
            if (x <= 10) { x = x + 1; }
            assert(x <= 10);
            return x;
        }
    "#,
    )
    .unwrap();
    assert_eq!(j.bugs.len(), 1, "MiniJS");
    assert!(j.bugs[0].confirmed());

    let c = gillian::c::symbolic_test(
        r#"
        long main() {
            long x = symb_long();
            assume(0 <= x && x <= 10);
            if (x <= 10) { x = x + 1; }
            assert(x <= 10);
            return x;
        }
    "#,
    )
    .unwrap();
    assert_eq!(c.bugs.len(), 1, "MiniC");
    assert!(c.bugs[0].confirmed());
}

#[test]
fn memory_models_differ_but_the_engine_is_shared() {
    // The JS instantiation returns `undefined` for an absent property;
    // the C instantiation reports UB for an uninitialized read; While
    // errors on an absent property. Same engine, three memory models —
    // exactly the paper's parametricity pitch.
    let w = gillian::while_lang::symbolic_test(
        r#"
        proc main() {
            o := { a: 1 };
            v := o.b;
            return v;
        }
    "#,
    )
    .unwrap();
    assert_eq!(w.bugs.len(), 1, "While lookup of absent property errors");

    let j = gillian::js::symbolic_test(
        r#"
        function main() {
            var o = { a: 1 };
            assert(o.b === undefined);
            return o.b;
        }
    "#,
    )
    .unwrap();
    assert!(
        j.verified(),
        "JS absent property is undefined: {:?}",
        j.bugs
    );

    let c = gillian::c::symbolic_test(
        r#"
        long main() {
            long *p = malloc(16);
            *p = 1;
            return p[1];
        }
    "#,
    )
    .unwrap();
    assert_eq!(c.bugs.len(), 1, "C uninitialized read is UB");
    assert!(c.bugs[0].error.contains("uninitialized"));
}

#[test]
fn gil_text_format_round_trips_compiled_programs() {
    // Compile each front end, print the GIL, re-parse it, and check the
    // programs coincide — the `.gil` interchange format works for real
    // compiled output.
    let w = gillian::while_lang::parse_program(
        "proc main() { x := symb(); o := { a: x }; v := o.a; assert (v = x); return v; }",
    )
    .unwrap();
    let progs = vec![
        gillian::while_lang::compile_program(&w),
        gillian::js::compile_module(
            &gillian::js::parse_module("function main() { var o = {a: 1}; return o.a; }").unwrap(),
        ),
        gillian::c::compile_unit(
            &gillian::c::parse_unit("long main() { long *p = malloc(8); *p = 3; return *p; }")
                .unwrap(),
        )
        .unwrap(),
    ];
    for prog in progs {
        let printed = prog.to_string();
        let reparsed = gillian::gil::parser::parse_prog(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(prog, reparsed);
    }
}
