//! The GIL text format, end to end: parse a `.gil` program, run it
//! symbolically over the While memory model, and print the per-path
//! results — the IR-level workflow that sits underneath every front end.
//!
//! Run with: `cargo run --example gil_playground`

use gillian::core::explore::{explore, ExploreConfig, ExploreOutcome};
use gillian::core::symbolic::SymbolicState;
use gillian::gil::parser::parse_prog;
use gillian::solver::Solver;
use gillian::while_lang::WhileSymMemory;
use std::sync::Arc;

const SOURCE: &str = r#"
// abs.gil — symbolic absolute value over a heap cell, in raw GIL.
// The input is bounded: on the full i64 range the assertion genuinely
// fails (abs(i64::MIN) wraps negative — GIL arithmetic is wrapping,
// and so is the C it models).
proc main() {
  0: x := iSym_0
  1: ifgoto (typeOf(x) = Int) 3
  2: vanish
  3: ifgoto (((-1000) <= x) and (x <= 1000)) 5
  4: vanish
  5: cell := uSym_5
  6: _ := mutate!({{ cell, "value", x }})
  7: r := @abs(cell)
  8: ifgoto (0 <= r) 10
  9: fail {{ "assertion failure", "abs is non-negative" }}
  10: return r
}

proc abs(c) {
  0: v := lookup!({{ c, "value" }})
  1: ifgoto (v < 0) 3
  2: return v
  3: return (0 - v)
}
"#;

fn main() {
    let prog = parse_prog(SOURCE).expect("GIL parses");
    println!("parsed {} procedures; re-printed:\n{prog}", prog.len());

    let solver = Arc::new(Solver::optimized());
    let initial = SymbolicState::<WhileSymMemory>::new(solver);
    let result = explore(&prog, "main", initial, ExploreConfig::default());

    println!(
        "explored {} paths, {} GIL commands, truncated: {}",
        result.paths.len(),
        result.total_cmds,
        result.truncated
    );
    for path in &result.paths {
        match &path.outcome {
            ExploreOutcome::Normal(v) => {
                println!("  N({v})  under  {}", path.state.pc);
            }
            ExploreOutcome::Error(e) => {
                println!("  E({e})  under  {}", path.state.pc);
            }
            ExploreOutcome::Vanished => println!("  vanished  under  {}", path.state.pc),
            ExploreOutcome::Truncated => println!("  truncated"),
            ExploreOutcome::EngineError { payload, .. } => {
                println!("  engine error: {payload}")
            }
        }
    }
    assert!(result.errors().count() == 0, "abs verifies");
}
