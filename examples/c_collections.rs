//! Reproduces the paper's Table 2: the Collections data-structure library
//! under the MiniC instantiation.
//!
//! Run with: `cargo run --release --example c_collections`

use gillian::c::collections;
use gillian::solver::Solver;
use std::fmt::Write as _;

fn main() {
    let cfg = collections::table2_config();
    let mut out = String::new();
    writeln!(
        out,
        "{:<8} {:>4} {:>12} {:>10}",
        "Name", "#T", "GIL Cmds", "Time"
    )
    .unwrap();
    let mut totals = (0usize, 0u64, 0.0f64);
    for suite in collections::suite_names() {
        let row = collections::run_row(suite, Solver::optimized, cfg.clone());
        assert!(row.all_verified(), "{suite}: {:?}", row.failures);
        writeln!(
            out,
            "{:<8} {:>4} {:>12} {:>9.2}s",
            suite,
            row.tests,
            row.gil_cmds,
            row.time.as_secs_f64()
        )
        .unwrap();
        totals.0 += row.tests;
        totals.1 += row.gil_cmds;
        totals.2 += row.time.as_secs_f64();
    }
    writeln!(
        out,
        "{:<8} {:>4} {:>12} {:>9.2}s",
        "Total", totals.0, totals.1, totals.2
    )
    .unwrap();
    print!("{out}");
}
