//! Tutorial: instantiating Gillian for a brand-new language in one file.
//!
//! The paper's usability pitch (§4.3): "to instantiate Gillian to a new
//! target language, a tool developer must provide a trusted compiler from
//! the TL to GIL, and implementations of the concrete and symbolic memory
//! models of the TL". This example does exactly that for **CounterLang**,
//! a toy language whose memory is a bank of named counters:
//!
//! - actions: `incr(name)`, `decr(name)` (errors below zero — the
//!   language's one runtime fault), `read(name)`;
//! - a ~40-line "compiler" that emits GIL directly through the builders.
//!
//! Everything else — stores, allocation, path conditions, exploration,
//! counter-models, concrete replay — comes from the platform. Running the
//! example finds the input that drives a counter negative, with a
//! verified model and a confirming concrete replay.
//!
//! Run with: `cargo run --example new_language`

use gillian::core::explore::ExploreConfig;
use gillian::core::memory::{ConcreteMemory, SymBranch, SymbolicMemory};
use gillian::core::testing::run_test_with_replay;
use gillian::gil::{Cmd, Expr, Proc, Prog, TypeTag, Value};
use gillian::solver::{PathCondition, Solver};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Step 1: the concrete memory model (paper Def. 2.3).
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct ConcCounters(BTreeMap<String, i64>);

impl ConcreteMemory for ConcCounters {
    fn execute_action(&mut self, name: &str, arg: Value) -> Result<Value, Value> {
        let key = arg
            .as_str()
            .ok_or_else(|| Value::str("counter names are strings"))?
            .to_string();
        let cell = self.0.entry(key.clone()).or_insert(0);
        match name {
            "incr" => {
                *cell += 1;
                Ok(Value::Int(*cell))
            }
            "decr" => {
                if *cell == 0 {
                    Err(Value::str(format!("counter {key} went negative")))
                } else {
                    *cell -= 1;
                    Ok(Value::Int(*cell))
                }
            }
            "read" => Ok(Value::Int(*cell)),
            other => Err(Value::str(format!("unknown action {other}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Step 2: the symbolic memory model (paper Def. 2.4). Counters hold
// symbolic expressions; `decr` branches on the zero test, learning the
// constraint into the path condition.
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct SymCounters(BTreeMap<String, Expr>);

impl SymbolicMemory for SymCounters {
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        let Expr::Val(Value::Str(key)) = arg else {
            return vec![SymBranch::err_if(
                self.clone(),
                Expr::str("counter names are literal strings"),
                Expr::tt(),
            )];
        };
        let current = self.0.get(key.as_ref()).cloned().unwrap_or(Expr::int(0));
        match name {
            "incr" => {
                let mut mem = self.clone();
                let next = solver.simplify(pc, &current.add(Expr::int(1)));
                mem.0.insert(key.to_string(), next.clone());
                vec![SymBranch::ok(mem, next)]
            }
            "read" => vec![SymBranch::ok(self.clone(), current)],
            "decr" => {
                let mut out = Vec::new();
                let zero = solver.simplify(pc, &current.clone().eq(Expr::int(0)));
                let nonzero = solver.simplify(pc, &zero.clone().not());
                if zero.as_bool() != Some(false) && solver.sat_with(pc, &zero).possibly_sat() {
                    out.push(SymBranch::err_if(
                        self.clone(),
                        Expr::str(format!("counter {key} went negative")),
                        zero,
                    ));
                }
                if nonzero.as_bool() != Some(false) && solver.sat_with(pc, &nonzero).possibly_sat()
                {
                    let mut mem = self.clone();
                    let next = solver.simplify(pc, &current.sub(Expr::int(1)));
                    mem.0.insert(key.to_string(), next.clone());
                    out.push(SymBranch::ok_if(mem, next, nonzero));
                }
                out
            }
            other => vec![SymBranch::err_if(
                self.clone(),
                Expr::str(format!("unknown action {other}")),
                Expr::tt(),
            )],
        }
    }
}

// ---------------------------------------------------------------------
// Step 3: a "compiler" — here, emitting GIL directly. The program takes a
// symbolic number of decrements and applies them after two increments:
// a bug exactly when the input exceeds 2.
// ---------------------------------------------------------------------

fn counter_program() -> Prog {
    Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            /* 0 */ Cmd::isym("n", 0),
            // assume typeOf(n) = Int ∧ 0 ≤ n ≤ 5
            /* 1 */
            Cmd::IfGoto(Expr::pvar("n").has_type(TypeTag::Int), 3),
            /* 2 */ Cmd::Vanish,
            /* 3 */
            Cmd::IfGoto(
                Expr::int(0)
                    .le(Expr::pvar("n"))
                    .and(Expr::pvar("n").le(Expr::int(5))),
                5,
            ),
            /* 4 */ Cmd::Vanish,
            /* 5 */ Cmd::action("_", "incr", Expr::str("tokens")),
            /* 6 */ Cmd::action("_", "incr", Expr::str("tokens")),
            // loop: i from 0 to n, decrementing each round
            /* 7 */
            Cmd::assign("i", Expr::int(0)),
            /* 8 */ Cmd::IfGoto(Expr::pvar("i").lt(Expr::pvar("n")), 10),
            /* 9 */ Cmd::Goto(13),
            /* 10 */ Cmd::action("_", "decr", Expr::str("tokens")),
            /* 11 */ Cmd::assign("i", Expr::pvar("i").add(Expr::int(1))),
            /* 12 */ Cmd::Goto(8),
            /* 13 */ Cmd::action("left", "read", Expr::str("tokens")),
            /* 14 */ Cmd::Return(Expr::pvar("left")),
        ],
    )])
}

// ---------------------------------------------------------------------
// Step 4: run — the platform provides everything else.
// ---------------------------------------------------------------------

fn main() {
    let prog = counter_program();
    println!("CounterLang program (compiled GIL):\n{prog}");
    let outcome = run_test_with_replay::<SymCounters, ConcCounters>(
        &prog,
        "main",
        Arc::new(Solver::optimized()),
        ExploreConfig::default(),
    );
    println!(
        "explored {} paths ({} GIL commands)",
        outcome.result.paths.len(),
        outcome.gil_cmds()
    );
    for bug in &outcome.bugs {
        println!("bug       : {}", bug.error);
        if let Some(model) = &bug.model {
            println!("model     : {model}");
        }
        println!("input     : {:?}", bug.script);
        println!("replay    : {:?}", bug.replay);
        println!("confirmed : {}", bug.confirmed());
    }
    // The minimal counterexample is three decrements after two increments.
    assert!(outcome
        .bugs
        .iter()
        .any(|b| b.confirmed() && b.script == vec![Value::Int(3)]));
    println!("\nthe platform found the minimal failing input n = 3, verified it,");
    println!("and replayed it concretely — with ~170 lines of language-specific code.");
}
