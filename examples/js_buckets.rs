//! Reproduces the paper's Table 1: the Buckets data-structure library
//! under the MiniJS instantiation, with the baseline (JaVerT-2.0-like)
//! and optimized engine configurations.
//!
//! Run with: `cargo run --release --example js_buckets`

use gillian::js::buckets;
use gillian::solver::Solver;
use std::fmt::Write as _;

fn main() {
    let cfg = buckets::table1_config();
    let mut out = String::new();
    writeln!(
        out,
        "{:<8} {:>4} {:>12} {:>11} {:>10}",
        "Name", "#T", "GIL Cmds", "Time(base)", "Time(opt)"
    )
    .unwrap();
    let mut totals = (0usize, 0u64, 0.0f64, 0.0f64);
    for suite in buckets::suite_names() {
        let base = buckets::run_row(suite, Solver::baseline, cfg.clone());
        let opt = buckets::run_row(suite, Solver::optimized, cfg.clone());
        assert!(opt.all_verified(), "{suite}: {:?}", opt.failures);
        writeln!(
            out,
            "{:<8} {:>4} {:>12} {:>10.2}s {:>9.2}s",
            suite,
            opt.tests,
            opt.gil_cmds,
            base.time.as_secs_f64(),
            opt.time.as_secs_f64()
        )
        .unwrap();
        totals.0 += opt.tests;
        totals.1 += opt.gil_cmds;
        totals.2 += base.time.as_secs_f64();
        totals.3 += opt.time.as_secs_f64();
    }
    writeln!(
        out,
        "{:<8} {:>4} {:>12} {:>10.2}s {:>9.2}s",
        "Total", totals.0, totals.1, totals.2, totals.3
    )
    .unwrap();
    writeln!(out, "speedup: {:.2}x", totals.2 / totals.3.max(1e-9)).unwrap();
    print!("{out}");
}
