//! Reproduces the paper's §4.2 bug findings in Collections-C on the
//! seeded buggy library variants. Every report is backed by a verified
//! counter-model and a confirming concrete replay — no false positives
//! (the computational content of the paper's Theorem 3.6).
//!
//! Run with: `cargo run --release --example bug_finding`

use gillian::c::collections::{buggy, buggy_prog};
use gillian::c::{CConcMemory, CSymMemory};
use gillian::core::difftest::{run_differential_with, InterpMemoryCheck};
use gillian::core::explore::ExploreConfig;
use gillian::core::generate::{build_prog, gen_ops, minimize, MemDialect, Rng};
use gillian::core::testing::run_test_with_replay;
use gillian::solver::Solver;
use gillian::while_lang::{WhileConcMemory, WhileInterpretation, WhileSymMemory};
use std::sync::Arc;

fn hunt(title: &str, buggy_src: &str, harness: &str) {
    println!("== {title}");
    let prog = buggy_prog(buggy_src, harness).expect("harness compiles");
    let out = run_test_with_replay::<CSymMemory, CConcMemory>(
        &prog,
        "main",
        Arc::new(Solver::optimized()),
        ExploreConfig::default(),
    );
    if out.bugs.is_empty() {
        println!(
            "   no bugs found ({} paths explored)",
            out.result.paths.len()
        );
    }
    for bug in &out.bugs {
        println!("   bug       : {}", bug.error);
        if let Some(model) = &bug.model {
            println!("   model     : {model}");
        }
        println!("   inputs    : {:?}", bug.script);
        println!("   replay    : {:?}", bug.replay);
        println!("   confirmed : {}", bug.confirmed());
    }
    println!();
}

fn main() {
    hunt(
        "Bug 1: off-by-one buffer overflow in the dynamic array",
        buggy::ARRAY,
        r#"
        long main() {
            struct Array *ar = array_new(2);
            array_add(ar, 1);
            array_add(ar, 2);
            array_add(ar, 3);
            return array_size(ar);
        }
        "#,
    );
    hunt(
        "Bug 2: UB pointer comparison inside array_expand",
        buggy::ARRAY,
        r#"
        long main() {
            struct Array *ar = array_new(2);
            array_add(ar, 1);
            array_expand(ar);
            return 0;
        }
        "#,
    );
    hunt(
        "Bug 3: a test that orders freed pointers",
        buggy::ARRAY,
        r#"
        long main() {
            long *p = malloc(8);
            free(p);
            long *q = malloc(8);
            if (p <= q) { return 1; }
            return 0;
        }
        "#,
    );
    hunt(
        "Bug 4: ring buffer over-allocation (operations stay correct)",
        buggy::RBUF,
        r#"
        long main() {
            struct RBuf *rb = rbuf_new(4);
            long *probe = rb->buffer;
            assert(block_size(probe) == 4 * sizeof(long));
            rbuf_destroy(rb);
            return 0;
        }
        "#,
    );
    hunt(
        "Bug 5 (analogue): silent duplicate insertion in the tree table",
        buggy::TREETBL,
        r#"
        long main() {
            long k = symb_long();
            struct TreeTbl *t = treetbl_new();
            treetbl_add(t, k, 1);
            treetbl_add(t, k, 2);
            assert(treetbl_size(t) == 1);
            treetbl_destroy(t);
            return 0;
        }
        "#,
    );
    difftest_demo();
}

/// The engine hunting bugs in *itself*: seeded random GIL programs over
/// the While memory model, each explored symbolically, every path's
/// witness model replayed concretely, final memories compared through
/// the interpretation function. Any disagreement would be shrunk to a
/// minimal op list by `generate::minimize` — the same loop the CI
/// differential battery runs at scale (DESIGN.md §13). The two
/// regressions in `crates/core/tests/difftest_regressions.rs` are
/// minimizer output committed verbatim.
fn difftest_demo() {
    println!("== Differential fuzzing: symbolic vs concrete on random programs");
    let solver = Arc::new(Solver::optimized());
    let memcheck = InterpMemoryCheck(WhileInterpretation);
    let diverges = |ops: &[gillian::core::generate::GenOp]| {
        let prog = build_prog(ops, MemDialect::While);
        let report = run_differential_with::<WhileSymMemory, WhileConcMemory, _>(
            &prog,
            "main",
            solver.clone(),
            ExploreConfig::default(),
            &memcheck,
        );
        !report.agreed()
    };
    let (mut paths, mut replayed) = (0usize, 0usize);
    for seed in 0..20u64 {
        let ops = gen_ops(&mut Rng::new(seed), 14, MemDialect::While);
        if diverges(&ops) {
            let shrunk = minimize(&ops, diverges);
            println!("   DIVERGENCE at seed {seed}; minimized repro: {shrunk:?}");
            continue;
        }
        let prog = build_prog(&ops, MemDialect::While);
        let report = run_differential_with::<WhileSymMemory, WhileConcMemory, _>(
            &prog,
            "main",
            solver.clone(),
            ExploreConfig::default(),
            &memcheck,
        );
        paths += report.sym_paths;
        replayed += report.replayed;
    }
    println!("   20 programs: {paths} symbolic paths, {replayed} concrete replays, all agreed");
}
