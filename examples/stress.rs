//! Scale probe: long-running symbolic workloads in all three languages,
//! demonstrating that the engine sustains large GIL command counts (the
//! paper's Table 1 runs ~14M commands; this probe runs hundreds of
//! thousands in seconds and scales linearly with the workload size).
//!
//! Run with: `cargo run --release --example stress`
//!
//! The final section compares the serial and parallel explorers on a
//! branch-heavy workload and reports the observed speedup (informational:
//! it tracks the host's actual core count).

use gillian::core::explore::ExploreConfig;
use std::time::{Duration, Instant};

fn probe(name: &str, run: impl FnOnce() -> (u64, usize, bool)) {
    let start = Instant::now();
    let (cmds, paths, ok) = run();
    let dt = start.elapsed();
    let rate = cmds as f64 / dt.as_secs_f64().max(1e-9);
    println!(
        "{name:<22} {cmds:>10} cmds {paths:>5} paths {:>8.2?}  ({rate:>12.0} cmds/s)  verified={ok}",
        dt
    );
}

fn main() {
    // While: a triangular-number loop over a large concrete bound with a
    // symbolic seed.
    probe("while/triangular", || {
        let out = gillian::while_lang::symbolic_test(
            r#"
            proc main() {
                s := symb();
                assume (0 <= s and s <= 2);
                total := s;
                i := 0;
                while (i < 400) {
                    i := i + 1;
                    total := total + i;
                }
                assert (total = s + 80200);
                return total;
            }
        "#,
        )
        .unwrap();
        (out.gil_cmds(), out.result.paths.len(), out.verified())
    });

    // MiniJS: push/pop churn through the Buckets stack (every operation
    // goes through the dynamic runtime, multiplying the command count).
    probe("minijs/stack churn", || {
        let src = format!(
            "{}\n{}\n{}",
            gillian::js::buckets::LIB_SOURCES
                .iter()
                .map(|(_, s)| *s)
                .collect::<Vec<_>>()
                .join("\n"),
            "",
            r#"
            function main() {
                var seed = symb_number();
                var s = stackNew();
                for (var i = 0; i < 120; i = i + 1) {
                    s.push(seed + i);
                }
                for (var j = 0; j < 60; j = j + 1) {
                    s.pop();
                }
                assert(s.size() === 60);
                assert(s.peek() === seed + 59);
                return s.size();
            }
            "#
        );
        let out = gillian::js::symbolic_test(&src).unwrap();
        (out.gil_cmds(), out.result.paths.len(), out.verified())
    });

    // MiniC: byte-level heap churn through the Collections dynamic array,
    // with repeated capacity doublings (malloc + memcpy + free).
    probe("minic/array growth", || {
        let src = format!(
            "{}\n{}",
            gillian::c::collections::LIB_SOURCES
                .iter()
                .map(|(_, s)| *s)
                .collect::<Vec<_>>()
                .join("\n"),
            r#"
            long main() {
                long seed = symb_long();
                struct Array *ar = array_new(1);
                for (long i = 0; i < 200; i = i + 1) {
                    array_add(ar, seed + i);
                }
                long *out = malloc(sizeof(long));
                array_get_at(ar, 199, out);
                assert(*out == seed + 199);
                assert(array_size(ar) == 200);
                long v = *out;
                free(out);
                array_destroy(ar);
                return v;
            }
            "#
        );
        let out = gillian::c::symbolic_test(&src).unwrap();
        (out.gil_cmds(), out.result.paths.len(), out.verified())
    });

    // Serial vs. parallel explorer on a branch-heavy While workload: ten
    // independent symbolic branches → 1024 paths, each with real loop work,
    // so workers always have paths to steal.
    let wide_src = {
        let mut body = String::new();
        for i in 0..10 {
            body.push_str(&format!(
                "b{i} := symb(); t{i} := 0; \
                 if (b{i} > 0) {{ t{i} := 1; }} else {{ t{i} := 2; }}\n"
            ));
        }
        format!(
            r#"
            proc main() {{
                {body}
                acc := 0;
                i := 0;
                while (i < 50) {{
                    i := i + 1;
                    acc := acc + i;
                }}
                assert (acc = 1275);
                return acc;
            }}
            "#
        )
    };
    let timed = |workers: usize| {
        let cfg = ExploreConfig {
            workers,
            ..Default::default()
        };
        let start = Instant::now();
        let out = gillian::while_lang::symbolic_test_with(&wide_src, "main", cfg).unwrap();
        assert!(out.verified(), "wide workload must verify");
        (start.elapsed(), out)
    };
    let (t1, out1) = timed(1);
    let (cmds1, paths1) = (out1.gil_cmds(), out1.result.paths.len());
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().max(2));
    let (tn, outn) = timed(workers);
    let (cmdsn, pathsn) = (outn.gil_cmds(), outn.result.paths.len());
    assert_eq!(paths1, pathsn, "parallel must find the same path count");
    assert_eq!(cmds1, cmdsn, "parallel must execute the same command count");
    println!(
        "parallel/wide          {cmds1:>10} cmds {paths1:>5} paths  serial {t1:>8.2?}  \
         {workers} workers {tn:>8.2?}  speedup {:.2}x",
        t1.as_secs_f64() / tn.as_secs_f64().max(1e-9)
    );

    // Resilience probe: the same wide workload under a deadline too tight
    // to finish. The run must come back promptly, marked truncated, with
    // the overrun counted in the diagnostics — not hang or panic.
    let tight = Duration::from_millis(5);
    let start = Instant::now();
    let cfg = ExploreConfig {
        workers,
        ..Default::default()
    }
    .with_deadline(tight);
    let out = gillian::while_lang::symbolic_test_with(&wide_src, "main", cfg).unwrap();
    let dt = start.elapsed();
    assert!(
        !out.verified(),
        "an out-of-time run must not claim verified"
    );
    assert!(out.bounded());
    let d = out.result.diagnostics;
    println!(
        "deadline/wide          {tight:>8.2?} budget: returned in {dt:>8.2?}, \
         {} paths, deadline_hits={}, bounded={}",
        out.result.paths.len(),
        d.deadline_hits,
        out.bounded()
    );

    // Crash-safety probe: the same wide workload, killed mid-run by the
    // deterministic fault harness with a checkpoint armed, then resumed
    // from the file. The union of paths finished before the kill and
    // paths explored after resume must equal the uninterrupted run.
    {
        use gillian::core::checkpoint::StateCtx;
        use gillian::core::faults::FaultPlan;
        use gillian::core::symbolic::SymbolicState;
        use gillian::core::{explore_resume, explore_with, CheckpointConfig};
        use gillian::while_lang::{compile_program, parse_program, WhileSymMemory};
        use std::sync::Arc;

        type St = SymbolicState<WhileSymMemory>;
        let prog = compile_program(&parse_program(&wide_src).expect("parse wide workload"));
        let solver = Arc::new(gillian::solver::Solver::optimized());
        let cfg = ExploreConfig::default;
        let baseline = explore_with(&prog, "main", St::new(solver.clone()), cfg());

        let ckpt = std::env::temp_dir().join(format!("gillian-stress-{}.ckpt", std::process::id()));
        let mut kill_cfg = cfg();
        kill_cfg.faults = Some(Arc::new(FaultPlan::seeded(7).kill_at(4000)));
        kill_cfg.checkpoint = Some(CheckpointConfig::at(&ckpt));
        let start = Instant::now();
        let cut = explore_with(&prog, "main", St::new(solver.clone()), kill_cfg);
        assert!(cut.killed, "the injected kill must fire mid-run");

        let resumed = explore_resume(
            &prog,
            &ckpt,
            &StateCtx::new(solver.clone()),
            St::new(solver.clone()),
            cfg(),
        )
        .expect("resume from checkpoint");
        let dt = start.elapsed();
        assert_eq!(
            resumed.prior.len() + resumed.result.paths.len(),
            baseline.paths.len(),
            "prior ∪ resumed must cover the uninterrupted path set"
        );
        assert_eq!(
            resumed.result.total_cmds, baseline.total_cmds,
            "command accounting must survive the crash"
        );
        let _ = std::fs::remove_file(&ckpt);
        println!(
            "crash/resume           {:>10} cmds {:>5} paths  kill+resume {dt:>8.2?}  \
             ({} finished pre-kill, {} post-resume)",
            resumed.result.total_cmds,
            baseline.paths.len(),
            resumed.prior.len(),
            resumed.result.paths.len(),
        );
    }

    // Hash-consing telemetry: the cumulative interner picture after every
    // probe above, plus the slice attributed to the last run alone (from
    // its diagnostics delta).
    let total = gillian::gil::InternStats::snapshot();
    println!("interner/total         {total}");
    println!("interner/last-run      {}", d.interner);

    // Exploration profile of the parallel wide run: per-run metric
    // deltas, branch-tree shape, and — when `GILLIAN_TRACE` or
    // `GILLIAN_TRACE_CHROME` is set — the slowest sat queries and the
    // per-language action latency table from the event journal.
    println!("\n{}", outn.result.report.render());
}
