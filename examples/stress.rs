//! Scale probe: long-running symbolic workloads in all three languages,
//! demonstrating that the engine sustains large GIL command counts (the
//! paper's Table 1 runs ~14M commands; this probe runs hundreds of
//! thousands in seconds and scales linearly with the workload size).
//!
//! Run with: `cargo run --release --example stress`

use std::time::Instant;

fn probe(name: &str, run: impl FnOnce() -> (u64, usize, bool)) {
    let start = Instant::now();
    let (cmds, paths, ok) = run();
    let dt = start.elapsed();
    let rate = cmds as f64 / dt.as_secs_f64().max(1e-9);
    println!(
        "{name:<22} {cmds:>10} cmds {paths:>5} paths {:>8.2?}  ({rate:>12.0} cmds/s)  verified={ok}",
        dt
    );
}

fn main() {
    // While: a triangular-number loop over a large concrete bound with a
    // symbolic seed.
    probe("while/triangular", || {
        let out = gillian::while_lang::symbolic_test(
            r#"
            proc main() {
                s := symb();
                assume (0 <= s and s <= 2);
                total := s;
                i := 0;
                while (i < 400) {
                    i := i + 1;
                    total := total + i;
                }
                assert (total = s + 80200);
                return total;
            }
        "#,
        )
        .unwrap();
        (out.gil_cmds(), out.result.paths.len(), out.verified())
    });

    // MiniJS: push/pop churn through the Buckets stack (every operation
    // goes through the dynamic runtime, multiplying the command count).
    probe("minijs/stack churn", || {
        let src = format!(
            "{}\n{}\n{}",
            gillian::js::buckets::LIB_SOURCES
                .iter()
                .map(|(_, s)| *s)
                .collect::<Vec<_>>()
                .join("\n"),
            "",
            r#"
            function main() {
                var seed = symb_number();
                var s = stackNew();
                for (var i = 0; i < 120; i = i + 1) {
                    s.push(seed + i);
                }
                for (var j = 0; j < 60; j = j + 1) {
                    s.pop();
                }
                assert(s.size() === 60);
                assert(s.peek() === seed + 59);
                return s.size();
            }
            "#
        );
        let out = gillian::js::symbolic_test(&src).unwrap();
        (out.gil_cmds(), out.result.paths.len(), out.verified())
    });

    // MiniC: byte-level heap churn through the Collections dynamic array,
    // with repeated capacity doublings (malloc + memcpy + free).
    probe("minic/array growth", || {
        let src = format!(
            "{}\n{}",
            gillian::c::collections::LIB_SOURCES
                .iter()
                .map(|(_, s)| *s)
                .collect::<Vec<_>>()
                .join("\n"),
            r#"
            long main() {
                long seed = symb_long();
                struct Array *ar = array_new(1);
                for (long i = 0; i < 200; i = i + 1) {
                    array_add(ar, seed + i);
                }
                long *out = malloc(sizeof(long));
                array_get_at(ar, 199, out);
                assert(*out == seed + 199);
                assert(array_size(ar) == 200);
                long v = *out;
                free(out);
                array_destroy(ar);
                return v;
            }
            "#
        );
        let out = gillian::c::symbolic_test(&src).unwrap();
        (out.gil_cmds(), out.result.paths.len(), out.verified())
    });
}
