//! Quickstart: symbolic testing of a While program (the paper's running
//! example language, §2.2).
//!
//! Run with: `cargo run --example quickstart`

use gillian::while_lang::symbolic_test;

fn main() {
    // A program that verifies: all paths up to the exploration bound
    // satisfy every assertion.
    let verified = symbolic_test(
        r#"
        proc sum_to(n) {
            i := 0;
            total := 0;
            while (i < n) {
                i := i + 1;
                total := total + i;
            }
            return total;
        }
        proc main() {
            n := symb();
            assume (0 <= n and n <= 6);
            t := sum_to(n);
            assert (t = n * (n + 1) / 2);
            return t;
        }
    "#,
    )
    .expect("parses");
    println!("sum_to:");
    println!("  paths explored : {}", verified.result.paths.len());
    println!("  GIL commands   : {}", verified.gil_cmds());
    println!("  verified       : {}", verified.verified());
    assert!(verified.verified());

    // A buggy program: the engine finds the failing input, produces a
    // model of the path condition, and replays it concretely.
    let buggy = symbolic_test(
        r#"
        proc main() {
            x := symb();
            assume (0 <= x and x <= 100);
            account := { balance: x };
            b := account.balance;
            if (b <= 100) { account.balance := b + 1; }
            v := account.balance;
            assert (v <= 100);
            return v;
        }
    "#,
    )
    .expect("parses");
    println!("\noverdraft:");
    for bug in &buggy.bugs {
        println!("  bug        : {}", bug.error);
        println!("  path cond  : {}", bug.pc);
        match &bug.model {
            Some(model) => println!("  model      : {model}"),
            None => println!("  model      : (none found)"),
        }
        println!("  input      : {:?}", bug.script);
        println!("  replay     : {:?}", bug.replay);
        println!("  confirmed  : {}", bug.confirmed());
    }
    assert_eq!(buggy.bugs.len(), 1);
    assert!(buggy.bugs[0].confirmed());
}
